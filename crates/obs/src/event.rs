//! Typed life-cycle trace events.

use crate::tail::SpecBatch;
use ctxres_context::{ContextId, ContextState};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The typed relation behind a [`TraceEvent::Caused`] edge — why a
/// context's life was affected. Together these six relations span the
/// full drop-bad decision chain: submission → violations → Δ
/// membership → count evolution → verdict (and the deferred
/// mark-bad supersession).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CauseKind {
    /// The context entered the middleware — the root of its chain.
    SubmissionOf,
    /// The context participates in a detected violation of the cited
    /// constraint (partners are the other bound contexts).
    ViolatedBy,
    /// That violation entered the tracked set Δ (deferred resolution
    /// begins for the cited constraint instance).
    JoinedDelta,
    /// The context's count value rose because the cited violation
    /// joined Δ while the context was already a member of another.
    CountBumpedBy,
    /// The final verdict: the context was delivered or discarded, and —
    /// when a tracked inconsistency decided it — which one.
    ResolvedBecause,
    /// The context was marked `Bad` so the cited partner (the context
    /// actually used) could be resolved instead — drop-bad's deferred
    /// discard (Fig. 7 Part 2).
    SupersededBy,
}

/// Every [`CauseKind`], in a stable order (used by exporters and the
/// provenance graph).
pub const CAUSE_KINDS: [CauseKind; 6] = [
    CauseKind::SubmissionOf,
    CauseKind::ViolatedBy,
    CauseKind::JoinedDelta,
    CauseKind::CountBumpedBy,
    CauseKind::ResolvedBecause,
    CauseKind::SupersededBy,
];

impl CauseKind {
    /// Snake-case edge name (stable; used in exports and dumps).
    pub fn name(self) -> &'static str {
        match self {
            CauseKind::SubmissionOf => "submission_of",
            CauseKind::ViolatedBy => "violated_by",
            CauseKind::JoinedDelta => "joined_delta",
            CauseKind::CountBumpedBy => "count_bumped_by",
            CauseKind::ResolvedBecause => "resolved_because",
            CauseKind::SupersededBy => "superseded_by",
        }
    }
}

impl fmt::Display for CauseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One thing that happened inside the middleware.
///
/// Context ids are shard-local (each shard engine numbers its own
/// pool); a [`TraceRecord`] pairs the event with its shard id, so
/// `(shard, ctx)` is globally unique within one run's trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A context entered the middleware (a context addition change).
    Received {
        /// The id the pool assigned.
        ctx: ContextId,
        /// The context's kind name. Shared with the pool's interned
        /// kind so the hot submit path records without allocating.
        kind: Arc<str>,
        /// The context's subject, interned the same way.
        subject: Arc<str>,
    },
    /// A context moved through the Fig. 8 life cycle.
    StateChanged {
        /// The transitioning context.
        ctx: ContextId,
        /// The state it left.
        from: ContextState,
        /// The state it entered.
        to: ContextState,
    },
    /// Detection found an inconsistency.
    Detected {
        /// The violated constraint's name.
        constraint: String,
        /// The participating contexts.
        contexts: Vec<ContextId>,
    },
    /// An inconsistency entered the tracked set Δ (drop-bad §3.2).
    DeltaInserted {
        /// The violated constraint's name.
        constraint: String,
        /// The participating contexts.
        contexts: Vec<ContextId>,
    },
    /// An inconsistency was resolved and left Δ.
    DeltaRemoved {
        /// The violated constraint's name.
        constraint: String,
        /// The participating contexts.
        contexts: Vec<ContextId>,
    },
    /// A context's count value rose (it joined another tracked
    /// inconsistency).
    CountBumped {
        /// The context whose count changed.
        ctx: ContextId,
        /// Its new count value.
        count: u64,
    },
    /// A context was marked `Bad` — a deferred discard (Fig. 7 Part 2).
    MarkedBad {
        /// The marked context.
        ctx: ContextId,
    },
    /// A context was discarded (set `Inconsistent`).
    Discarded {
        /// The discarded context.
        ctx: ContextId,
    },
    /// A context was delivered to applications.
    Delivered {
        /// The delivered context.
        ctx: ContextId,
    },
    /// A use request found the context expired (neither delivered nor
    /// blamed).
    Expired {
        /// The expired context.
        ctx: ContextId,
    },
    /// A typed cause edge: `ctx`'s life was affected for the stated
    /// reason. Emitted alongside the flat life-cycle events when
    /// provenance is on; [`crate::ProvenanceGraph`] folds these into
    /// per-context causal chains. The `(shard, ctx)` pair identifies
    /// the effect node; `(at, seq)` of the carrying [`TraceRecord`]
    /// gives the edge its stable causal ID.
    Caused {
        /// The effect: the context whose chain this edge extends.
        ctx: ContextId,
        /// The typed relation.
        cause: CauseKind,
        /// The constraint implicated in the cause, when one is.
        constraint: Option<String>,
        /// The other contexts bound in the causing violation — or, for
        /// [`CauseKind::SupersededBy`], the used partner resolved by
        /// the supersession.
        partners: Vec<ContextId>,
        /// The deciding count value, when counts are implicated.
        count: Option<u64>,
        /// For [`CauseKind::ResolvedBecause`] /
        /// [`CauseKind::SupersededBy`]: the state the verdict put the
        /// context in.
        verdict: Option<ContextState>,
    },
    /// An SLO rule transitioned — fired or cleared. Emitted by the
    /// sampler's [`crate::SloEngine`] into shard 0's ring so alerts
    /// land in the same drained, time-ordered trace as the life-cycle
    /// events they explain.
    Alert {
        /// The transitioning rule's name.
        rule: String,
        /// The watched health metric's name.
        metric: String,
        /// The rule's kind selector, when it has one.
        kind: Option<String>,
        /// The metric's value in the transitioning window.
        value: f64,
        /// The rule's threshold.
        threshold: f64,
        /// `true` = fired, `false` = cleared.
        firing: bool,
    },
    /// A slow-batch postmortem: an ingestion batch breached the
    /// configured wall-clock bound
    /// ([`crate::ObsConfig::slow_batch_bound_ns`]). The event bundles
    /// everything needed to chase the regression without re-running:
    /// the batch's per-phase self-times, the contexts captured as tail
    /// exemplars while it committed, and its speculation accounting.
    SlowBatch {
        /// The engine-local batch index that breached.
        batch: u64,
        /// Contexts in the batch.
        contexts: u64,
        /// Wall-clock nanoseconds the batch ingest took.
        elapsed_ns: u64,
        /// The configured bound it breached, nanoseconds.
        bound_ns: u64,
        /// Per-phase self-time attribution for the batch, `(phase
        /// name, self ns)`, phases that ran only.
        phase_self_ns: Vec<(String, u64)>,
        /// Contexts captured as tail exemplars during the batch (their
        /// causal IDs resolve via `explain`).
        exemplars: Vec<ContextId>,
        /// The batch's speculation-efficiency accounting.
        spec: SpecBatch,
    },
}

impl TraceEvent {
    /// A short machine-friendly tag naming the event variant.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::Received { .. } => "received",
            TraceEvent::StateChanged { .. } => "state",
            TraceEvent::Detected { .. } => "detected",
            TraceEvent::DeltaInserted { .. } => "delta+",
            TraceEvent::DeltaRemoved { .. } => "delta-",
            TraceEvent::CountBumped { .. } => "count",
            TraceEvent::MarkedBad { .. } => "bad",
            TraceEvent::Discarded { .. } => "discard",
            TraceEvent::Delivered { .. } => "deliver",
            TraceEvent::Expired { .. } => "expired",
            TraceEvent::Caused { .. } => "cause",
            TraceEvent::Alert { .. } => "alert",
            TraceEvent::SlowBatch { .. } => "slow_batch",
        }
    }

    /// The context this event is primarily about, when it has one
    /// (detection and Δ events relate several contexts; see
    /// [`TraceEvent::contexts`]).
    pub fn primary_ctx(&self) -> Option<ContextId> {
        match self {
            TraceEvent::Received { ctx, .. }
            | TraceEvent::StateChanged { ctx, .. }
            | TraceEvent::CountBumped { ctx, .. }
            | TraceEvent::MarkedBad { ctx }
            | TraceEvent::Discarded { ctx }
            | TraceEvent::Delivered { ctx }
            | TraceEvent::Expired { ctx }
            | TraceEvent::Caused { ctx, .. } => Some(*ctx),
            TraceEvent::Detected { .. }
            | TraceEvent::DeltaInserted { .. }
            | TraceEvent::DeltaRemoved { .. }
            | TraceEvent::Alert { .. }
            | TraceEvent::SlowBatch { .. } => None,
        }
    }

    /// Every context the event involves.
    pub fn contexts(&self) -> Vec<ContextId> {
        match self {
            TraceEvent::Detected { contexts, .. }
            | TraceEvent::DeltaInserted { contexts, .. }
            | TraceEvent::DeltaRemoved { contexts, .. } => contexts.clone(),
            TraceEvent::Caused { ctx, partners, .. } => {
                let mut all = vec![*ctx];
                all.extend(partners.iter().copied());
                all
            }
            TraceEvent::SlowBatch { exemplars, .. } => exemplars.clone(),
            other => other.primary_ctx().into_iter().collect(),
        }
    }
}

/// `ctx#5, ctx#8` — comma-joined Display ids for event lines.
fn join_ids(contexts: &[ContextId]) -> String {
    let mut out = String::new();
    for (i, ctx) in contexts.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = fmt::Write::write_fmt(&mut out, format_args!("{ctx}"));
    }
    out
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Received { ctx, kind, subject } => {
                write!(f, "received {ctx} ({kind} of {subject:?})")
            }
            TraceEvent::StateChanged { ctx, from, to } => write!(f, "{ctx} {from} -> {to}"),
            TraceEvent::Detected {
                constraint,
                contexts,
            } => write!(f, "detected {constraint} among {}", join_ids(contexts)),
            TraceEvent::DeltaInserted {
                constraint,
                contexts,
            } => write!(f, "Δ += {constraint} [{}]", join_ids(contexts)),
            TraceEvent::DeltaRemoved {
                constraint,
                contexts,
            } => write!(f, "Δ -= {constraint} [{}]", join_ids(contexts)),
            TraceEvent::CountBumped { ctx, count } => write!(f, "count({ctx}) = {count}"),
            TraceEvent::MarkedBad { ctx } => write!(f, "{ctx} marked bad"),
            TraceEvent::Discarded { ctx } => write!(f, "{ctx} discarded"),
            TraceEvent::Delivered { ctx } => write!(f, "{ctx} delivered"),
            TraceEvent::Expired { ctx } => write!(f, "{ctx} expired on use"),
            TraceEvent::Caused {
                ctx,
                cause,
                constraint,
                partners,
                count,
                verdict,
            } => {
                write!(f, "{ctx} <- {cause}")?;
                if let Some(c) = constraint {
                    write!(f, " {c}")?;
                }
                if !partners.is_empty() {
                    write!(f, " with [{}]", join_ids(partners))?;
                }
                if let Some(n) = count {
                    write!(f, " count={n}")?;
                }
                if let Some(v) = verdict {
                    write!(f, " => {v}")?;
                }
                Ok(())
            }
            TraceEvent::Alert {
                rule,
                metric,
                kind,
                value,
                threshold,
                firing,
            } => {
                write!(
                    f,
                    "slo {} {rule}: {metric}",
                    if *firing { "FIRING" } else { "cleared" }
                )?;
                if let Some(k) = kind {
                    write!(f, "{{kind={k:?}}}")?;
                }
                write!(f, " = {value:.4} vs {threshold}")
            }
            TraceEvent::SlowBatch {
                batch,
                contexts,
                elapsed_ns,
                bound_ns,
                phase_self_ns,
                exemplars,
                spec,
            } => {
                write!(
                    f,
                    "slow batch #{batch} ({contexts} ctxs) {:.3}ms > bound {:.3}ms",
                    *elapsed_ns as f64 / 1e6,
                    *bound_ns as f64 / 1e6
                )?;
                if !phase_self_ns.is_empty() {
                    write!(f, "; phases")?;
                    for (phase, ns) in phase_self_ns {
                        write!(f, " {phase}={:.3}ms", *ns as f64 / 1e6)?;
                    }
                }
                write!(
                    f,
                    "; spec {}/{} consumed, {} wasted, {} inline",
                    spec.consumed, spec.groups_speculated, spec.wasted_dirty, spec.inline_checks
                )?;
                if !exemplars.is_empty() {
                    write!(f, "; exemplars [{}]", join_ids(exemplars))?;
                }
                Ok(())
            }
        }
    }
}

/// A trace event stamped with where and when it happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// The shard whose engine emitted the event.
    pub shard: u32,
    /// Per-shard monotonic sequence number (ties on `at` preserve
    /// emission order within a shard).
    pub seq: u64,
    /// The logical clock tick at emission.
    pub at: u64,
    /// What happened.
    pub event: TraceEvent,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t{:<6} shard {:<2} #{:<5} {}",
            self.at, self.shard, self.seq, self.event
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ContextId {
        ContextId::from_raw(n)
    }

    #[test]
    fn tags_and_contexts() {
        let e = TraceEvent::Detected {
            constraint: "speed".into(),
            contexts: vec![id(1), id(2)],
        };
        assert_eq!(e.tag(), "detected");
        assert_eq!(e.primary_ctx(), None);
        assert_eq!(e.contexts(), vec![id(1), id(2)]);

        let d = TraceEvent::Discarded { ctx: id(7) };
        assert_eq!(d.primary_ctx(), Some(id(7)));
        assert_eq!(d.contexts(), vec![id(7)]);
    }

    #[test]
    fn cause_edges_involve_effect_and_partners() {
        let e = TraceEvent::Caused {
            ctx: id(4),
            cause: CauseKind::ViolatedBy,
            constraint: Some("speed".into()),
            partners: vec![id(2)],
            count: None,
            verdict: None,
        };
        assert_eq!(e.tag(), "cause");
        assert_eq!(e.primary_ctx(), Some(id(4)));
        assert_eq!(e.contexts(), vec![id(4), id(2)]);
        let s = e.to_string();
        assert!(s.contains("violated_by"), "{s}");
        assert!(s.contains("speed"), "{s}");
        // Edges round-trip through the JSONL dump format.
        let json = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn cause_kind_names_are_stable() {
        let names: Vec<&str> = CAUSE_KINDS.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            [
                "submission_of",
                "violated_by",
                "joined_delta",
                "count_bumped_by",
                "resolved_because",
                "superseded_by",
            ]
        );
    }

    #[test]
    fn alerts_have_no_contexts_and_round_trip() {
        let e = TraceEvent::Alert {
            rule: "discard_rate{kind=\"rfid\"} > 0.3 for 5".into(),
            metric: "discard_rate".into(),
            kind: Some("rfid".into()),
            value: 0.4167,
            threshold: 0.3,
            firing: true,
        };
        assert_eq!(e.tag(), "alert");
        assert_eq!(e.primary_ctx(), None);
        assert!(e.contexts().is_empty());
        let s = e.to_string();
        assert!(s.contains("FIRING"), "{s}");
        assert!(s.contains("discard_rate"), "{s}");
        let json = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn slow_batch_postmortems_round_trip() {
        let e = TraceEvent::SlowBatch {
            batch: 7,
            contexts: 4096,
            elapsed_ns: 12_300_000,
            bound_ns: 5_000_000,
            phase_self_ns: vec![
                ("constraint_check".into(), 9_000_000),
                ("ingest".into(), 2_000_000),
            ],
            exemplars: vec![id(3), id(9)],
            spec: SpecBatch {
                groups_speculated: 10,
                consumed: 6,
                wasted_dirty: 2,
                inline_checks: 4,
                workers_used: 4,
                worker_busy_ns: vec![100, 200],
            },
        };
        assert_eq!(e.tag(), "slow_batch");
        assert_eq!(e.primary_ctx(), None);
        assert_eq!(e.contexts(), vec![id(3), id(9)]);
        let s = e.to_string();
        assert!(s.contains("slow batch #7"), "{s}");
        assert!(s.contains("constraint_check"), "{s}");
        assert!(s.contains("6/10 consumed"), "{s}");
        assert!(s.contains("ctx#3"), "{s}");
        let json = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn display_is_compact() {
        let r = TraceRecord {
            shard: 1,
            seq: 4,
            at: 9,
            event: TraceEvent::MarkedBad { ctx: id(3) },
        };
        let s = r.to_string();
        assert!(s.contains("shard 1"), "{s}");
        assert!(s.contains("marked bad"), "{s}");
    }
}

//! Windowed sampling over an [`ObsRegistry`]: deltas and rates between
//! consecutive snapshots.
//!
//! A raw [`ObsSnapshot`] is cumulative — counters only ever grow — which
//! is the right shape for correctness oracles but useless for watching a
//! run: "120 000 deliveries so far" says nothing about whether the
//! engine is currently moving. A [`Sampler`] remembers the previous
//! snapshot and, on each [`Sampler::sample`], produces a [`Sample`]
//! carrying both the cumulative state and the **windowed** view since
//! the last sample: per-shard counter deltas, per-second rates, and the
//! windowed slice of every histogram. Because counters are monotonic and
//! each is read atomically, per-window deltas telescope exactly: summing
//! a counter's deltas over all samples since the sampler started equals
//! the raw counter (asserted by a proptest below, with concurrent shard
//! writers).
//!
//! The sampler is what the `/metrics` and `/snapshot` endpoints
//! ([`crate::MetricsServer`]) and the `obs_top` dashboard scrape; each
//! scrape advances the window, so reported rates are "since the previous
//! scrape".

use crate::event::TraceEvent;
use crate::health::{HealthSample, HealthSnapshot, DEFAULT_EWMA_ALPHA};
use crate::metrics::{CounterKind, HistogramSnapshot, MetricKind, COUNTER_KINDS, METRIC_KINDS};
use crate::profile::{Phase, PhaseSample, ProfileSnapshot};
use crate::registry::{ObsRegistry, ObsSnapshot, ShardObs, ShardSnapshot};
use crate::slo::SloEngine;
use crate::tail::{TailSample, TailSnapshot};
use ctxres_context::LogicalTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// One shard's windowed view: counter deltas since the previous sample,
/// the same deltas as per-second rates, and the windowed slice of each
/// histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardRates {
    /// The shard index (0 for a merged total).
    pub shard: usize,
    /// Counter deltas since the previous sample, indexed by
    /// [`CounterKind::index`]. Never negative: counters are monotonic.
    pub counter_deltas: Vec<u64>,
    /// The deltas divided by the window length in seconds (all zero on
    /// the first sample, whose window is empty).
    pub counter_rates: Vec<f64>,
    /// The windowed slice of each histogram (observations recorded
    /// during this window), indexed by [`MetricKind::index`].
    pub histogram_deltas: Vec<HistogramSnapshot>,
    /// Events currently buffered in the shard's ring (a gauge).
    pub events_buffered: u64,
    /// Lifetime events evicted from the shard's full ring.
    pub events_dropped: u64,
}

impl ShardRates {
    /// A counter's delta over this window.
    pub fn delta(&self, kind: CounterKind) -> u64 {
        self.counter_deltas.get(kind.index()).copied().unwrap_or(0)
    }

    /// A counter's per-second rate over this window.
    pub fn rate(&self, kind: CounterKind) -> f64 {
        self.counter_rates.get(kind.index()).copied().unwrap_or(0.0)
    }

    /// A histogram's windowed slice.
    pub fn window(&self, kind: MetricKind) -> &HistogramSnapshot {
        &self.histogram_deltas[kind.index()]
    }

    fn between(shard: usize, prev: Option<&ShardSnapshot>, cur: &ShardSnapshot, secs: f64) -> Self {
        let zero = ShardSnapshot::zero();
        let prev = prev.unwrap_or(&zero);
        let counter_deltas: Vec<u64> = (0..COUNTER_KINDS.len())
            .map(|i| {
                let now = cur.counters.get(i).copied().unwrap_or(0);
                let was = prev.counters.get(i).copied().unwrap_or(0);
                now.saturating_sub(was)
            })
            .collect();
        let counter_rates = counter_deltas
            .iter()
            .map(|d| if secs > 0.0 { *d as f64 / secs } else { 0.0 })
            .collect();
        let histogram_deltas = (0..METRIC_KINDS.len())
            .map(|i| {
                let empty = HistogramSnapshot::empty();
                let now = cur.histograms.get(i).unwrap_or(&empty);
                let was = prev.histograms.get(i).unwrap_or(&empty);
                histogram_delta(was, now)
            })
            .collect();
        ShardRates {
            shard,
            counter_deltas,
            counter_rates,
            histogram_deltas,
            events_buffered: cur.events_buffered,
            events_dropped: cur.events_dropped,
        }
    }

    /// Adds another shard's windowed view into this one (cross-shard
    /// totals; rates sum because they share one window).
    pub fn merge(&mut self, other: &ShardRates) {
        for (mine, theirs) in self.counter_deltas.iter_mut().zip(&other.counter_deltas) {
            *mine += *theirs;
        }
        for (mine, theirs) in self.counter_rates.iter_mut().zip(&other.counter_rates) {
            *mine += *theirs;
        }
        for (mine, theirs) in self
            .histogram_deltas
            .iter_mut()
            .zip(&other.histogram_deltas)
        {
            mine.merge(theirs);
        }
        self.events_buffered += other.events_buffered;
        self.events_dropped += other.events_dropped;
    }
}

/// The windowed difference `now - was` of two cumulative histogram
/// snapshots (saturating per field, so a concurrent writer racing the
/// snapshot can never produce a negative count).
fn histogram_delta(was: &HistogramSnapshot, now: &HistogramSnapshot) -> HistogramSnapshot {
    HistogramSnapshot {
        count: now.count.saturating_sub(was.count),
        sum: now.sum.saturating_sub(was.sum),
        buckets: (0..now.buckets.len().max(was.buckets.len()))
            .map(|i| {
                let n = now.buckets.get(i).copied().unwrap_or(0);
                let w = was.buckets.get(i).copied().unwrap_or(0);
                n.saturating_sub(w)
            })
            .collect(),
    }
}

/// Build identity stamps for the process being scraped, so exported
/// series are attributable to a specific commit and host — the same
/// stamps `shard_bench` already writes into `bench_history.jsonl`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BuildInfo {
    /// Short commit hash (`GITHUB_SHA` env, then `git rev-parse
    /// --short HEAD`, else `"unknown"`).
    pub commit: String,
    /// Host name (`HOSTNAME` env, then `uname -n`, else `"unknown"`).
    pub host: String,
}

impl BuildInfo {
    /// Collects the stamps from the environment, falling back to git
    /// and `uname` and finally to `"unknown"` — never fails.
    pub fn collect() -> BuildInfo {
        BuildInfo {
            commit: env_or_cmd("GITHUB_SHA", "git", &["rev-parse", "--short", "HEAD"]),
            host: env_or_cmd("HOSTNAME", "uname", &["-n"]),
        }
    }
}

fn env_or_cmd(env: &str, cmd: &str, args: &[&str]) -> String {
    if let Ok(v) = std::env::var(env) {
        let v = v.trim().to_string();
        if !v.is_empty() {
            return v;
        }
    }
    std::process::Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// One observation window: the cumulative registry state plus the
/// windowed deltas/rates since the previous sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Length of this window in seconds (0 for the first sample).
    pub elapsed_secs: f64,
    /// Whether this is the sampler's first sample (rates are all zero).
    pub first: bool,
    /// The cumulative registry snapshot the window ends at.
    pub snapshot: ObsSnapshot,
    /// Per-shard windowed views, in shard order.
    pub shards: Vec<ShardRates>,
    /// All shards' windowed views merged (the `shard` field is
    /// meaningless and left 0).
    pub total: ShardRates,
    /// Quality telemetry for the window — per-kind rates, staleness
    /// and arena gauges, plus SLO alerts when an engine is attached.
    /// `None` (serialized as `null`, and tolerated when absent —
    /// pre-health dumps still load) until some engine publishes health
    /// state; the Prometheus exposition renders health sections only
    /// when present, so pre-health output is byte-identical.
    pub health: Option<HealthSample>,
    /// Per-phase profiler view — cumulative and windowed self/total
    /// times per shard × [`Phase`]. `None` unless the registry was
    /// built with [`crate::ObsConfig::with_profile`] and at least one
    /// phase has run; pre-profiler dumps (no `phases` key) still load.
    pub phases: Option<PhaseSample>,
    /// Build identity stamps, attached via
    /// [`Sampler::with_build_info`] (the metrics server does this
    /// automatically). `None` keeps older dumps and golden expositions
    /// byte-identical.
    pub build: Option<BuildInfo>,
    /// End-to-end tail-latency view for the window — per-outcome
    /// p50/p95/p99/p999, exemplar reservoirs, speculation-efficiency
    /// rates, and queue wait/service decomposition. `None` unless the
    /// registry was built with [`crate::ObsConfig::with_tail`] and
    /// something recorded; pre-tail dumps (no `tail` key) still load.
    pub tail: Option<TailSample>,
}

/// The quantiles the exporter and dashboards report.
pub const QUANTILES: [f64; 3] = [0.50, 0.95, 0.99];

impl Sample {
    /// Upper bounds on the p50/p95/p99 of a metric's **cumulative**
    /// cross-shard distribution, or `None` when nothing was recorded.
    pub fn quantile_bounds(&self, kind: MetricKind) -> Option<[u64; 3]> {
        let agg = self.snapshot.aggregate();
        let h = agg.histogram(kind);
        Some([
            h.quantile_bound(QUANTILES[0])?,
            h.quantile_bound(QUANTILES[1])?,
            h.quantile_bound(QUANTILES[2])?,
        ])
    }
}

/// Periodically captures an [`ObsRegistry`]'s state and derives the
/// windowed view between consecutive captures.
///
/// ```
/// use ctxres_obs::{CounterKind, ObsConfig, ObsRegistry, Sampler};
///
/// let registry = ObsRegistry::shared(ObsConfig::metrics_only(), 1);
/// let mut sampler = Sampler::new(Arc::clone(&registry));
/// sampler.sample(); // establish the baseline
/// registry.handle(0).count(CounterKind::Ingested, 40);
/// let s = sampler.sample_after(2.0); // a deterministic 2-second window
/// assert_eq!(s.total.delta(CounterKind::Ingested), 40);
/// assert_eq!(s.total.rate(CounterKind::Ingested), 20.0);
/// # use std::sync::Arc;
/// ```
#[derive(Debug)]
pub struct Sampler {
    registry: Arc<ObsRegistry>,
    prev: Option<(Instant, ObsSnapshot)>,
    prev_health: Option<HealthSnapshot>,
    prev_profile: Option<ProfileSnapshot>,
    prev_tail: Option<TailSnapshot>,
    ewma: HashMap<String, f64>,
    slo: Option<SloEngine>,
    build: Option<BuildInfo>,
}

impl Sampler {
    /// A sampler over `registry`; the first [`Sampler::sample`] is the
    /// baseline (empty window, zero rates).
    pub fn new(registry: Arc<ObsRegistry>) -> Self {
        Sampler {
            registry,
            prev: None,
            prev_health: None,
            prev_profile: None,
            prev_tail: None,
            ewma: HashMap::new(),
            slo: None,
            build: None,
        }
    }

    /// Attaches build identity stamps: every sample carries them in
    /// [`Sample::build`] and the Prometheus exposition renders a
    /// `ctxres_build_info` gauge. Opt-in because the stamps are
    /// machine-dependent (golden outputs stay reproducible without).
    pub fn with_build_info(mut self, build: BuildInfo) -> Self {
        self.build = Some(build);
        self
    }

    /// Attaches an SLO engine: each sample evaluates the rules against
    /// the window's health view, fills [`Sample::health`]'s alert
    /// fields, and (when event tracing is on) records each transition
    /// as a [`TraceEvent::Alert`] into shard 0's ring.
    pub fn with_slo(mut self, engine: SloEngine) -> Self {
        self.slo = Some(engine);
        self
    }

    /// The attached SLO engine, when one is.
    pub fn slo(&self) -> Option<&SloEngine> {
        self.slo.as_ref()
    }

    /// The registry this sampler reads.
    pub fn registry(&self) -> &Arc<ObsRegistry> {
        &self.registry
    }

    /// Takes a sample; the window is the wall-clock time since the
    /// previous call.
    pub fn sample(&mut self) -> Sample {
        let secs = self
            .prev
            .as_ref()
            .map(|(t, _)| t.elapsed().as_secs_f64())
            .unwrap_or(0.0);
        self.sample_after(secs)
    }

    /// Takes a sample with an explicitly supplied window length — the
    /// deterministic entry point tests and golden exports use.
    pub fn sample_after(&mut self, elapsed_secs: f64) -> Sample {
        // Attribute the sampler's own cost to the Export phase on the
        // last slot (the engine slot in sharded setups) so profiled
        // runs see what scraping costs them.
        let export_obs = if self.registry.shards() > 0 {
            self.registry.handle(self.registry.shards() - 1)
        } else {
            ShardObs::disabled()
        };
        let _export_phase = export_obs.phase(Phase::Export);
        let snapshot = self.registry.snapshot();
        let first = self.prev.is_none();
        let prev_snapshot = self.prev.take().map(|(_, s)| s);
        let shards: Vec<ShardRates> = snapshot
            .shards
            .iter()
            .enumerate()
            .map(|(i, cur)| {
                let prev = prev_snapshot.as_ref().and_then(|p| p.shards.get(i));
                ShardRates::between(i, prev, cur, elapsed_secs)
            })
            .collect();
        let mut total = ShardRates {
            shard: 0,
            counter_deltas: vec![0; COUNTER_KINDS.len()],
            counter_rates: vec![0.0; COUNTER_KINDS.len()],
            histogram_deltas: vec![HistogramSnapshot::empty(); METRIC_KINDS.len()],
            events_buffered: 0,
            events_dropped: 0,
        };
        for s in &shards {
            total.merge(s);
        }
        self.prev = Some((Instant::now(), snapshot.clone()));
        let tail = self.sample_tail();
        let health = self.sample_health(tail.as_ref());
        let phases = self.sample_phases();
        Sample {
            elapsed_secs,
            first,
            snapshot,
            shards,
            total,
            health,
            phases,
            build: self.build.clone(),
            tail,
        }
    }

    /// Computes the window's end-to-end tail view and advances the tail
    /// baseline. `None` while the tail layer is off or nothing has been
    /// recorded yet (the pre-tail shape).
    fn sample_tail(&mut self) -> Option<TailSample> {
        if !self.registry.config().tail {
            return None;
        }
        let cur = self.registry.tail_snapshot();
        if cur.is_empty() && self.prev_tail.is_none() {
            return None;
        }
        let sample = TailSample::between(self.prev_tail.as_ref(), cur.clone());
        self.prev_tail = Some(cur);
        Some(sample)
    }

    /// Computes the window's phase-profiler view and advances the
    /// profile baseline. `None` while profiling is off or no phase has
    /// run yet (the pre-profiler shape).
    fn sample_phases(&mut self) -> Option<PhaseSample> {
        if !self.registry.config().profile {
            return None;
        }
        let cur = self.registry.profile_snapshot();
        if cur.is_empty() && self.prev_profile.is_none() {
            return None;
        }
        let sample = PhaseSample::between(self.prev_profile.as_ref(), &cur);
        self.prev_profile = Some(cur);
        Some(sample)
    }

    /// Computes the window's health view, runs the SLO engine over it
    /// (with the window's tail view, so latency rules like `e2e_p99_ms`
    /// can fire), and advances the health baseline. `None` while nothing
    /// has published health state (the pre-health-telemetry shape).
    fn sample_health(&mut self, tail: Option<&TailSample>) -> Option<HealthSample> {
        let cur = self.registry.health_snapshot();
        if cur.is_empty() && self.prev_health.is_none() {
            return None;
        }
        let mut health = HealthSample::between(
            self.prev_health.as_ref(),
            &cur,
            &mut self.ewma,
            DEFAULT_EWMA_ALPHA,
        );
        if let Some(engine) = &mut self.slo {
            let at = cur.max_now_tick();
            let alerts = engine.evaluate_with_tail(&health, tail, at);
            if self.registry.shards() > 0 {
                let h = self.registry.handle(0);
                for a in &alerts {
                    h.record(
                        LogicalTime::new(a.at),
                        TraceEvent::Alert {
                            rule: a.rule.clone(),
                            metric: a.metric.clone(),
                            kind: a.kind.clone(),
                            value: a.value,
                            threshold: a.threshold,
                            firing: a.firing,
                        },
                    );
                }
            }
            health.alerts = alerts;
            health.active_alerts = engine.active();
        }
        self.prev_health = Some(cur);
        Some(health)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ObsConfig;

    #[test]
    fn first_sample_is_a_baseline_with_zero_rates() {
        let registry = ObsRegistry::shared(ObsConfig::enabled(), 2);
        registry.handle(1).count(CounterKind::Deliveries, 5);
        let mut sampler = Sampler::new(Arc::clone(&registry));
        let s = sampler.sample_after(0.0);
        assert!(s.first);
        // The baseline window is empty time but carries the full
        // cumulative delta from zero.
        assert_eq!(s.total.delta(CounterKind::Deliveries), 5);
        assert_eq!(s.total.rate(CounterKind::Deliveries), 0.0);
    }

    #[test]
    fn windows_carry_only_new_activity() {
        let registry = ObsRegistry::shared(ObsConfig::enabled(), 2);
        let mut sampler = Sampler::new(Arc::clone(&registry));
        registry.handle(0).count(CounterKind::Ingested, 10);
        sampler.sample_after(0.0);
        registry.handle(0).count(CounterKind::Ingested, 6);
        registry.handle(1).count(CounterKind::Ingested, 4);
        let s = sampler.sample_after(2.0);
        assert!(!s.first);
        assert_eq!(s.shards[0].delta(CounterKind::Ingested), 6);
        assert_eq!(s.shards[1].delta(CounterKind::Ingested), 4);
        assert_eq!(s.total.delta(CounterKind::Ingested), 10);
        assert_eq!(s.total.rate(CounterKind::Ingested), 5.0);
        // And the next window starts empty.
        let s2 = sampler.sample_after(1.0);
        assert_eq!(s2.total.delta(CounterKind::Ingested), 0);
    }

    #[test]
    fn histogram_windows_slice_the_distribution() {
        let registry = ObsRegistry::shared(ObsConfig::enabled(), 1);
        let h = registry.handle(0);
        h.observe(MetricKind::DeltaSize, 3);
        let mut sampler = Sampler::new(Arc::clone(&registry));
        sampler.sample_after(0.0);
        h.observe(MetricKind::DeltaSize, 100);
        h.observe(MetricKind::DeltaSize, 200);
        let s = sampler.sample_after(1.0);
        let w = s.total.window(MetricKind::DeltaSize);
        assert_eq!(w.count, 2);
        assert_eq!(w.sum, 300);
        assert_eq!(w.buckets.iter().sum::<u64>(), 2);
        // Cumulative quantiles still see all three observations.
        assert_eq!(
            s.snapshot
                .aggregate()
                .histogram(MetricKind::DeltaSize)
                .count,
            3
        );
    }

    #[test]
    fn quantile_bounds_come_from_the_cumulative_distribution() {
        let registry = ObsRegistry::shared(ObsConfig::enabled(), 1);
        for v in 1..=100u64 {
            registry.handle(0).observe(MetricKind::CheckLatency, v);
        }
        let mut sampler = Sampler::new(Arc::clone(&registry));
        let s = sampler.sample_after(0.0);
        let [p50, p95, p99] = s.quantile_bounds(MetricKind::CheckLatency).unwrap();
        assert!(p50 <= p95 && p95 <= p99);
        assert!((50..=64).contains(&p50), "{p50}");
        assert_eq!(s.quantile_bounds(MetricKind::RouteLatency), None);
    }

    #[test]
    fn health_rides_the_sampler_once_published() {
        let registry = ObsRegistry::shared(ObsConfig::metrics_only(), 2);
        let mut sampler = Sampler::new(Arc::clone(&registry));
        let s = sampler.sample_after(0.0);
        assert!(s.health.is_none(), "no health published yet");

        let kh = registry.handle(0).kind_handle("location");
        kh.ingested(10);
        kh.delivered(6);
        kh.discarded(4);
        registry.handle(1).publish_pool(8, 2, 3, 41);
        let s = sampler.sample_after(1.0);
        let h = s.health.clone().expect("health attached");
        assert_eq!(h.kind("location").unwrap().use_rate, Some(0.6));
        let p = h.pool.unwrap();
        assert_eq!((p.live_slots, p.free_slots, p.now_tick), (8, 2, 41));
        let json = serde_json::to_string(&s).unwrap();
        let back: Sample = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pre_health_samples_still_deserialize() {
        // A Sample dumped before the health field existed has no
        // "health" key; the field tolerates absence as None.
        let registry = ObsRegistry::shared(ObsConfig::metrics_only(), 1);
        let mut sampler = Sampler::new(registry);
        let s = sampler.sample_after(0.0);
        let json = serde_json::to_string(&s).unwrap();
        let stripped = json.replacen(",\"health\":null", "", 1);
        assert_ne!(stripped, json, "fixture actually dropped the field");
        let back: Sample = serde_json::from_str(&stripped).unwrap();
        assert!(back.health.is_none());
    }

    #[test]
    fn phases_ride_the_sampler_once_profiled() {
        let registry = ObsRegistry::shared(ObsConfig::metrics_only().with_profile(1), 2);
        let mut sampler = Sampler::new(Arc::clone(&registry));
        let s = sampler.sample_after(0.0);
        // The baseline sample's own Export span is recorded *after*
        // the profile snapshot was taken, so the first sample may or
        // may not carry phases; what matters is that real work shows.
        drop(s);
        let h = registry.handle(0);
        {
            let _g = h.phase(Phase::Ingest);
            let h2 = registry.handle(0);
            let _c = h2.phase(Phase::ConstraintCheck);
        }
        let s = sampler.sample_after(1.0);
        let phases = s.phases.clone().expect("phases attached");
        let shard0 = &phases.shards[0];
        let calls = |stats: &[crate::profile::PhaseStat], p: Phase| {
            stats
                .iter()
                .find(|s| s.phase == p.name())
                .map(|s| s.calls)
                .unwrap_or(0)
        };
        assert_eq!(calls(&shard0.cumulative, Phase::Ingest), 1);
        assert_eq!(calls(&shard0.cumulative, Phase::ConstraintCheck), 1);
        // The sampler's own export guard landed on the last slot.
        assert!(calls(&phases.cumulative_total, Phase::Export) >= 1);
        let json = serde_json::to_string(&s).unwrap();
        let back: Sample = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn phases_stay_none_without_profiling() {
        let registry = ObsRegistry::shared(ObsConfig::metrics_only(), 2);
        let mut sampler = Sampler::new(Arc::clone(&registry));
        let h = registry.handle(0);
        let _ = h.phase(Phase::Ingest);
        let s = sampler.sample_after(1.0);
        assert!(s.phases.is_none(), "profile off ⇒ no phases block");
    }

    #[test]
    fn build_info_is_opt_in_and_round_trips() {
        let registry = ObsRegistry::shared(ObsConfig::metrics_only(), 1);
        let mut sampler = Sampler::new(Arc::clone(&registry));
        assert!(sampler.sample_after(0.0).build.is_none());

        let build = BuildInfo {
            commit: "abc1234".into(),
            host: "bench-host".into(),
        };
        let mut sampler = Sampler::new(registry).with_build_info(build.clone());
        let s = sampler.sample_after(0.0);
        assert_eq!(s.build.as_ref(), Some(&build));
        let json = serde_json::to_string(&s).unwrap();
        let back: Sample = serde_json::from_str(&json).unwrap();
        assert_eq!(back.build, Some(build));
    }

    #[test]
    fn build_info_collect_never_fails() {
        let b = BuildInfo::collect();
        assert!(!b.commit.is_empty());
        assert!(!b.host.is_empty());
    }

    #[test]
    fn pre_phase_samples_still_deserialize() {
        // A Sample dumped before the profiler/build fields existed has
        // no "phases"/"build" keys; both tolerate absence as None.
        let registry = ObsRegistry::shared(ObsConfig::metrics_only(), 1);
        let mut sampler = Sampler::new(registry);
        let s = sampler.sample_after(0.0);
        let json = serde_json::to_string(&s).unwrap();
        let stripped = json
            .replacen(",\"phases\":null", "", 1)
            .replacen(",\"build\":null", "", 1);
        assert_ne!(stripped, json, "fixture actually dropped the fields");
        let back: Sample = serde_json::from_str(&stripped).unwrap();
        assert!(back.phases.is_none());
        assert!(back.build.is_none());
    }

    #[test]
    fn tail_rides_the_sampler_once_recorded() {
        use crate::tail::{ContextSpan, SpecOutcome, TailOutcome};
        let registry = ObsRegistry::shared(ObsConfig::metrics_only().with_tail(true), 2);
        let mut sampler = Sampler::new(Arc::clone(&registry));
        let s = sampler.sample_after(0.0);
        assert!(s.tail.is_none(), "nothing recorded yet");

        let span = ContextSpan {
            ingress_ns: 0,
            verdict_ns: 40_000,
            decision_ns: 60_000,
            end_ns: 100_000,
        };
        registry.handle(0).record_e2e(
            ctxres_context::ContextId::from_raw(7),
            TailOutcome::Delivered,
            span,
            3,
            SpecOutcome::Consumed,
            LogicalTime::new(9),
        );
        let s = sampler.sample_after(1.0);
        let tail = s.tail.clone().expect("tail attached");
        assert_eq!(tail.all.count, 1);
        assert!(tail.all.p99_ns.is_some());
        let json = serde_json::to_string(&s).unwrap();
        let back: Sample = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        // The next window starts empty but the cumulative snapshot and
        // its exemplars stay visible.
        let s2 = sampler.sample_after(1.0);
        let tail2 = s2.tail.expect("tail stays attached");
        assert_eq!(tail2.all.count, 0);
        assert_eq!(tail2.snapshot.exemplars().len(), 1);
    }

    #[test]
    fn tail_stays_none_without_the_lever() {
        use crate::tail::{ContextSpan, SpecOutcome, TailOutcome};
        let registry = ObsRegistry::shared(ObsConfig::metrics_only(), 1);
        registry.handle(0).record_e2e(
            ctxres_context::ContextId::from_raw(1),
            TailOutcome::Discarded,
            ContextSpan {
                ingress_ns: 0,
                verdict_ns: 1,
                decision_ns: 2,
                end_ns: 3,
            },
            0,
            SpecOutcome::NotSpeculated,
            LogicalTime::new(1),
        );
        let mut sampler = Sampler::new(registry);
        let s = sampler.sample_after(1.0);
        assert!(s.tail.is_none(), "tail off ⇒ no tail block");
    }

    #[test]
    fn pre_tail_samples_still_deserialize() {
        // A Sample dumped before the tail field existed has no "tail"
        // key; the field tolerates absence as None.
        let registry = ObsRegistry::shared(ObsConfig::metrics_only(), 1);
        let mut sampler = Sampler::new(registry);
        let s = sampler.sample_after(0.0);
        let json = serde_json::to_string(&s).unwrap();
        let stripped = json.replacen(",\"tail\":null", "", 1);
        assert_ne!(stripped, json, "fixture actually dropped the field");
        let back: Sample = serde_json::from_str(&stripped).unwrap();
        assert!(back.tail.is_none());
    }

    #[test]
    fn slo_alerts_fire_through_the_sampler_and_land_in_the_trace() {
        let registry = ObsRegistry::shared(ObsConfig::enabled(), 1);
        let engine = SloEngine::from_spec("discard_rate > 0.3 for 2").unwrap();
        let mut sampler = Sampler::new(Arc::clone(&registry)).with_slo(engine);
        let kh = registry.handle(0).kind_handle("location");
        sampler.sample_after(0.0);
        kh.ingested(10);
        kh.discarded(9);
        kh.delivered(1);
        let s = sampler.sample_after(1.0); // first breach: armed
        assert!(s.health.unwrap().alerts.is_empty());
        kh.ingested(10);
        kh.discarded(9);
        kh.delivered(1);
        let s = sampler.sample_after(1.0); // second breach: fires
        let h = s.health.unwrap();
        assert_eq!(h.alerts.len(), 1);
        assert!(h.alerts[0].firing);
        assert_eq!(h.active_alerts.len(), 1);
        assert!(sampler.slo().unwrap().is_firing("discard_rate > 0.3 for 2"));
        let trace = registry.drain();
        assert!(
            trace
                .iter()
                .any(|r| matches!(&r.event, TraceEvent::Alert { firing: true, .. })),
            "the transition rides the trace ring"
        );
    }

    #[test]
    fn sample_round_trips_through_serde() {
        let registry = ObsRegistry::shared(ObsConfig::enabled(), 2);
        registry.handle(0).count(CounterKind::Discards, 2);
        registry.handle(1).observe(MetricKind::QueueDepth, 9);
        let mut sampler = Sampler::new(registry);
        sampler.sample_after(0.0);
        let s = sampler.sample_after(1.5);
        let json = serde_json::to_string(&s).unwrap();
        let back: Sample = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}

#[cfg(test)]
mod delta_proptests {
    //! The satellite property: sampler deltas are non-negative by type
    //! (u64) and **sum-consistent** — summing every window's delta for a
    //! counter reproduces the raw registry counter exactly, even when
    //! the samples were taken while shard writer threads were racing.

    use super::*;
    use crate::registry::ObsConfig;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn windowed_deltas_sum_to_the_raw_counters(
            per_writer in proptest::collection::vec(
                proptest::collection::vec((0usize..3, 1u64..50), 1..40),
                1..4,
            ),
            mid_samples in 1usize..4,
        ) {
            let shards = per_writer.len();
            let registry = ObsRegistry::shared(ObsConfig::metrics_only(), shards);
            let mut sampler = Sampler::new(Arc::clone(&registry));
            sampler.sample_after(0.0);
            let mut summed = vec![0u64; COUNTER_KINDS.len()];

            let done = AtomicBool::new(false);
            std::thread::scope(|scope| {
                for (shard, ops) in per_writer.iter().enumerate() {
                    let h = registry.handle(shard);
                    let ops = ops.clone();
                    scope.spawn(move || {
                        for (kind_ix, n) in ops {
                            // Skip the ring-managed kinds: writers bump
                            // the strategy counters the middleware uses.
                            let kind = [
                                CounterKind::Detections,
                                CounterKind::Discards,
                                CounterKind::Ingested,
                            ][kind_ix];
                            h.count(kind, n);
                            h.observe(MetricKind::DeltaSize, n);
                        }
                    });
                }
                // Sample concurrently with the writers: every delta must
                // still be consistent (we only assert the telescoped sum
                // at the end, but each mid-flight sample's deltas feed
                // it, so a lost or double-counted window would show).
                for _ in 0..mid_samples {
                    let s = sampler.sample_after(0.01);
                    for (i, d) in s.total.counter_deltas.iter().enumerate() {
                        summed[i] += d;
                    }
                }
                done.store(true, Ordering::Relaxed);
            });

            // Writers are done; a final sample closes the telescope.
            let s = sampler.sample_after(0.01);
            for (i, d) in s.total.counter_deltas.iter().enumerate() {
                summed[i] += d;
            }
            let agg = registry.snapshot().aggregate();
            for kind in COUNTER_KINDS {
                prop_assert_eq!(
                    summed[kind.index()],
                    agg.counter(kind),
                    "counter {} must telescope", kind.name()
                );
            }
            // The histogram window slices telescope too.
            prop_assert!(done.load(Ordering::Relaxed));
        }
    }
}

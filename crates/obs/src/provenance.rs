//! Provenance graph: fold a trace into per-context causal chains.
//!
//! Drop-bad defers every discard: by the time a context is thrown away,
//! the violations that condemned it are long past. The flat
//! [`TraceEvent`] stream records *that* transitions happened; this
//! module reconstructs *why*, by folding the typed
//! [`TraceEvent::Caused`] edges (plus the flat events around them) into
//! a queryable DAG of [`ProvNode`]s — one per `(shard, ctx)` — each
//! carrying its ordered causal chain from submission to verdict.
//!
//! The ID scheme: context ids are shard-local, so a node is keyed by
//! the `(shard, ctx)` pair ([`NodeId`]) — globally unique within one
//! run's trace. Each edge's stable causal ID is the `(at, seq)` stamp
//! of its carrying [`TraceRecord`]: per-shard `seq` is assigned at
//! emission, so the pair totally orders a shard's edges even within one
//! logical tick. Cross-shard (and cross-run) stitching uses the
//! content-based [`ProvNode::identity`] — `(kind, subject,
//! received_at)` — which is independent of pool numbering: the same
//! workload replayed through a sequential engine, a sharded engine, or
//! a different strategy yields matching identities, which is what
//! `explain --diff` joins on.

use crate::event::{CauseKind, TraceEvent, TraceRecord};
use ctxres_context::{ContextId, ContextState};
use serde::Serialize;
use std::collections::BTreeMap;

/// Stable node ID: the shard that owns the context plus its pool-local
/// id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct NodeId {
    /// The shard whose pool assigned `ctx`.
    pub shard: u32,
    /// The shard-local context id.
    pub ctx: ContextId,
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}/{}", self.shard, self.ctx)
    }
}

/// One typed cause edge attached to a node's chain.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CauseEdge {
    /// Logical tick of the carrying record (half of the causal ID).
    pub at: u64,
    /// Per-shard emission sequence (the other half of the causal ID).
    pub seq: u64,
    /// The typed relation.
    pub cause: CauseKind,
    /// The constraint implicated, when one is.
    pub constraint: Option<String>,
    /// The other contexts bound in the causing violation (same shard as
    /// the effect node).
    pub partners: Vec<NodeId>,
    /// The deciding count value, when counts are implicated.
    pub count: Option<u64>,
    /// For verdict edges: the state the decision put the context in.
    pub verdict: Option<ContextState>,
}

/// One context's provenance: identity, causal chain, and flat timeline.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProvNode {
    /// The node's stable ID.
    pub id: NodeId,
    /// Kind name, from the submission event.
    pub kind: Option<String>,
    /// Subject, from the submission event.
    pub subject: Option<String>,
    /// Logical tick the context entered the middleware.
    pub received_at: Option<u64>,
    /// The last state the trace saw the context in.
    pub final_state: Option<ContextState>,
    /// Typed cause edges in causal `(at, seq)` order.
    pub chain: Vec<CauseEdge>,
    /// Every flat (non-edge) event involving this context, in trace
    /// order.
    pub timeline: Vec<TraceRecord>,
}

impl ProvNode {
    /// Content-based identity for cross-shard / cross-run stitching:
    /// independent of pool numbering, equal for the same submission
    /// wherever it was routed. `None` until the submission edge or
    /// `Received` event is seen.
    pub fn identity(&self) -> Option<(String, String, u64)> {
        match (&self.kind, &self.subject, self.received_at) {
            (Some(k), Some(s), Some(at)) => Some((k.clone(), s.clone(), at)),
            _ => None,
        }
    }

    /// Whether the trace ended with this context discarded.
    pub fn discarded(&self) -> bool {
        self.final_state == Some(ContextState::Inconsistent)
    }

    /// Chain depth: the number of typed cause edges behind the verdict.
    pub fn chain_depth(&self) -> usize {
        self.chain.len()
    }

    /// The verdict edge (`ResolvedBecause` or `SupersededBy`), when the
    /// chain reached one.
    pub fn verdict_edge(&self) -> Option<&CauseEdge> {
        self.chain.iter().rev().find(|e| {
            matches!(
                e.cause,
                CauseKind::ResolvedBecause | CauseKind::SupersededBy
            )
        })
    }

    /// Gaps that keep this node's chain from being a complete
    /// explanation: an empty vec means the chain fully accounts for the
    /// context's life — a submission root, a `ViolatedBy` edge for
    /// every detection the context participated in, a `CountBumpedBy`
    /// edge for every count bump, and a verdict edge for every decided
    /// context.
    pub fn completeness_gaps(&self) -> Vec<String> {
        let mut gaps = Vec::new();
        if !self
            .chain
            .iter()
            .any(|e| e.cause == CauseKind::SubmissionOf)
        {
            gaps.push("no submission_of root".to_owned());
        }
        if self.final_state.is_some_and(|s| s.is_terminal()) && self.verdict_edge().is_none() {
            gaps.push(format!(
                "decided ({}) but no verdict edge",
                self.final_state.map(|s| s.to_string()).unwrap_or_default()
            ));
        }
        for rec in &self.timeline {
            match &rec.event {
                TraceEvent::Detected { constraint, .. } => {
                    let covered = self.chain.iter().any(|e| {
                        e.cause == CauseKind::ViolatedBy
                            && e.at == rec.at
                            && e.constraint.as_deref() == Some(constraint.as_str())
                    });
                    if !covered {
                        gaps.push(format!(
                            "detection of {constraint} at t{} unexplained",
                            rec.at
                        ));
                    }
                }
                TraceEvent::CountBumped { count, .. } => {
                    let covered = self.chain.iter().any(|e| {
                        e.cause == CauseKind::CountBumpedBy
                            && e.at == rec.at
                            && e.count == Some(*count)
                    });
                    if !covered {
                        gaps.push(format!("count bump to {count} at t{} unexplained", rec.at));
                    }
                }
                _ => {}
            }
        }
        gaps
    }
}

/// Summary counters over a folded graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ProvStats {
    /// Nodes in the graph (contexts seen).
    pub nodes: usize,
    /// Typed cause edges attached.
    pub edges: usize,
    /// Nodes whose chains have no completeness gaps.
    pub complete_chains: usize,
    /// Discarded nodes.
    pub discarded: usize,
}

/// A queryable provenance DAG folded from a trace (live ring drains or
/// JSONL dumps).
#[derive(Debug, Clone, Default)]
pub struct ProvenanceGraph {
    nodes: BTreeMap<NodeId, ProvNode>,
    edges: usize,
}

impl ProvenanceGraph {
    /// Folds a trace into a graph. Records are re-sorted by
    /// `(at, shard, seq)` first, so unordered dumps fold identically to
    /// live drains.
    pub fn from_records(records: &[TraceRecord]) -> Self {
        let mut sorted: Vec<&TraceRecord> = records.iter().collect();
        sorted.sort_by_key(|r| (r.at, r.shard, r.seq));
        let mut graph = ProvenanceGraph::default();
        for rec in sorted {
            graph.fold(rec);
        }
        graph
    }

    fn node_mut(&mut self, id: NodeId) -> &mut ProvNode {
        self.nodes.entry(id).or_insert_with(|| ProvNode {
            id,
            kind: None,
            subject: None,
            received_at: None,
            final_state: None,
            chain: Vec::new(),
            timeline: Vec::new(),
        })
    }

    fn fold(&mut self, rec: &TraceRecord) {
        match &rec.event {
            TraceEvent::Caused {
                ctx,
                cause,
                constraint,
                partners,
                count,
                verdict,
            } => {
                let shard = rec.shard;
                let edge = CauseEdge {
                    at: rec.at,
                    seq: rec.seq,
                    cause: *cause,
                    constraint: constraint.clone(),
                    partners: partners.iter().map(|p| NodeId { shard, ctx: *p }).collect(),
                    count: *count,
                    verdict: *verdict,
                };
                let node = self.node_mut(NodeId { shard, ctx: *ctx });
                if let Some(v) = verdict {
                    node.final_state = Some(*v);
                }
                node.chain.push(edge);
                self.edges += 1;
            }
            TraceEvent::Received { ctx, kind, subject } => {
                let node = self.node_mut(NodeId {
                    shard: rec.shard,
                    ctx: *ctx,
                });
                node.kind = Some(kind.to_string());
                node.subject = Some(subject.to_string());
                node.received_at = Some(rec.at);
                node.timeline.push(rec.clone());
            }
            other => {
                for ctx in other.contexts() {
                    let node = self.node_mut(NodeId {
                        shard: rec.shard,
                        ctx,
                    });
                    if let TraceEvent::StateChanged { to, .. } = other {
                        node.final_state = Some(*to);
                    }
                    node.timeline.push(rec.clone());
                }
            }
        }
    }

    /// The node for `id`, when the trace mentioned it.
    pub fn node(&self, id: NodeId) -> Option<&ProvNode> {
        self.nodes.get(&id)
    }

    /// Every node, in `(shard, ctx)` order.
    pub fn nodes(&self) -> impl Iterator<Item = &ProvNode> {
        self.nodes.values()
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total typed cause edges folded in.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Every discarded node, in `(shard, ctx)` order.
    pub fn discarded(&self) -> Vec<&ProvNode> {
        self.nodes.values().filter(|n| n.discarded()).collect()
    }

    /// The cross-shard stitching index: nodes grouped by content
    /// identity. Nodes still missing a submission record are absent.
    pub fn by_identity(&self) -> BTreeMap<(String, String, u64), Vec<NodeId>> {
        let mut index: BTreeMap<(String, String, u64), Vec<NodeId>> = BTreeMap::new();
        for node in self.nodes.values() {
            if let Some(key) = node.identity() {
                index.entry(key).or_default().push(node.id);
            }
        }
        index
    }

    /// Summary counters.
    pub fn stats(&self) -> ProvStats {
        let mut complete = 0;
        let mut discarded = 0;
        for node in self.nodes.values() {
            if node.completeness_gaps().is_empty() {
                complete += 1;
            }
            if node.discarded() {
                discarded += 1;
            }
        }
        ProvStats {
            nodes: self.nodes.len(),
            edges: self.edges,
            complete_chains: complete,
            discarded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ContextId {
        ContextId::from_raw(n)
    }

    fn rec(shard: u32, seq: u64, at: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            shard,
            seq,
            at,
            event,
        }
    }

    fn sample_trace() -> Vec<TraceRecord> {
        vec![
            rec(
                0,
                0,
                1,
                TraceEvent::Received {
                    ctx: id(1),
                    kind: "location".into(),
                    subject: "alice".into(),
                },
            ),
            rec(
                0,
                1,
                1,
                TraceEvent::Caused {
                    ctx: id(1),
                    cause: CauseKind::SubmissionOf,
                    constraint: None,
                    partners: vec![],
                    count: None,
                    verdict: None,
                },
            ),
            rec(
                0,
                2,
                2,
                TraceEvent::Detected {
                    constraint: "speed".into(),
                    contexts: vec![id(1), id(2)],
                },
            ),
            rec(
                0,
                3,
                2,
                TraceEvent::Caused {
                    ctx: id(1),
                    cause: CauseKind::ViolatedBy,
                    constraint: Some("speed".into()),
                    partners: vec![id(2)],
                    count: None,
                    verdict: None,
                },
            ),
            rec(
                0,
                4,
                3,
                TraceEvent::CountBumped {
                    ctx: id(1),
                    count: 2,
                },
            ),
            rec(
                0,
                5,
                3,
                TraceEvent::Caused {
                    ctx: id(1),
                    cause: CauseKind::CountBumpedBy,
                    constraint: Some("speed".into()),
                    partners: vec![id(3)],
                    count: Some(2),
                    verdict: None,
                },
            ),
            rec(
                0,
                6,
                4,
                TraceEvent::Caused {
                    ctx: id(1),
                    cause: CauseKind::ResolvedBecause,
                    constraint: Some("speed".into()),
                    partners: vec![id(2)],
                    count: Some(2),
                    verdict: Some(ContextState::Inconsistent),
                },
            ),
        ]
    }

    #[test]
    fn folding_builds_chains_and_counts_edges() {
        let graph = ProvenanceGraph::from_records(&sample_trace());
        assert_eq!(graph.edge_count(), 4);
        let node = graph
            .node(NodeId {
                shard: 0,
                ctx: id(1),
            })
            .unwrap();
        assert_eq!(node.kind.as_deref(), Some("location"));
        assert_eq!(node.received_at, Some(1));
        assert_eq!(node.chain_depth(), 4);
        assert!(node.discarded());
        assert_eq!(
            node.verdict_edge().unwrap().verdict,
            Some(ContextState::Inconsistent)
        );
        assert!(
            node.completeness_gaps().is_empty(),
            "{:?}",
            node.completeness_gaps()
        );
        let stats = graph.stats();
        assert_eq!(stats.discarded, 1);
        assert!(stats.complete_chains >= 1);
    }

    #[test]
    fn unordered_dumps_fold_like_live_drains() {
        let mut shuffled = sample_trace();
        shuffled.reverse();
        let a = ProvenanceGraph::from_records(&sample_trace());
        let b = ProvenanceGraph::from_records(&shuffled);
        let na = a
            .node(NodeId {
                shard: 0,
                ctx: id(1),
            })
            .unwrap();
        let nb = b
            .node(NodeId {
                shard: 0,
                ctx: id(1),
            })
            .unwrap();
        assert_eq!(na, nb);
    }

    #[test]
    fn gaps_are_reported() {
        // A detection with no matching ViolatedBy edge is a gap.
        let trace = vec![
            rec(
                0,
                0,
                1,
                TraceEvent::Received {
                    ctx: id(1),
                    kind: "location".into(),
                    subject: "bob".into(),
                },
            ),
            rec(
                0,
                1,
                2,
                TraceEvent::Detected {
                    constraint: "speed".into(),
                    contexts: vec![id(1)],
                },
            ),
            rec(0, 2, 3, TraceEvent::Discarded { ctx: id(1) }),
        ];
        let graph = ProvenanceGraph::from_records(&trace);
        let node = graph
            .node(NodeId {
                shard: 0,
                ctx: id(1),
            })
            .unwrap();
        let gaps = node.completeness_gaps();
        assert!(
            gaps.iter().any(|g| g.contains("no submission_of root")),
            "{gaps:?}"
        );
        assert!(
            gaps.iter().any(|g| g.contains("detection of speed")),
            "{gaps:?}"
        );
    }

    #[test]
    fn identity_stitches_across_shards() {
        let mut trace = sample_trace();
        // The same submission processed by another shard under a
        // different local id.
        trace.push(rec(
            1,
            0,
            1,
            TraceEvent::Received {
                ctx: id(40),
                kind: "location".into(),
                subject: "alice".into(),
            },
        ));
        let graph = ProvenanceGraph::from_records(&trace);
        let index = graph.by_identity();
        let twins = &index[&("location".to_owned(), "alice".to_owned(), 1)];
        assert_eq!(twins.len(), 2);
        assert_eq!(twins[0].shard, 0);
        assert_eq!(twins[1].shard, 1);
    }
}

//! Fixed-bucket histograms and counters, recorded with atomics.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: powers of two from 1 to 2^23, plus one
/// overflow bucket.
pub const BUCKETS: usize = 25;

/// The upper bound (inclusive) of bucket `i` for `i < BUCKETS - 1`; the
/// last bucket catches everything larger. Exposed for exposition-format
/// renderers that need the `le` bound of each finite bucket.
pub fn bucket_bound(i: usize) -> u64 {
    1u64 << i
}

/// The bucket a value lands in.
fn bucket_of(value: u64) -> usize {
    for i in 0..BUCKETS - 1 {
        if value <= bucket_bound(i) {
            return i;
        }
    }
    BUCKETS - 1
}

/// The fixed set of per-shard latency/size distributions the middleware
/// records. Indexes into a shard slot's histogram array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Incremental consistency-check latency per addition change (ns).
    CheckLatency,
    /// Per-shard `batch_add` chunk ingest latency (ns).
    IngestLatency,
    /// Strategy resolution latency per use (ns).
    ResolveLatency,
    /// Batch partitioning / shard routing latency (ns).
    RouteLatency,
    /// How many ticks past its scheduled use instant a buffered context
    /// was actually used (logical ticks; 0 under a timely drain).
    UseResidualDelay,
    /// Size of the tracked set Δ after each change (count).
    DeltaSize,
    /// Buffered contexts awaiting use, sampled after each submit
    /// (count).
    QueueDepth,
    /// Causal-chain depth of each resolution decision: submission plus
    /// the violations, count bumps, and supersessions that led to the
    /// verdict (count; recorded once per delivered/discarded context
    /// when provenance is on).
    ChainDepth,
}

/// Every [`MetricKind`], in index order.
pub const METRIC_KINDS: [MetricKind; 8] = [
    MetricKind::CheckLatency,
    MetricKind::IngestLatency,
    MetricKind::ResolveLatency,
    MetricKind::RouteLatency,
    MetricKind::UseResidualDelay,
    MetricKind::DeltaSize,
    MetricKind::QueueDepth,
    MetricKind::ChainDepth,
];

impl MetricKind {
    /// Index into a shard slot's histogram array.
    pub fn index(self) -> usize {
        METRIC_KINDS
            .iter()
            .position(|k| *k == self)
            .expect("every kind is listed")
    }

    /// Snake-case metric name (stable; used in exports).
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::CheckLatency => "check_latency",
            MetricKind::IngestLatency => "ingest_latency",
            MetricKind::ResolveLatency => "resolve_latency",
            MetricKind::RouteLatency => "route_latency",
            MetricKind::UseResidualDelay => "use_residual_delay",
            MetricKind::DeltaSize => "delta_size",
            MetricKind::QueueDepth => "queue_depth",
            MetricKind::ChainDepth => "chain_depth",
        }
    }

    /// The unit recorded values are measured in.
    pub fn unit(self) -> &'static str {
        match self {
            MetricKind::CheckLatency
            | MetricKind::IngestLatency
            | MetricKind::ResolveLatency
            | MetricKind::RouteLatency => "ns",
            MetricKind::UseResidualDelay => "ticks",
            MetricKind::DeltaSize | MetricKind::QueueDepth | MetricKind::ChainDepth => "count",
        }
    }
}

/// Per-shard monotonic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CounterKind {
    /// Trace events accepted into the ring buffer.
    EventsRecorded,
    /// Trace events evicted from a full ring buffer (truncation is
    /// never silent).
    EventsDropped,
    /// Inconsistency detections observed.
    Detections,
    /// Discard decisions observed.
    Discards,
    /// Deliveries observed.
    Deliveries,
    /// Contexts accepted by a shard engine (context addition changes).
    Ingested,
    /// Situations actually re-evaluated in a dirty round.
    SituationEvals,
    /// Situation re-evaluations skipped because no kind the situation
    /// quantifies over changed (dirty-kind cache hits).
    SituationCacheSkips,
    /// Constraint evaluations served by a compiled program.
    CompiledEvals,
    /// Typed cause edges emitted into the trace (provenance).
    ProvEdges,
    /// Provenance graph nodes implied by the trace: one per context
    /// whose causal chain opened with a submission edge.
    ProvNodes,
    /// Predicate evaluations answered from the per-batch memo table on
    /// the fused checking path.
    PredMemoHits,
    /// Memoizable predicate evaluations that had to be computed (and
    /// were then cached) on the fused checking path.
    PredMemoMisses,
    /// Batches ingested through the fused path: set-pinned evaluation,
    /// deferred index maintenance, and speculative subject-group
    /// checking.
    FusedBatchEvals,
}

/// Every [`CounterKind`], in index order.
pub const COUNTER_KINDS: [CounterKind; 14] = [
    CounterKind::EventsRecorded,
    CounterKind::EventsDropped,
    CounterKind::Detections,
    CounterKind::Discards,
    CounterKind::Deliveries,
    CounterKind::Ingested,
    CounterKind::SituationEvals,
    CounterKind::SituationCacheSkips,
    CounterKind::CompiledEvals,
    CounterKind::ProvEdges,
    CounterKind::ProvNodes,
    CounterKind::PredMemoHits,
    CounterKind::PredMemoMisses,
    CounterKind::FusedBatchEvals,
];

impl CounterKind {
    /// Index into a shard slot's counter array.
    pub fn index(self) -> usize {
        COUNTER_KINDS
            .iter()
            .position(|k| *k == self)
            .expect("every kind is listed")
    }

    /// Snake-case counter name (stable; used in exports).
    pub fn name(self) -> &'static str {
        match self {
            CounterKind::EventsRecorded => "events_recorded",
            CounterKind::EventsDropped => "events_dropped",
            CounterKind::Detections => "detections",
            CounterKind::Discards => "discards",
            CounterKind::Deliveries => "deliveries",
            CounterKind::Ingested => "ingested",
            CounterKind::SituationEvals => "situation_evals",
            CounterKind::SituationCacheSkips => "situation_cache_skips",
            CounterKind::CompiledEvals => "compiled_evals",
            CounterKind::ProvEdges => "prov_edges",
            CounterKind::ProvNodes => "prov_nodes",
            CounterKind::PredMemoHits => "pred_memo_hits",
            CounterKind::PredMemoMisses => "pred_memo_misses",
            CounterKind::FusedBatchEvals => "fused_batch_evals",
        }
    }
}

/// A fixed-bucket histogram with power-of-two bounds, recordable from
/// any thread without a lock.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], mergeable across shards.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Per-bucket observation counts (bucket `i` holds values in
    /// `(2^(i-1), 2^i]`; the last bucket is the overflow).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot with the standard bucket count.
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// Adds another snapshot's observations into this one (cross-shard
    /// aggregation; commutative and associative).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += *theirs;
        }
    }

    /// Mean recorded value, if anything was recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// An upper bound on the `q`-quantile (`0.0..=1.0`): the bound of
    /// the first bucket at which the cumulative count reaches
    /// `q * count`. Returns `None` for an empty histogram; the overflow
    /// bucket reports `u64::MAX`.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return Some(if i == self.buckets.len() - 1 {
                    u64::MAX
                } else {
                    bucket_bound(i)
                });
            }
        }
        Some(u64::MAX)
    }

    /// A linearly interpolated estimate of the `q`-quantile
    /// (`0.0..=1.0`). Where [`Self::quantile_bound`] always reports the
    /// winning bucket's upper bound — up to 2x over on power-of-two
    /// buckets — this interpolates the target rank's position between
    /// the bucket's lower and upper bound, assuming observations spread
    /// uniformly within it. Returns `None` for an empty histogram and
    /// `f64::INFINITY` when the rank lands in the unbounded overflow
    /// bucket.
    pub fn quantile_est(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                if i == self.buckets.len() - 1 {
                    return Some(f64::INFINITY);
                }
                let lower = if i == 0 { 0 } else { bucket_bound(i - 1) };
                let upper = bucket_bound(i);
                let pos = (target - (cum - n)) as f64 / *n as f64;
                return Some(lower as f64 + (upper - lower) as f64 * pos);
            }
        }
        Some(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn record_accumulates() {
        let h = Histogram::new();
        for v in [1, 2, 3, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1006);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4);
    }

    #[test]
    fn merge_is_commutative() {
        let a0 = {
            let h = Histogram::new();
            h.record(5);
            h.record(700);
            h.snapshot()
        };
        let b0 = {
            let h = Histogram::new();
            h.record(1);
            h.snapshot()
        };
        let mut ab = a0.clone();
        ab.merge(&b0);
        let mut ba = b0.clone();
        ba.merge(&a0);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 3);
    }

    #[test]
    fn quantiles_bound_the_distribution() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.quantile_bound(0.5).unwrap();
        let p100 = s.quantile_bound(1.0).unwrap();
        assert!((50..=64).contains(&p50), "{p50}");
        assert!((100..=128).contains(&p100), "{p100}");
        assert_eq!(HistogramSnapshot::empty().quantile_bound(0.5), None);
    }

    /// The interpolated estimator never exceeds the bucket bound and is
    /// strictly tighter whenever the rank falls inside a bucket: for a
    /// uniform 1..=100 load the p50 estimate is exact (50.0) where the
    /// bound over-reports at 64.
    #[test]
    fn quantile_est_interpolates_within_the_bucket() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let est = s.quantile_est(0.5).unwrap();
        assert!((est - 50.0).abs() < 1e-9, "{est}");
        assert!(est <= s.quantile_bound(0.5).unwrap() as f64);
        for q in [0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let est = s.quantile_est(q).unwrap();
            let bound = s.quantile_bound(q).unwrap();
            assert!(est <= bound as f64, "q={q}: est {est} > bound {bound}");
        }
        assert_eq!(HistogramSnapshot::empty().quantile_est(0.5), None);
    }

    /// Overflow-bucket ranks have no finite upper bound: the estimate
    /// is infinite there, matching `quantile_bound`'s `u64::MAX`.
    #[test]
    fn quantile_est_overflow_is_infinite() {
        let h = Histogram::new();
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.quantile_est(0.5), Some(f64::INFINITY));
        assert_eq!(s.quantile_bound(0.5), Some(u64::MAX));
    }

    #[test]
    fn mean_of_empty_is_none() {
        assert_eq!(HistogramSnapshot::empty().mean(), None);
    }

    #[test]
    fn kind_indexes_are_dense() {
        for (i, k) in METRIC_KINDS.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        for (i, k) in COUNTER_KINDS.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }
}

//! The per-shard observation registry and its cheap handles.

use crate::event::{TraceEvent, TraceRecord};
use crate::health::{HealthSnapshot, KindHandle, ShardHealthSlot};
use crate::metrics::{
    CounterKind, Histogram, HistogramSnapshot, MetricKind, COUNTER_KINDS, METRIC_KINDS,
};
use crate::profile::{Phase, PhaseGuard, ProfileSnapshot, ShardProfileSlot, SpanRecord};
use crate::ring::EventRing;
use crate::span::ObsSpan;
use crate::tail::{
    ContextSpan, Exemplar, ShardTailSlot, SpecBatch, SpecOutcome, TailOutcome, TailSnapshot,
};
use ctxres_context::LogicalTime;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Run-time observability configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Whether any recording happens at all.
    pub enabled: bool,
    /// Whether per-event tracing (ring-buffer pushes) happens; counters
    /// and histograms record regardless when `enabled`.
    pub trace_events: bool,
    /// Whether typed cause edges ([`TraceEvent::Caused`]) are emitted
    /// alongside the flat life-cycle events. Only meaningful with
    /// `trace_events`: edges ride the same rings.
    pub provenance: bool,
    /// Whether per-kind quality telemetry (health counters, staleness
    /// watermarks, arena gauges) is recorded and published. Counters
    /// and histograms record regardless when `enabled`.
    pub health: bool,
    /// Whether the hierarchical phase profiler records
    /// ([`crate::PhaseGuard`] spans, per-phase cells, span rings).
    pub profile: bool,
    /// Profiler sampling divisor: only every N-th *root* phase span
    /// records (1 = record everything). Only meaningful with `profile`.
    pub profile_sample: u32,
    /// Whether end-to-end tail-latency telemetry (context spans,
    /// exemplar capture, speculation-efficiency counters) is recorded.
    pub tail: bool,
    /// Slow-batch postmortem bound, nanoseconds: a fused batch whose
    /// wall-clock ingest exceeds it emits a [`TraceEvent::SlowBatch`]
    /// trace event. `0` disables postmortems. Only meaningful with
    /// `tail` (the postmortem bundles tail exemplars) and
    /// `trace_events` (it rides the trace rings).
    pub slow_batch_bound_ns: u64,
    /// Capacity of each shard's event ring buffer.
    pub ring_capacity: usize,
}

impl ObsConfig {
    /// Default ring capacity: large enough for every event of the
    /// experiment workloads, small enough to stay cache-friendly.
    pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

    /// Full tracing and metrics, provenance edges and tail spans
    /// included.
    pub fn enabled() -> Self {
        ObsConfig {
            enabled: true,
            trace_events: true,
            provenance: true,
            health: true,
            profile: false,
            profile_sample: 1,
            tail: true,
            slow_batch_bound_ns: 0,
            ring_capacity: Self::DEFAULT_RING_CAPACITY,
        }
    }

    /// Counters and histograms only — no per-event ring pushes. The
    /// long-running export configuration: an open-ended workload never
    /// fills (or churns) the rings, while `/metrics` rates and
    /// quantiles stay live.
    pub fn metrics_only() -> Self {
        ObsConfig {
            enabled: true,
            trace_events: false,
            provenance: false,
            health: true,
            profile: false,
            profile_sample: 1,
            tail: false,
            slow_batch_bound_ns: 0,
            ring_capacity: 1,
        }
    }

    /// Everything compiled to a branch-and-return; tier-1 throughput is
    /// unaffected (asserted by the `shard_bench` overhead gate in CI).
    pub fn disabled() -> Self {
        ObsConfig {
            enabled: false,
            trace_events: false,
            provenance: false,
            health: false,
            profile: false,
            profile_sample: 1,
            tail: false,
            slow_batch_bound_ns: 0,
            ring_capacity: 0,
        }
    }

    /// Overrides the per-shard ring capacity.
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// Turns cause-edge emission on or off (tracing itself untouched) —
    /// the lever `shard_bench` uses to isolate the provenance cost.
    pub fn with_provenance(mut self, on: bool) -> Self {
        self.provenance = on;
        self
    }

    /// Turns health telemetry on or off (counters and histograms
    /// untouched) — the lever `city_bench` uses to isolate the health
    /// layer's marginal cost over the plain metrics configuration.
    pub fn with_health(mut self, on: bool) -> Self {
        self.health = on;
        self
    }

    /// Turns the hierarchical phase profiler on with a sampling divisor
    /// (`every = 1` records every root span, `every = 8` every eighth)
    /// — the lever `city_bench` uses to isolate the profiler's marginal
    /// cost over the plain metrics configuration.
    pub fn with_profile(mut self, every: u32) -> Self {
        self.profile = true;
        self.profile_sample = every.max(1);
        self
    }

    /// Turns end-to-end tail telemetry on or off (counters and
    /// histograms untouched) — the lever `city_bench` uses to isolate
    /// the tail layer's marginal cost over the plain metrics
    /// configuration.
    pub fn with_tail(mut self, on: bool) -> Self {
        self.tail = on;
        self
    }

    /// Sets the slow-batch postmortem bound in nanoseconds (`0` turns
    /// postmortems off). Implies nothing else: postmortems also need
    /// `tail` and `trace_events` to be on.
    pub fn with_slow_batch_bound(mut self, bound_ns: u64) -> Self {
        self.slow_batch_bound_ns = bound_ns;
        self
    }
}

/// One shard's instrumentation state: a locked event ring plus
/// lock-free counters and histograms.
#[derive(Debug)]
struct ShardSlot {
    ring: Mutex<EventRing>,
    seq: AtomicU64,
    counters: [AtomicU64; COUNTER_KINDS.len()],
    histograms: [Histogram; METRIC_KINDS.len()],
    health: ShardHealthSlot,
    profile: ShardProfileSlot,
    tail: ShardTailSlot,
}

impl ShardSlot {
    fn new(config: &ObsConfig, epoch: Instant) -> Self {
        ShardSlot {
            ring: Mutex::new(EventRing::new(config.ring_capacity)),
            seq: AtomicU64::new(0),
            counters: Default::default(),
            histograms: Default::default(),
            health: ShardHealthSlot::default(),
            profile: ShardProfileSlot::new(
                config.enabled && config.profile,
                config.profile_sample,
                epoch,
            ),
            tail: ShardTailSlot::new(config.enabled && config.tail),
        }
    }
}

/// The metrics registry: one slot per shard, no global lock anywhere.
///
/// Counters and histograms are atomics; the event ring is behind a
/// per-shard `Mutex` held only for a push or a drain. Aggregation
/// ([`ObsRegistry::snapshot`]) visits slots one by one, exactly like
/// `ShardedMiddleware::stats` aggregates `MiddlewareStats`.
#[derive(Debug)]
pub struct ObsRegistry {
    config: ObsConfig,
    epoch: Instant,
    slots: Vec<ShardSlot>,
}

impl ObsRegistry {
    /// A registry with `shards` slots.
    pub fn new(config: ObsConfig, shards: usize) -> Self {
        // One epoch shared by every slot so span timestamps from
        // different shards (and tail stamps) line up on one timeline.
        let epoch = Instant::now();
        let slots = (0..shards)
            .map(|_| ShardSlot::new(&config, epoch))
            .collect();
        ObsRegistry {
            config,
            epoch,
            slots,
        }
    }

    /// [`ObsRegistry::new`] wrapped in the `Arc` the handles need.
    pub fn shared(config: ObsConfig, shards: usize) -> Arc<Self> {
        Arc::new(ObsRegistry::new(config, shards))
    }

    /// The configuration the registry was built with.
    pub fn config(&self) -> ObsConfig {
        self.config
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// Number of shard slots.
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// A cheap per-shard recording handle. A handle from a disabled
    /// registry is indistinguishable from [`ShardObs::disabled`].
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range on an enabled registry.
    pub fn handle(self: &Arc<Self>, shard: usize) -> ShardObs {
        if !self.config.enabled {
            return ShardObs::disabled();
        }
        assert!(shard < self.slots.len(), "shard {shard} out of range");
        ShardObs {
            inner: Some(ShardObsInner {
                registry: Arc::clone(self),
                shard,
            }),
        }
    }

    /// Drains every shard's ring and returns the combined trace ordered
    /// by logical time (ties: shard, then per-shard sequence). Does not
    /// stall recording: each shard's lock is held only for its drain.
    pub fn drain(&self) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        for slot in &self.slots {
            out.extend(slot.ring.lock().drain());
        }
        out.sort_by_key(|r| (r.at, r.shard, r.seq));
        out
    }

    /// Total events evicted from full rings across all shards (lifetime).
    pub fn dropped(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.ring.lock().dropped())
            .sum::<u64>()
    }

    /// A point-in-time copy of every shard's counters and histograms,
    /// collected shard by shard without a global lock.
    pub fn snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            shards: self
                .slots
                .iter()
                .enumerate()
                .map(|(i, slot)| {
                    let ring = slot.ring.lock();
                    ShardSnapshot {
                        shard: i,
                        events_buffered: ring.len() as u64,
                        events_dropped: ring.dropped(),
                        counters: slot
                            .counters
                            .iter()
                            .map(|c| c.load(Ordering::Relaxed))
                            .collect(),
                        histograms: slot.histograms.iter().map(Histogram::snapshot).collect(),
                    }
                })
                .collect(),
        }
    }

    /// A point-in-time copy of every shard's health state (kind cells
    /// and arena gauges); empty until an engine publishes some.
    pub fn health_snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            shards: self
                .slots
                .iter()
                .enumerate()
                .map(|(i, slot)| slot.health.snapshot(i))
                .collect(),
        }
    }

    /// A point-in-time copy of every shard's phase-profiler cells;
    /// empty until a [`PhaseGuard`] records (i.e. always empty unless
    /// the registry was configured with [`ObsConfig::with_profile`]).
    pub fn profile_snapshot(&self) -> ProfileSnapshot {
        ProfileSnapshot {
            shards: self
                .slots
                .iter()
                .enumerate()
                .map(|(i, slot)| slot.profile.snapshot(i))
                .collect(),
        }
    }

    /// A point-in-time copy of every shard's tail telemetry (end-to-end
    /// histograms, exemplar reservoirs, speculation/queue counters);
    /// empty until something records with [`ObsConfig::tail`] on.
    pub fn tail_snapshot(&self) -> TailSnapshot {
        TailSnapshot {
            shards: self
                .slots
                .iter()
                .enumerate()
                .map(|(i, slot)| slot.tail.snapshot(i))
                .collect(),
        }
    }

    /// Drains every shard's completed-span ring into one list ordered
    /// by start time (ties: shard). Like [`ObsRegistry::drain`], each
    /// shard's lock is held only for its own drain.
    pub fn drain_spans(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for (i, slot) in self.slots.iter().enumerate() {
            out.extend(slot.profile.drain_spans(i));
        }
        out.sort_by_key(|s| (s.start_ns, s.shard));
        out
    }

    fn record(&self, shard: usize, at: LogicalTime, event: TraceEvent) {
        if !self.config.trace_events {
            return;
        }
        let slot = &self.slots[shard];
        let seq = slot.seq.fetch_add(1, Ordering::Relaxed);
        slot.counters[CounterKind::EventsRecorded.index()].fetch_add(1, Ordering::Relaxed);
        slot.ring.lock().push(TraceRecord {
            shard: shard as u32,
            seq,
            at: at.tick(),
            event,
        });
    }
}

#[derive(Debug, Clone)]
struct ShardObsInner {
    registry: Arc<ObsRegistry>,
    shard: usize,
}

/// A cheap, cloneable per-shard recording handle, held by one shard's
/// engine (and its strategy). Disabled handles make every operation a
/// branch-and-return.
#[derive(Debug, Clone, Default)]
pub struct ShardObs {
    inner: Option<ShardObsInner>,
}

impl ShardObs {
    /// A handle that records nothing (the default everywhere).
    pub fn disabled() -> Self {
        ShardObs { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The shard this handle records for, when enabled.
    pub fn shard(&self) -> Option<usize> {
        self.inner.as_ref().map(|i| i.shard)
    }

    /// Whether cause-edge (provenance) emission is on for this handle —
    /// true only when the registry traces events *and* was configured
    /// with [`ObsConfig::provenance`]. Emitters check this before
    /// building a [`TraceEvent::Caused`], so provenance-off runs pay
    /// nothing for the edges.
    pub fn provenance_enabled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.registry.config.trace_events && i.registry.config.provenance)
    }

    /// Records a trace event stamped `at`.
    pub fn record(&self, at: LogicalTime, event: TraceEvent) {
        if let Some(inner) = &self.inner {
            inner.registry.record(inner.shard, at, event);
        }
    }

    /// Bumps a per-shard counter by `n`.
    pub fn count(&self, kind: CounterKind, n: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.slots[inner.shard].counters[kind.index()]
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records one observation into a per-shard histogram.
    pub fn observe(&self, kind: MetricKind, value: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.slots[inner.shard].histograms[kind.index()].record(value);
        }
    }

    /// Opens a timing span ending (and recording) when dropped.
    pub fn span(&self, kind: MetricKind) -> ObsSpan<'_> {
        ObsSpan::new(self, kind)
    }

    /// Whether health telemetry is on for this handle — true only when
    /// the registry records at all *and* was configured with
    /// [`ObsConfig::health`]. Engines check this before bumping kind
    /// cells or publishing watermarks, so health-off runs pay nothing
    /// for the quality layer.
    pub fn health_enabled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.registry.config.health)
    }

    /// Whether the hierarchical phase profiler is on for this handle —
    /// true only when the registry records at all *and* was configured
    /// with [`ObsConfig::with_profile`]. A [`ShardObs::phase`] guard
    /// from a profile-off handle is a branch-and-return.
    pub fn profile_enabled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.registry.config.profile)
    }

    /// Opens a hierarchical phase span ending (and attributing its
    /// elapsed time, minus nested children, to `phase`) when dropped.
    /// Subject to the sampling divisor at root-span granularity.
    pub fn phase(&self, phase: Phase) -> PhaseGuard<'_> {
        match &self.inner {
            Some(inner) if inner.registry.config.profile => {
                inner.registry.slots[inner.shard].profile.begin(phase)
            }
            _ => PhaseGuard::disabled(),
        }
    }

    /// A per-kind quality-telemetry handle for this shard, interned on
    /// first use. Engines cache one handle per kind so the hot path is
    /// pure atomics; handles from a disabled (or health-off) registry
    /// record nothing.
    pub fn kind_handle(&self, kind: &str) -> KindHandle {
        match &self.inner {
            Some(inner) if inner.registry.config.health => {
                inner.registry.slots[inner.shard].health.kind_handle(kind)
            }
            _ => KindHandle::disabled(),
        }
    }

    /// Publishes this shard's arena gauges (occupied slots, free-list
    /// slots, lifetime slot recycles) stamped with the engine's
    /// logical clock.
    pub fn publish_pool(&self, live: u64, free: u64, recycles: u64, now_tick: u64) {
        if let Some(inner) = &self.inner {
            if inner.registry.config.health {
                inner.registry.slots[inner.shard]
                    .health
                    .publish_pool(live, free, recycles, now_tick);
            }
        }
    }

    /// Whether end-to-end tail telemetry is on for this handle — true
    /// only when the registry records at all *and* was configured with
    /// [`ObsConfig::with_tail`]. Engines check this before stamping
    /// context spans, so tail-off runs pay no clock reads.
    pub fn tail_enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.registry.config.tail)
    }

    /// The configured slow-batch postmortem bound in nanoseconds; 0
    /// when postmortems are off or the handle is disabled.
    pub fn slow_batch_bound_ns(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.registry.config.slow_batch_bound_ns)
    }

    /// Nanoseconds since the registry epoch — the clock context-span
    /// stamps are taken on (shared across shards so cross-shard spans
    /// line up). Returns 0 from a disabled handle.
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| {
            u64::try_from(i.registry.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
    }

    /// Folds one context's finished end-to-end span into the tail
    /// layer. Returns `true` when the span crossed the rolling p99
    /// threshold and was captured as an [`Exemplar`] (stamped with the
    /// profiler phase path open at this instant).
    pub fn record_e2e(
        &self,
        ctx: ctxres_context::ContextId,
        outcome: TailOutcome,
        span: ContextSpan,
        batch_index: u64,
        spec: SpecOutcome,
        at: LogicalTime,
    ) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        let slot = &inner.registry.slots[inner.shard];
        if !slot.tail.enabled() || !slot.tail.observe(outcome, span.total_ns()) {
            return false;
        }
        let (phase_path, phase_depth) = slot.profile.current_path();
        slot.tail.capture(Exemplar {
            shard: inner.shard,
            ctx,
            outcome,
            span,
            batch_index,
            phase_path,
            phase_depth,
            spec,
            at: at.tick(),
        });
        true
    }

    /// Adds one fused batch's speculation accounting to the tail layer.
    pub fn record_spec_batch(&self, batch: &SpecBatch) {
        if let Some(inner) = &self.inner {
            inner.registry.slots[inner.shard]
                .tail
                .record_spec_batch(batch);
        }
    }

    /// Records one shard-lock wait interval (queue wait component).
    pub fn record_queue_wait(&self, ns: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.slots[inner.shard].tail.record_queue_wait(ns);
        }
    }

    /// Records one chunk service interval (queue service component).
    pub fn record_queue_service(&self, ns: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.slots[inner.shard]
                .tail
                .record_queue_service(ns);
        }
    }
}

/// A point-in-time copy of one shard's metrics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// The shard index.
    pub shard: usize,
    /// Events currently buffered in the shard's ring.
    pub events_buffered: u64,
    /// Events evicted from the shard's full ring (lifetime).
    pub events_dropped: u64,
    /// Counter values, indexed by [`CounterKind::index`].
    pub counters: Vec<u64>,
    /// Histogram snapshots, indexed by [`MetricKind::index`].
    pub histograms: Vec<HistogramSnapshot>,
}

impl ShardSnapshot {
    /// An all-zero snapshot (the identity for [`ShardSnapshot::merge`]).
    pub fn zero() -> Self {
        ShardSnapshot {
            shard: 0,
            events_buffered: 0,
            events_dropped: 0,
            counters: vec![0; COUNTER_KINDS.len()],
            histograms: vec![HistogramSnapshot::empty(); METRIC_KINDS.len()],
        }
    }

    /// A counter's value.
    pub fn counter(&self, kind: CounterKind) -> u64 {
        self.counters.get(kind.index()).copied().unwrap_or(0)
    }

    /// A histogram's snapshot.
    pub fn histogram(&self, kind: MetricKind) -> &HistogramSnapshot {
        &self.histograms[kind.index()]
    }

    /// Adds another shard's snapshot into this one (field-wise sums and
    /// histogram merges; commutative and associative).
    pub fn merge(&mut self, other: &ShardSnapshot) {
        self.events_buffered += other.events_buffered;
        self.events_dropped += other.events_dropped;
        if self.counters.len() < other.counters.len() {
            self.counters.resize(other.counters.len(), 0);
        }
        for (mine, theirs) in self.counters.iter_mut().zip(&other.counters) {
            *mine += *theirs;
        }
        if self.histograms.len() < other.histograms.len() {
            self.histograms
                .resize(other.histograms.len(), HistogramSnapshot::empty());
        }
        for (mine, theirs) in self.histograms.iter_mut().zip(&other.histograms) {
            mine.merge(theirs);
        }
    }
}

/// A whole registry's snapshot: one record per shard.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsSnapshot {
    /// Per-shard snapshots in shard order.
    pub shards: Vec<ShardSnapshot>,
}

impl ObsSnapshot {
    /// Merges every shard into one cross-shard record (the aggregate's
    /// `shard` field is meaningless and left 0).
    pub fn aggregate(&self) -> ShardSnapshot {
        let mut total = ShardSnapshot::zero();
        for s in &self.shards {
            total.merge(s);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_context::ContextId;

    fn ev(n: u64) -> TraceEvent {
        TraceEvent::Delivered {
            ctx: ContextId::from_raw(n),
        }
    }

    #[test]
    fn disabled_registry_hands_out_noop_handles() {
        let registry = ObsRegistry::shared(ObsConfig::disabled(), 3);
        let h = registry.handle(0);
        assert!(!h.is_enabled());
        h.record(LogicalTime::ZERO, ev(1));
        h.observe(MetricKind::QueueDepth, 9);
        h.count(CounterKind::Deliveries, 1);
        assert!(registry.drain().is_empty());
        assert_eq!(
            registry
                .snapshot()
                .aggregate()
                .counter(CounterKind::Deliveries),
            0
        );
    }

    #[test]
    fn drain_orders_by_time_then_shard() {
        let registry = ObsRegistry::shared(ObsConfig::enabled(), 2);
        let a = registry.handle(0);
        let b = registry.handle(1);
        b.record(LogicalTime::new(5), ev(1));
        a.record(LogicalTime::new(2), ev(2));
        a.record(LogicalTime::new(5), ev(3));
        let trace = registry.drain();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].at, 2);
        assert_eq!((trace[1].at, trace[1].shard), (5, 0));
        assert_eq!((trace[2].at, trace[2].shard), (5, 1));
        assert!(registry.drain().is_empty(), "drain empties the rings");
    }

    #[test]
    fn dropped_counter_survives_drain() {
        let registry = ObsRegistry::shared(ObsConfig::enabled().with_ring_capacity(2), 1);
        let h = registry.handle(0);
        for i in 0..5 {
            h.record(LogicalTime::new(i), ev(i));
        }
        assert_eq!(registry.dropped(), 3);
        assert_eq!(registry.drain().len(), 2);
        assert_eq!(registry.dropped(), 3);
        let snap = registry.snapshot();
        assert_eq!(snap.shards[0].events_dropped, 3);
        assert_eq!(snap.shards[0].counter(CounterKind::EventsRecorded), 5);
    }

    #[test]
    fn aggregate_merges_all_shards() {
        let registry = ObsRegistry::shared(ObsConfig::enabled(), 3);
        for shard in 0..3 {
            let h = registry.handle(shard);
            h.observe(MetricKind::DeltaSize, (shard as u64 + 1) * 10);
            h.count(CounterKind::Detections, shard as u64);
        }
        let agg = registry.snapshot().aggregate();
        assert_eq!(agg.histogram(MetricKind::DeltaSize).count, 3);
        assert_eq!(agg.histogram(MetricKind::DeltaSize).sum, 60);
        assert_eq!(agg.counter(CounterKind::Detections), 3);
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let registry = ObsRegistry::shared(ObsConfig::enabled(), 2);
        registry.handle(1).observe(MetricKind::CheckLatency, 123);
        registry.handle(0).count(CounterKind::Discards, 7);
        let snap = registry.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: ObsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn metrics_only_records_counters_but_no_events() {
        let registry = ObsRegistry::shared(ObsConfig::metrics_only(), 2);
        let h = registry.handle(0);
        assert!(h.is_enabled());
        h.record(LogicalTime::new(1), ev(1));
        h.count(CounterKind::Ingested, 3);
        h.observe(MetricKind::QueueDepth, 7);
        assert!(registry.drain().is_empty(), "no ring pushes");
        assert_eq!(registry.dropped(), 0, "nothing pushed, nothing evicted");
        let agg = registry.snapshot().aggregate();
        assert_eq!(agg.counter(CounterKind::EventsRecorded), 0);
        assert_eq!(agg.counter(CounterKind::Ingested), 3);
        assert_eq!(agg.histogram(MetricKind::QueueDepth).count, 1);
    }

    #[test]
    fn provenance_gate_follows_config() {
        let full = ObsRegistry::shared(ObsConfig::enabled(), 1);
        assert!(full.handle(0).provenance_enabled());

        let traced_only = ObsRegistry::shared(ObsConfig::enabled().with_provenance(false), 1);
        assert!(traced_only.handle(0).is_enabled());
        assert!(!traced_only.handle(0).provenance_enabled());

        // Provenance edges need rings: a metrics-only registry never
        // claims provenance even if the flag is forced on.
        let metrics = ObsRegistry::shared(ObsConfig::metrics_only().with_provenance(true), 1);
        assert!(!metrics.handle(0).provenance_enabled());

        assert!(!ShardObs::disabled().provenance_enabled());
    }

    #[test]
    fn profile_gate_follows_config() {
        let profiled = ObsRegistry::shared(ObsConfig::metrics_only().with_profile(4), 1);
        assert!(profiled.handle(0).profile_enabled());
        assert_eq!(profiled.config().profile_sample, 4);

        let plain = ObsRegistry::shared(ObsConfig::metrics_only(), 1);
        assert!(!plain.handle(0).profile_enabled());

        assert!(!ShardObs::disabled().profile_enabled());
        // A zero divisor is clamped to "record everything".
        assert_eq!(ObsConfig::metrics_only().with_profile(0).profile_sample, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_handle_panics() {
        let registry = ObsRegistry::shared(ObsConfig::enabled(), 1);
        let _ = registry.handle(5);
    }
}

#[cfg(test)]
mod aggregation_proptests {
    //! The cross-shard aggregation oracle: splitting a stream of
    //! observations across N shards and aggregating must equal feeding
    //! the same stream to a single-shard registry.

    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn sharded_aggregate_equals_single_shard_oracle(
            values in proptest::collection::vec((0u64..1 << 20, 0usize..4), 0..64),
            shards in 1usize..5,
        ) {
            let sharded = ObsRegistry::shared(ObsConfig::enabled(), shards);
            let single = ObsRegistry::shared(ObsConfig::enabled(), 1);
            for (i, (v, kind_ix)) in values.iter().enumerate() {
                let kind = METRIC_KINDS[*kind_ix];
                sharded.handle(i % shards).observe(kind, *v);
                single.handle(0).observe(kind, *v);
                sharded.handle(i % shards).count(CounterKind::Detections, *v % 3);
                single.handle(0).count(CounterKind::Detections, *v % 3);
            }
            let mut agg = sharded.snapshot().aggregate();
            let mut oracle = single.snapshot().aggregate();
            // The shard index is presentation-only.
            agg.shard = 0;
            oracle.shard = 0;
            prop_assert_eq!(agg, oracle);
        }

        #[test]
        fn histogram_snapshot_serde_round_trip(
            values in proptest::collection::vec(0u64..u64::MAX / 128, 0..32),
        ) {
            let h = Histogram::new();
            for v in &values {
                h.record(*v);
            }
            let snap = h.snapshot();
            let json = serde_json::to_string(&snap).unwrap();
            let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(back, snap);
        }
    }
}

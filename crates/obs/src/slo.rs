//! Declarative SLO rules over the health estimators, with hysteresis.
//!
//! A rule names a health metric, an optional kind selector, a
//! direction and threshold, and how many consecutive breaching windows
//! it takes to fire:
//!
//! ```text
//! discard_rate{kind="rfid"} > 0.3 for 5
//! use_rate < 0.5 for 3
//! staleness > 1.0 for 2
//! pool_occupancy > 0.95 for 10
//! e2e_p99_ms > 5 for 2
//! ```
//!
//! The [`SloEngine`] is evaluated once per sampler window (each
//! `/metrics` or `/snapshot` scrape, each `obs_top` refresh, each soak
//! iteration) against the window's cross-shard [`HealthSample`] rows.
//! Semantics:
//!
//! * **fire**: `for_windows` *consecutive* breaching windows arm the
//!   rule; the transition emits a [`HealthAlert`] with `firing: true`
//!   (and, when tracing is on, a [`crate::TraceEvent::Alert`] into the
//!   rings);
//! * **clear**: while firing, the rule clears only after `for_windows`
//!   consecutive windows on the *safe* side of a hysteresis deadband —
//!   `threshold · (1 − clear_margin)` for `>` rules,
//!   `threshold · (1 + clear_margin)` for `<` rules. Values inside the
//!   deadband (breaching direction not quite reached, safe side not
//!   quite reached) never transition the rule in either direction, so
//!   a metric oscillating at the boundary cannot flap (asserted by a
//!   proptest below);
//! * **no traffic, no verdict**: a window in which the metric is
//!   undefined (nothing ingested, no such kind, no expiring contexts)
//!   freezes the rule's streaks instead of counting for either side.
//!
//! Burn-rate rules are the same machinery with the threshold derived
//! from an error budget: [`SloRule::burn_rate`] fires when the
//! windowed rate consumes the budget `factor` times too fast.

use crate::health::HealthSample;
use crate::tail::TailSample;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Environment variable holding SLO rules for [`crate::MetricsServer`]
/// (one rule per `;` or newline; `#` starts a comment).
pub const SLO_RULES_ENV: &str = "CTXRES_SLO_RULES";

/// Fraction of `for_windows` breaches a rule tolerates: none — the
/// streak resets on any non-breaching window. (Kept as a named
/// constant so the semantics are greppable.)
pub const DEFAULT_CLEAR_MARGIN: f64 = 0.1;

/// The health metric a rule watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SloMetric {
    /// Windowed `discarded / ingested` per kind.
    DiscardRate,
    /// Windowed `violations / ingested` per kind.
    ViolationRate,
    /// Windowed `delivered / (delivered + discarded)` per kind (the
    /// paper's `ctxUseRate`).
    UseRate,
    /// `oldest_live_age / lifespan` per kind (≥ 1.0 = outlived).
    Staleness,
    /// Aggregate arena occupancy `live / (live + free)`.
    PoolOccupancy,
    /// Windowed end-to-end p99 latency across all outcomes, in
    /// milliseconds — read from the sampler's tail view
    /// ([`crate::TailSample`]); undefined when the tail layer is off or
    /// the window recorded nothing.
    E2eP99Ms,
}

/// Every [`SloMetric`], in a stable order.
pub const SLO_METRICS: [SloMetric; 6] = [
    SloMetric::DiscardRate,
    SloMetric::ViolationRate,
    SloMetric::UseRate,
    SloMetric::Staleness,
    SloMetric::PoolOccupancy,
    SloMetric::E2eP99Ms,
];

impl SloMetric {
    /// The metric's snake-case rule-DSL name.
    pub fn name(self) -> &'static str {
        match self {
            SloMetric::DiscardRate => "discard_rate",
            SloMetric::ViolationRate => "violation_rate",
            SloMetric::UseRate => "use_rate",
            SloMetric::Staleness => "staleness",
            SloMetric::PoolOccupancy => "pool_occupancy",
            SloMetric::E2eP99Ms => "e2e_p99_ms",
        }
    }

    fn parse(s: &str) -> Option<SloMetric> {
        SLO_METRICS.into_iter().find(|m| m.name() == s)
    }
}

impl fmt::Display for SloMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Breach direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SloOp {
    /// Breach when the value exceeds the threshold (`>`).
    Above,
    /// Breach when the value falls below the threshold (`<`).
    Below,
}

/// One declarative SLO rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloRule {
    /// The rule's name (the DSL line it was parsed from, or whatever
    /// the constructor chose); alerts cite it.
    pub name: String,
    /// The health metric watched.
    pub metric: SloMetric,
    /// Restrict to one kind's cross-shard row; `None` watches the
    /// worst kind each window.
    pub kind: Option<String>,
    /// Breach direction.
    pub op: SloOp,
    /// The threshold.
    pub threshold: f64,
    /// Consecutive breaching windows required to fire (and consecutive
    /// safe windows required to clear). Clamped to ≥ 1.
    pub for_windows: u32,
    /// Hysteresis deadband as a fraction of the threshold: a firing
    /// `>` rule clears only below `threshold · (1 − clear_margin)`.
    pub clear_margin: f64,
}

impl SloRule {
    /// Parses one rule line:
    /// `metric[{kind="name"}] (>|<) threshold [for N]`.
    pub fn parse(line: &str) -> Result<SloRule, String> {
        let line = line.trim();
        let err = |what: &str| format!("{what} in SLO rule {line:?}");
        let mut rest = line;

        // metric, optionally with a {kind="..."} selector.
        let metric_end = rest
            .find(|c: char| c == '{' || c.is_whitespace())
            .unwrap_or(rest.len());
        let metric = SloMetric::parse(&rest[..metric_end]).ok_or_else(|| err("unknown metric"))?;
        rest = rest[metric_end..].trim_start();
        let kind = if let Some(sel) = rest.strip_prefix('{') {
            let (body, tail) = sel
                .split_once('}')
                .ok_or_else(|| err("unclosed selector"))?;
            rest = tail.trim_start();
            let kv = body
                .trim()
                .strip_prefix("kind=")
                .ok_or_else(|| err("selector must be kind=\"...\""))?;
            Some(kv.trim_matches('"').to_owned())
        } else {
            None
        };

        let mut tokens = rest.split_whitespace();
        let op = match tokens.next() {
            Some(">") => SloOp::Above,
            Some("<") => SloOp::Below,
            _ => return Err(err("expected > or <")),
        };
        let threshold: f64 = tokens
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err("bad threshold"))?;
        let for_windows = match tokens.next() {
            None => 1,
            Some("for") => tokens
                .next()
                .and_then(|t| t.trim_end_matches("windows").parse().ok())
                .ok_or_else(|| err("bad window count"))?,
            Some(_) => return Err(err("trailing tokens")),
        };
        if tokens.next().is_some() {
            return Err(err("trailing tokens"));
        }
        Ok(SloRule {
            name: line.to_owned(),
            metric,
            kind,
            op,
            threshold,
            for_windows: for_windows.max(1),
            clear_margin: DEFAULT_CLEAR_MARGIN,
        })
    }

    /// A burn-rate rule: fires when the windowed rate consumes an
    /// error budget `factor` times too fast — i.e. threshold
    /// `budget × factor`, breaching above.
    pub fn burn_rate(
        name: &str,
        metric: SloMetric,
        kind: Option<&str>,
        budget: f64,
        factor: f64,
        for_windows: u32,
    ) -> SloRule {
        SloRule {
            name: name.to_owned(),
            metric,
            kind: kind.map(str::to_owned),
            op: SloOp::Above,
            threshold: budget * factor,
            for_windows: for_windows.max(1),
            clear_margin: DEFAULT_CLEAR_MARGIN,
        }
    }

    /// The metric's value in this window, or `None` when undefined
    /// (no traffic / no such kind / tail layer off): the worst matching
    /// cross-shard row, the pool gauge, or the tail p99.
    fn value_in(&self, sample: &HealthSample, tail: Option<&TailSample>) -> Option<f64> {
        if self.metric == SloMetric::PoolOccupancy {
            return sample.pool.as_ref().and_then(|p| p.occupancy);
        }
        if self.metric == SloMetric::E2eP99Ms {
            return tail.and_then(|t| t.all.p99_ns).map(|ns| ns / 1e6);
        }
        let pick = |row: &crate::health::KindQuality| match self.metric {
            SloMetric::DiscardRate => row.discard_rate,
            SloMetric::ViolationRate => row.violation_rate,
            SloMetric::UseRate => row.use_rate,
            SloMetric::Staleness => row.staleness,
            SloMetric::PoolOccupancy | SloMetric::E2eP99Ms => unreachable!(),
        };
        let rows = sample
            .kinds
            .iter()
            .filter(|r| self.kind.as_deref().is_none_or(|k| r.kind == k));
        let values = rows.filter_map(pick);
        match self.op {
            SloOp::Above => values.max_by(f64::total_cmp),
            SloOp::Below => values.min_by(f64::total_cmp),
        }
    }

    fn breached(&self, value: f64) -> bool {
        match self.op {
            SloOp::Above => value > self.threshold,
            SloOp::Below => value < self.threshold,
        }
    }

    /// Past the hysteresis deadband on the safe side.
    fn safe(&self, value: f64) -> bool {
        match self.op {
            SloOp::Above => value <= self.threshold * (1.0 - self.clear_margin),
            SloOp::Below => value >= self.threshold * (1.0 + self.clear_margin),
        }
    }
}

/// An SLO transition: a rule fired (`firing: true`) or cleared.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthAlert {
    /// The transitioning rule's name.
    pub rule: String,
    /// The watched metric's name.
    pub metric: String,
    /// The rule's kind selector, when it has one.
    pub kind: Option<String>,
    /// The metric's value in the transitioning window.
    pub value: f64,
    /// The rule's threshold.
    pub threshold: f64,
    /// `true` = fired, `false` = cleared.
    pub firing: bool,
    /// The engine's logical clock when the transition was observed.
    pub at: u64,
}

impl fmt::Display for HealthAlert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slo {} {}: {} = {:.4} vs {}",
            if self.firing { "FIRING" } else { "cleared" },
            self.rule,
            self.metric,
            self.value,
            self.threshold
        )
    }
}

#[derive(Debug, Clone, Default)]
struct RuleState {
    firing: bool,
    breach_streak: u32,
    clear_streak: u32,
}

/// Evaluates a fixed rule set once per sampler window, tracking streaks
/// and emitting transitions.
#[derive(Debug)]
pub struct SloEngine {
    rules: Vec<SloRule>,
    states: Vec<RuleState>,
}

impl SloEngine {
    /// An engine over `rules`.
    pub fn new(rules: Vec<SloRule>) -> Self {
        let states = vec![RuleState::default(); rules.len()];
        SloEngine { rules, states }
    }

    /// Parses a rule spec: one rule per newline or `;`, `#` comments
    /// and blank lines skipped. This is the [`SLO_RULES_ENV`] format.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut rules = Vec::new();
        for line in spec.split(['\n', ';']) {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            rules.push(SloRule::parse(line)?);
        }
        Ok(SloEngine::new(rules))
    }

    /// The engine's rules.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Names of the rules currently firing.
    pub fn active(&self) -> Vec<String> {
        self.rules
            .iter()
            .zip(&self.states)
            .filter(|(_, s)| s.firing)
            .map(|(r, _)| r.name.clone())
            .collect()
    }

    /// Whether the named rule is currently firing.
    pub fn is_firing(&self, name: &str) -> bool {
        self.rules
            .iter()
            .zip(&self.states)
            .any(|(r, s)| r.name == name && s.firing)
    }

    /// Evaluates every rule against one window's health view, stamping
    /// transitions with the logical clock `at`. Returns only the
    /// transitions (an empty vec on a quiet window). Latency rules
    /// ([`SloMetric::E2eP99Ms`]) see an undefined value here — use
    /// [`SloEngine::evaluate_with_tail`] to feed them.
    pub fn evaluate(&mut self, sample: &HealthSample, at: u64) -> Vec<HealthAlert> {
        self.evaluate_with_tail(sample, None, at)
    }

    /// [`SloEngine::evaluate`] with the window's end-to-end tail view
    /// attached, so latency rules ([`SloMetric::E2eP99Ms`]) get a value.
    /// `tail: None` (or a window that recorded nothing) leaves those
    /// rules' streaks frozen, exactly like a no-traffic health window.
    pub fn evaluate_with_tail(
        &mut self,
        sample: &HealthSample,
        tail: Option<&TailSample>,
        at: u64,
    ) -> Vec<HealthAlert> {
        let mut alerts = Vec::new();
        for (rule, state) in self.rules.iter().zip(self.states.iter_mut()) {
            let Some(value) = rule.value_in(sample, tail) else {
                // Undefined this window: freeze the streaks.
                continue;
            };
            let transition = if state.firing {
                if rule.safe(value) {
                    state.clear_streak += 1;
                    if state.clear_streak >= rule.for_windows {
                        state.firing = false;
                        state.breach_streak = 0;
                        state.clear_streak = 0;
                        true
                    } else {
                        false
                    }
                } else {
                    state.clear_streak = 0;
                    false
                }
            } else if rule.breached(value) {
                state.breach_streak += 1;
                if state.breach_streak >= rule.for_windows {
                    state.firing = true;
                    state.breach_streak = 0;
                    state.clear_streak = 0;
                    true
                } else {
                    false
                }
            } else {
                state.breach_streak = 0;
                false
            };
            if transition {
                alerts.push(HealthAlert {
                    rule: rule.name.clone(),
                    metric: rule.metric.name().to_owned(),
                    kind: rule.kind.clone(),
                    value,
                    threshold: rule.threshold,
                    firing: state.firing,
                    at,
                });
            }
        }
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::{HealthSnapshot, KindHealth, KindQuality, ShardHealth};

    /// A one-row health sample with the given windowed discard rate.
    pub(super) fn sample_with(discard_rate: Option<f64>) -> HealthSample {
        let row = KindQuality {
            shard: None,
            kind: "rfid".into(),
            ingested: 100,
            delivered: 50,
            discarded: 50,
            expired: 0,
            violations: 0,
            discard_rate,
            violation_rate: None,
            use_rate: discard_rate.map(|d| 1.0 - d),
            use_rate_ewma: None,
            live: 0,
            oldest_age_ticks: None,
            lifespan_ticks: None,
            staleness: None,
        };
        HealthSample {
            snapshot: HealthSnapshot {
                shards: vec![ShardHealth {
                    shard: 0,
                    pool: None,
                    kinds: vec![KindHealth {
                        kind: "rfid".into(),
                        ingested: 100,
                        delivered: 50,
                        discarded: 50,
                        expired: 0,
                        violations: 0,
                        live: 0,
                        oldest_age_ticks: None,
                        lifespan_ticks: None,
                    }],
                }],
            },
            kinds: vec![row],
            shard_kinds: Vec::new(),
            pool: None,
            alerts: Vec::new(),
            active_alerts: Vec::new(),
        }
    }

    #[test]
    fn parses_the_documented_grammar() {
        let r = SloRule::parse("discard_rate{kind=\"rfid\"} > 0.3 for 5").unwrap();
        assert_eq!(r.metric, SloMetric::DiscardRate);
        assert_eq!(r.kind.as_deref(), Some("rfid"));
        assert_eq!(r.op, SloOp::Above);
        assert_eq!(r.threshold, 0.3);
        assert_eq!(r.for_windows, 5);

        let r = SloRule::parse("use_rate < 0.5").unwrap();
        assert_eq!(r.metric, SloMetric::UseRate);
        assert_eq!(r.kind, None);
        assert_eq!(r.op, SloOp::Below);
        assert_eq!(r.for_windows, 1);

        let r = SloRule::parse("pool_occupancy > 0.95 for 10").unwrap();
        assert_eq!(r.metric, SloMetric::PoolOccupancy);

        assert!(SloRule::parse("nope > 1").is_err());
        assert!(SloRule::parse("use_rate >= 0.5").is_err());
        assert!(SloRule::parse("use_rate < 0.5 for five").is_err());
    }

    #[test]
    fn spec_parses_multiple_rules_with_comments() {
        let engine = SloEngine::from_spec(
            "# quality gates\ndiscard_rate > 0.3 for 2; use_rate < 0.5 for 3\n\n",
        )
        .unwrap();
        assert_eq!(engine.rules().len(), 2);
        assert!(SloEngine::from_spec("bogus > 1").is_err());
    }

    #[test]
    fn fires_after_consecutive_breaches_and_clears_after_recovery() {
        let mut engine = SloEngine::from_spec("discard_rate{kind=\"rfid\"} > 0.3 for 2").unwrap();
        // One breach: armed but not firing.
        assert!(engine.evaluate(&sample_with(Some(0.5)), 1).is_empty());
        assert!(!engine.is_firing("discard_rate{kind=\"rfid\"} > 0.3 for 2"));
        // Second consecutive breach: fires.
        let alerts = engine.evaluate(&sample_with(Some(0.5)), 2);
        assert_eq!(alerts.len(), 1);
        assert!(alerts[0].firing);
        assert_eq!(alerts[0].at, 2);
        assert_eq!(engine.active().len(), 1);
        // Recovery must also be consecutive: one safe window is not
        // enough, and a re-breach resets the clear streak.
        assert!(engine.evaluate(&sample_with(Some(0.1)), 3).is_empty());
        assert!(engine.evaluate(&sample_with(Some(0.5)), 4).is_empty());
        assert!(engine.evaluate(&sample_with(Some(0.1)), 5).is_empty());
        let alerts = engine.evaluate(&sample_with(Some(0.1)), 6);
        assert_eq!(alerts.len(), 1);
        assert!(!alerts[0].firing);
        assert!(engine.active().is_empty());
    }

    #[test]
    fn interrupted_breach_streaks_reset() {
        let mut engine = SloEngine::from_spec("discard_rate > 0.3 for 3").unwrap();
        for _ in 0..2 {
            assert!(engine.evaluate(&sample_with(Some(0.9)), 0).is_empty());
        }
        // A clean window resets the streak; two more breaches don't fire.
        assert!(engine.evaluate(&sample_with(Some(0.0)), 0).is_empty());
        for _ in 0..2 {
            assert!(engine.evaluate(&sample_with(Some(0.9)), 0).is_empty());
        }
        assert!(engine.active().is_empty());
        assert!(!engine.evaluate(&sample_with(Some(0.9)), 0).is_empty());
    }

    #[test]
    fn undefined_windows_freeze_the_state() {
        let mut engine = SloEngine::from_spec("discard_rate > 0.3 for 2").unwrap();
        assert!(engine.evaluate(&sample_with(Some(0.5)), 1).is_empty());
        // No traffic: neither breach nor recovery is counted.
        assert!(engine.evaluate(&sample_with(None), 2).is_empty());
        // The streak survives the idle window and fires on the next breach.
        assert_eq!(engine.evaluate(&sample_with(Some(0.5)), 3).len(), 1);
    }

    #[test]
    fn below_rules_watch_the_minimum() {
        let mut engine = SloEngine::from_spec("use_rate < 0.6 for 1").unwrap();
        let alerts = engine.evaluate(&sample_with(Some(0.5)), 7);
        assert_eq!(alerts.len(), 1, "use_rate 0.5 < 0.6 fires");
        assert!(alerts[0].firing);
        // Clearing needs use_rate ≥ 0.6 · 1.1 = 0.66 ⇒ discard ≤ 0.34.
        assert!(engine.evaluate(&sample_with(Some(0.38)), 8).is_empty());
        assert_eq!(engine.evaluate(&sample_with(Some(0.3)), 9).len(), 1);
    }

    /// A tail view whose all-outcomes p99 is the given milliseconds.
    fn tail_with(p99_ms: f64) -> TailSample {
        use crate::tail::{QueueWindow, SpecWindow, TailSnapshot, TailWindow};
        TailSample {
            snapshot: TailSnapshot { shards: Vec::new() },
            outcomes: Vec::new(),
            all: TailWindow {
                count: 10,
                mean_ns: None,
                p50_ns: None,
                p95_ns: None,
                p99_ns: Some(p99_ms * 1e6),
                p999_ns: None,
            },
            spec: SpecWindow::default(),
            queue: QueueWindow::default(),
        }
    }

    #[test]
    fn latency_rules_read_the_tail_view() {
        let r = SloRule::parse("e2e_p99_ms > 5 for 2").unwrap();
        assert_eq!(r.metric, SloMetric::E2eP99Ms);
        let mut engine = SloEngine::new(vec![r]);
        // Plain evaluate (no tail view): undefined, streaks freeze.
        assert!(engine.evaluate(&sample_with(Some(0.1)), 1).is_empty());
        let slow = tail_with(12.0);
        let healthy = sample_with(Some(0.1));
        assert!(engine
            .evaluate_with_tail(&healthy, Some(&slow), 2)
            .is_empty());
        let alerts = engine.evaluate_with_tail(&healthy, Some(&slow), 3);
        assert_eq!(alerts.len(), 1);
        assert!(alerts[0].firing);
        assert_eq!(alerts[0].metric, "e2e_p99_ms");
        assert!((alerts[0].value - 12.0).abs() < 1e-9, "{}", alerts[0].value);
        // Clearing needs windows past the deadband (p99 ≤ 4.5 ms),
        // sustained for the rule's two windows.
        let fast = tail_with(1.0);
        assert!(engine
            .evaluate_with_tail(&healthy, Some(&fast), 4)
            .is_empty());
        let alerts = engine.evaluate_with_tail(&healthy, Some(&fast), 5);
        assert_eq!(alerts.len(), 1);
        assert!(!alerts[0].firing);
        assert!(engine.active().is_empty());
    }

    #[test]
    fn burn_rate_rules_scale_the_budget() {
        let r = SloRule::burn_rate(
            "rfid-burn",
            SloMetric::DiscardRate,
            Some("rfid"),
            0.02,
            10.0,
            2,
        );
        assert_eq!(r.op, SloOp::Above);
        assert!((r.threshold - 0.2).abs() < 1e-12);
        let mut engine = SloEngine::new(vec![r]);
        assert!(engine.evaluate(&sample_with(Some(0.5)), 1).is_empty());
        assert!(!engine.evaluate(&sample_with(Some(0.5)), 2).is_empty());
        assert!(engine.is_firing("rfid-burn"));
    }

    #[test]
    fn alerts_round_trip_through_serde_and_display() {
        let a = HealthAlert {
            rule: "r".into(),
            metric: "discard_rate".into(),
            kind: Some("rfid".into()),
            value: 0.42,
            threshold: 0.3,
            firing: true,
            at: 9,
        };
        let json = serde_json::to_string(&a).unwrap();
        let back: HealthAlert = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
        let s = a.to_string();
        assert!(s.contains("FIRING"), "{s}");
        assert!(s.contains("discard_rate"), "{s}");
    }
}

#[cfg(test)]
mod hysteresis_proptests {
    //! The satellite property: values confined to the hysteresis
    //! deadband — past neither the breach threshold nor the safe bound
    //! — can never transition a rule, whatever state it starts in and
    //! however they oscillate. Boundary noise cannot flap an alert.

    use super::tests::sample_with;
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn deadband_values_never_transition(
            start_firing in proptest::bool::weighted(0.5),
            // Values in (threshold·(1−margin), threshold] for an Above
            // rule on threshold 0.5, margin 0.1: (0.45, 0.5].
            unit in proptest::collection::vec(0.0f64..1.0, 1..40),
            for_windows in 1u32..4,
        ) {
            let rule = SloRule {
                name: "deadband".into(),
                metric: SloMetric::DiscardRate,
                kind: None,
                op: SloOp::Above,
                threshold: 0.5,
                for_windows,
                clear_margin: 0.1,
            };
            let lo = rule.threshold * (1.0 - rule.clear_margin);
            let mut engine = SloEngine::new(vec![rule]);
            if start_firing {
                // Drive it into the firing state legitimately.
                for _ in 0..for_windows {
                    engine.evaluate(&sample_with(Some(0.9)), 0);
                }
                prop_assert!(engine.is_firing("deadband"));
            }
            let was_firing = engine.is_firing("deadband");
            for u in unit {
                // Map into the open-closed deadband (lo, threshold].
                let v = lo + (0.5 - lo) * u.max(1e-9);
                let alerts = engine.evaluate(&sample_with(Some(v)), 0);
                prop_assert!(alerts.is_empty(), "deadband value {} transitioned", v);
                prop_assert_eq!(engine.is_firing("deadband"), was_firing);
            }
        }
    }
}

//! Hierarchical phase profiler — *where* the engine's wall-clock goes.
//!
//! The flat [`crate::ObsSpan`] histograms answer "how long does a check
//! take"; they cannot answer "which phase moved" when a benchmark
//! series regresses. This module adds exact nested attribution over a
//! fixed phase taxonomy:
//!
//! * a [`Phase`] enum naming the nine pipeline stages the middleware
//!   executes, from batch ingest down to telemetry export;
//! * per-shard **preallocated span stacks**: opening a [`PhaseGuard`]
//!   pushes a fixed-size frame, closing it charges the elapsed time to
//!   the phase's *total* and the elapsed minus the time spent in nested
//!   child guards to its *self* time. Self times therefore telescope:
//!   the self times across a root span's subtree sum exactly to the
//!   root's total (asserted by proptest below);
//! * bounded per-shard **span rings** keeping the most recent
//!   [`SPAN_RING_CAPACITY`] completed spans with their full phase path
//!   for flamegraph / Chrome-trace export. Overflow evicts the oldest
//!   span and bumps a dropped counter — truncation is never silent and
//!   never stalls the hot path;
//! * atomic per-phase cells (total ns, self ns, calls), snapshotted and
//!   aggregated like every other registry surface;
//! * a **sampling divisor** ([`crate::ObsConfig::profile_sample`]):
//!   only every N-th *root* span records. A root is either fully
//!   recorded or fully skipped — nested guards under a skipped root pay
//!   one uncontended lock and an increment, no clock reads — so
//!   self/total ratios stay unbiased while the amortized cost drops by
//!   the divisor.
//!
//! A slot's stack assumes one thread at a time, which holds for shard
//! engines (each lives behind its own mutex) and for the engine slot
//! (touched only by the routing/driver thread). Interleaved use from
//! several threads would misattribute parent/child time but is
//! memory-safe and cannot panic.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Maximum phase-span nesting depth. Deeper guards are counted as
/// skipped (bounded memory, no allocation, no panic).
pub const MAX_PHASE_DEPTH: usize = 16;

/// Completed spans kept per shard for trace export; the oldest span is
/// evicted (and counted) when the ring is full.
pub const SPAN_RING_CAPACITY: usize = 1 << 14;

/// The fixed pipeline stages the profiler attributes time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Batch ingest: `Middleware::batch_add` on a shard engine, and the
    /// batch partitioning/routing loop on the engine slot.
    Ingest,
    /// Index/arena maintenance: expiry processing, retention pruning,
    /// pool compaction (`process_due`).
    IndexMaint,
    /// Incremental consistency checking (the compiled evaluator).
    ConstraintCheck,
    /// Strategy resolution (`on_addition` / `on_use`).
    Resolution,
    /// Situation re-evaluation rounds (`SituationEngine`).
    SituationEval,
    /// Typed cause-edge (provenance) emission.
    ProvenanceEmit,
    /// Health/quality telemetry publication (`publish_health`).
    HealthPublish,
    /// Shard-plan rebalancing (`apply_plan`: extract + adopt).
    Rebalance,
    /// Telemetry export: sampler windows, exposition rendering.
    Export,
}

/// Every [`Phase`], in index order.
pub const PHASES: [Phase; 9] = [
    Phase::Ingest,
    Phase::IndexMaint,
    Phase::ConstraintCheck,
    Phase::Resolution,
    Phase::SituationEval,
    Phase::ProvenanceEmit,
    Phase::HealthPublish,
    Phase::Rebalance,
    Phase::Export,
];

impl Phase {
    /// Index into a shard slot's phase-cell array.
    pub fn index(self) -> usize {
        PHASES
            .iter()
            .position(|p| *p == self)
            .expect("every phase is listed")
    }

    /// The phase at `index`, when in range.
    pub fn from_index(index: usize) -> Option<Phase> {
        PHASES.get(index).copied()
    }

    /// Snake-case phase name (stable; used in exports and folded
    /// stacks).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Ingest => "ingest",
            Phase::IndexMaint => "index_maint",
            Phase::ConstraintCheck => "constraint_check",
            Phase::Resolution => "resolution",
            Phase::SituationEval => "situation_eval",
            Phase::ProvenanceEmit => "provenance_emit",
            Phase::HealthPublish => "health_publish",
            Phase::Rebalance => "rebalance",
            Phase::Export => "export",
        }
    }
}

fn ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Lock-free per-phase accumulators.
#[derive(Debug, Default)]
struct PhaseCell {
    total_ns: AtomicU64,
    self_ns: AtomicU64,
    calls: AtomicU64,
}

/// One open span on the stack.
#[derive(Debug, Clone, Copy)]
struct Frame {
    phase: Phase,
    start: Instant,
    child_ns: u64,
}

/// The mutable per-shard profiling state, behind one uncontended mutex.
#[derive(Debug)]
struct SpanStack {
    /// Open frames, preallocated to [`MAX_PHASE_DEPTH`] when profiling
    /// is configured on — pushes never allocate.
    frames: Vec<Frame>,
    /// Depth of guards currently inside a skipped (unsampled or
    /// overflowed) subtree; nonzero means "record nothing".
    skipping: u32,
    /// Root spans opened (sampled or not).
    roots: u64,
    /// Root spans that actually recorded.
    sampled_roots: u64,
    /// Completed spans, preallocated to [`SPAN_RING_CAPACITY`].
    ring: Vec<SpanRecord>,
    /// Next overwrite position once the ring is full.
    ring_next: usize,
    /// Spans evicted from the full ring (lifetime).
    ring_dropped: u64,
}

/// One shard's profiler state: atomic phase cells plus the span stack
/// and completed-span ring.
#[derive(Debug)]
pub(crate) struct ShardProfileSlot {
    sample_every: u32,
    epoch: Instant,
    cells: [PhaseCell; PHASES.len()],
    stack: Mutex<SpanStack>,
}

impl ShardProfileSlot {
    /// `preallocate` reserves the stack and ring up front (profiling
    /// configured on); otherwise both stay empty and unused.
    pub(crate) fn new(preallocate: bool, sample_every: u32, epoch: Instant) -> Self {
        let (frames, ring) = if preallocate {
            (
                Vec::with_capacity(MAX_PHASE_DEPTH),
                Vec::with_capacity(SPAN_RING_CAPACITY),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        ShardProfileSlot {
            sample_every: sample_every.max(1),
            epoch,
            cells: Default::default(),
            stack: Mutex::new(SpanStack {
                frames,
                skipping: 0,
                roots: 0,
                sampled_roots: 0,
                ring,
                ring_next: 0,
                ring_dropped: 0,
            }),
        }
    }

    /// Opens a phase span. Roots are admitted by the sampling divisor;
    /// guards under a skipped root (or past [`MAX_PHASE_DEPTH`]) only
    /// track balance.
    pub(crate) fn begin(&self, phase: Phase) -> PhaseGuard<'_> {
        let mut st = self.stack.lock();
        if st.skipping > 0 {
            st.skipping += 1;
            return PhaseGuard {
                slot: Some(self),
                recording: false,
            };
        }
        if st.frames.is_empty() {
            let seq = st.roots;
            st.roots += 1;
            if self.sample_every > 1 && !seq.is_multiple_of(u64::from(self.sample_every)) {
                st.skipping = 1;
                return PhaseGuard {
                    slot: Some(self),
                    recording: false,
                };
            }
            st.sampled_roots += 1;
        }
        if st.frames.len() >= MAX_PHASE_DEPTH || st.frames.len() == st.frames.capacity() {
            st.skipping = 1;
            return PhaseGuard {
                slot: Some(self),
                recording: false,
            };
        }
        st.frames.push(Frame {
            phase,
            start: Instant::now(),
            child_ns: 0,
        });
        PhaseGuard {
            slot: Some(self),
            recording: true,
        }
    }

    fn end_skipped(&self) {
        let mut st = self.stack.lock();
        st.skipping = st.skipping.saturating_sub(1);
    }

    /// The packed phase path of the currently open frames (4 bits per
    /// level, root in the lowest nibble — the same packing as
    /// [`SpanRecord::path`]) and its depth. `(0, 0)` when nothing is
    /// open or profiling is off. The tail layer stamps exemplars with
    /// this so a slow context points straight at the phase it finished
    /// under.
    pub(crate) fn current_path(&self) -> (u64, u8) {
        let st = self.stack.lock();
        let mut path = 0u64;
        for (i, f) in st.frames.iter().enumerate().take(MAX_PHASE_DEPTH) {
            path |= (f.phase.index() as u64) << (4 * i);
        }
        (path, st.frames.len() as u8)
    }

    fn end_recording(&self) {
        let mut st = self.stack.lock();
        let Some(frame) = st.frames.pop() else { return };
        let elapsed = ns(frame.start.elapsed());
        let self_ns = elapsed.saturating_sub(frame.child_ns);
        let cell = &self.cells[frame.phase.index()];
        cell.total_ns.fetch_add(elapsed, Ordering::Relaxed);
        cell.self_ns.fetch_add(self_ns, Ordering::Relaxed);
        cell.calls.fetch_add(1, Ordering::Relaxed);

        let mut path = 0u64;
        for (i, f) in st.frames.iter().enumerate() {
            path |= (f.phase.index() as u64) << (4 * i);
        }
        let depth = st.frames.len();
        path |= (frame.phase.index() as u64) << (4 * depth);
        if let Some(parent) = st.frames.last_mut() {
            parent.child_ns = parent.child_ns.saturating_add(elapsed);
        }
        let record = SpanRecord {
            shard: 0,
            path,
            depth: depth as u8,
            start_ns: ns(frame.start.saturating_duration_since(self.epoch)),
            dur_ns: elapsed,
            self_ns,
        };
        if st.ring.len() < st.ring.capacity() {
            st.ring.push(record);
        } else if st.ring.capacity() > 0 {
            let next = st.ring_next;
            st.ring[next] = record;
            st.ring_next = (next + 1) % st.ring.capacity();
            st.ring_dropped += 1;
        }
    }

    /// Point-in-time copy of this shard's phase cells and root/ring
    /// bookkeeping.
    pub(crate) fn snapshot(&self, shard: usize) -> ShardPhases {
        let st = self.stack.lock();
        ShardPhases {
            shard,
            roots: st.roots,
            sampled_roots: st.sampled_roots,
            spans_dropped: st.ring_dropped,
            phases: PHASES
                .iter()
                .map(|p| {
                    let c = &self.cells[p.index()];
                    PhaseStat {
                        phase: p.name().to_owned(),
                        total_ns: c.total_ns.load(Ordering::Relaxed),
                        self_ns: c.self_ns.load(Ordering::Relaxed),
                        calls: c.calls.load(Ordering::Relaxed),
                    }
                })
                .collect(),
        }
    }

    /// Drains the completed-span ring in chronological order, stamping
    /// each record with `shard`. The dropped counter is cumulative and
    /// survives the drain.
    pub(crate) fn drain_spans(&self, shard: usize) -> Vec<SpanRecord> {
        let mut st = self.stack.lock();
        let full = st.ring.len() == st.ring.capacity() && !st.ring.is_empty();
        let split = if full { st.ring_next } else { 0 };
        let mut out = Vec::with_capacity(st.ring.len());
        out.extend_from_slice(&st.ring[split..]);
        out.extend_from_slice(&st.ring[..split]);
        for r in &mut out {
            r.shard = shard as u32;
        }
        st.ring.clear();
        st.ring_next = 0;
        out
    }
}

/// RAII guard for one phase span: records on drop (or [`finish`]).
///
/// [`finish`]: PhaseGuard::finish
#[derive(Debug)]
#[must_use = "a phase guard measures the scope it is bound to; dropping it immediately attributes nothing useful"]
pub struct PhaseGuard<'a> {
    slot: Option<&'a ShardProfileSlot>,
    recording: bool,
}

impl PhaseGuard<'_> {
    /// A guard that records nothing (profiling off).
    pub(crate) fn disabled() -> Self {
        PhaseGuard {
            slot: None,
            recording: false,
        }
    }

    /// Ends the span early (otherwise it ends when dropped).
    pub fn finish(self) {}
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if let Some(slot) = self.slot {
            if self.recording {
                slot.end_recording();
            } else {
                slot.end_skipped();
            }
        }
    }
}

/// One completed span, kept in the per-shard ring for trace export.
///
/// The phase path is packed four bits per nesting level into
/// [`SpanRecord::path`] (level 0 — the root — in the lowest nibble):
/// [`MAX_PHASE_DEPTH`] levels of up to 16 phases fit one `u64`, which
/// keeps the record `Copy`, allocation-free, and serde-friendly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// The shard the span ran on (stamped when drained).
    pub shard: u32,
    /// Packed phase indexes from the root (lowest nibble) down to this
    /// span's own phase at nibble [`SpanRecord::depth`].
    pub path: u64,
    /// This span's depth: 0 for a root.
    pub depth: u8,
    /// Start offset from the registry's construction instant (ns).
    pub start_ns: u64,
    /// Wall-clock duration (ns).
    pub dur_ns: u64,
    /// Duration minus time spent in nested child spans (ns).
    pub self_ns: u64,
}

impl SpanRecord {
    fn level(&self, i: usize) -> usize {
        ((self.path >> (4 * i)) & 0xF) as usize
    }

    /// The phases from the root down to this span.
    pub fn stack(&self) -> impl Iterator<Item = Phase> + '_ {
        (0..=usize::from(self.depth)).filter_map(|i| Phase::from_index(self.level(i)))
    }

    /// This span's own (leaf) phase, when the record is well-formed.
    pub fn phase(&self) -> Option<Phase> {
        Phase::from_index(self.level(usize::from(self.depth)))
    }

    /// The semicolon-joined folded-stack frame path, rooted at the
    /// shard: `shard0;ingest;constraint_check`.
    pub fn folded_key(&self) -> String {
        let mut key = format!("shard{}", self.shard);
        for p in self.stack() {
            key.push(';');
            key.push_str(p.name());
        }
        key
    }
}

/// One phase's accumulated cost (cumulative or windowed, by context).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStat {
    /// The phase's stable snake-case name.
    pub phase: String,
    /// Wall-clock nanoseconds inside the phase, children included.
    pub total_ns: u64,
    /// Nanoseconds inside the phase minus its nested children.
    pub self_ns: u64,
    /// Completed spans.
    pub calls: u64,
}

/// One shard's cumulative profile state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardPhases {
    /// The shard index.
    pub shard: usize,
    /// Root spans opened (sampled or not).
    pub roots: u64,
    /// Root spans that recorded (admitted by the sampling divisor).
    pub sampled_roots: u64,
    /// Spans evicted from the full span ring (lifetime).
    pub spans_dropped: u64,
    /// Per-phase accumulators, in [`PHASES`] order.
    pub phases: Vec<PhaseStat>,
}

impl ShardPhases {
    /// This shard's stat for `phase`, when present.
    pub fn phase(&self, phase: Phase) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.phase == phase.name())
    }
}

/// A whole registry's profile snapshot: one record per shard.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileSnapshot {
    /// Per-shard profile states in shard order.
    pub shards: Vec<ShardPhases>,
}

impl ProfileSnapshot {
    /// Whether no span has recorded anywhere yet — the condition under
    /// which `Sampler` leaves `Sample::phases` as `None` and every
    /// export surface stays byte-identical to its pre-profiler output.
    pub fn is_empty(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.roots == 0 && s.phases.iter().all(|p| p.calls == 0))
    }

    /// Cross-shard per-phase sums, in [`PHASES`] order.
    pub fn aggregate(&self) -> Vec<PhaseStat> {
        sum_phase_stats(self.shards.iter().map(|s| &s.phases))
    }
}

/// Phase-wise sums of several stat vectors, in [`PHASES`] order
/// (matched by name, so shorter/reordered inputs still sum correctly).
fn sum_phase_stats<'a>(groups: impl Iterator<Item = &'a Vec<PhaseStat>>) -> Vec<PhaseStat> {
    let mut out: Vec<PhaseStat> = PHASES
        .iter()
        .map(|p| PhaseStat {
            phase: p.name().to_owned(),
            total_ns: 0,
            self_ns: 0,
            calls: 0,
        })
        .collect();
    for stats in groups {
        for s in stats {
            if let Some(acc) = out.iter_mut().find(|o| o.phase == s.phase) {
                acc.total_ns += s.total_ns;
                acc.self_ns += s.self_ns;
                acc.calls += s.calls;
            }
        }
    }
    out
}

fn stat_delta(prev: Option<&PhaseStat>, cur: &PhaseStat) -> PhaseStat {
    let d = |get: fn(&PhaseStat) -> u64| get(cur).saturating_sub(prev.map(get).unwrap_or(0));
    PhaseStat {
        phase: cur.phase.clone(),
        total_ns: d(|s| s.total_ns),
        self_ns: d(|s| s.self_ns),
        calls: d(|s| s.calls),
    }
}

/// One shard's windowed profile view.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardPhaseWindow {
    /// The shard index.
    pub shard: usize,
    /// Cumulative root spans opened.
    pub roots: u64,
    /// Cumulative root spans recorded.
    pub sampled_roots: u64,
    /// Cumulative spans evicted from the span ring.
    pub spans_dropped: u64,
    /// Cumulative per-phase accumulators at the window's end.
    pub cumulative: Vec<PhaseStat>,
    /// Per-phase deltas over this window.
    pub window: Vec<PhaseStat>,
}

/// The windowed profile view attached to a [`crate::Sample`]:
/// per-shard and cross-shard phase deltas between two consecutive
/// profile snapshots.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSample {
    /// Per-shard windows in shard order.
    pub shards: Vec<ShardPhaseWindow>,
    /// Cross-shard per-phase deltas over this window.
    pub window_total: Vec<PhaseStat>,
    /// Cross-shard cumulative per-phase sums at the window's end.
    pub cumulative_total: Vec<PhaseStat>,
}

impl PhaseSample {
    /// Differences two consecutive profile snapshots into the windowed
    /// view. With `prev = None` (the baseline sample) the window is
    /// the full cumulative history, mirroring the counter sampler.
    pub fn between(prev: Option<&ProfileSnapshot>, cur: &ProfileSnapshot) -> PhaseSample {
        let shards: Vec<ShardPhaseWindow> = cur
            .shards
            .iter()
            .map(|sh| {
                let prev_sh = prev.and_then(|p| p.shards.iter().find(|s| s.shard == sh.shard));
                let window = sh
                    .phases
                    .iter()
                    .map(|p| {
                        stat_delta(
                            prev_sh.and_then(|ps| ps.phases.iter().find(|q| q.phase == p.phase)),
                            p,
                        )
                    })
                    .collect();
                ShardPhaseWindow {
                    shard: sh.shard,
                    roots: sh.roots,
                    sampled_roots: sh.sampled_roots,
                    spans_dropped: sh.spans_dropped,
                    cumulative: sh.phases.clone(),
                    window,
                }
            })
            .collect();
        PhaseSample {
            window_total: sum_phase_stats(shards.iter().map(|s| &s.window)),
            cumulative_total: sum_phase_stats(shards.iter().map(|s| &s.cumulative)),
            shards,
        }
    }

    /// `phase`'s share of this window's cross-shard self time, or
    /// `None` when the window recorded nothing.
    pub fn self_share(&self, phase: Phase) -> Option<f64> {
        let total: u64 = self.window_total.iter().map(|p| p.self_ns).sum();
        if total == 0 {
            return None;
        }
        self.window_total
            .iter()
            .find(|p| p.phase == phase.name())
            .map(|p| p.self_ns as f64 / total as f64)
    }
}

/// A prebuilt [`Value`] tree that serializes as itself — lets the
/// trace renderer emit heterogeneous JSON (metadata + span events)
/// without a derive. Used by the tests to parse the output back, too.
#[derive(Debug, Clone)]
struct RawValue(Value);

impl Serialize for RawValue {
    fn serialize<S: serde::ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.0.clone())
    }
}

impl<'de> Deserialize<'de> for RawValue {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.take_value().map(RawValue)
    }
}

fn vmap(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

fn vstr(s: impl Into<String>) -> Value {
    Value::Str(s.into())
}

/// Renders completed spans as Chrome trace-event JSON (the
/// `{"traceEvents": [...]}` object form Perfetto and `chrome://tracing`
/// load): one complete (`"ph": "X"`) event per span with microsecond
/// timestamps, `tid` = shard, plus thread-name metadata per shard.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut events: Vec<Value> = Vec::new();
    let shards: std::collections::BTreeSet<u32> = spans.iter().map(|s| s.shard).collect();
    for sh in &shards {
        events.push(vmap(vec![
            ("name", vstr("thread_name")),
            ("ph", vstr("M")),
            ("pid", Value::U64(0)),
            ("tid", Value::U64(u64::from(*sh))),
            ("args", vmap(vec![("name", vstr(format!("shard {sh}")))])),
        ]));
    }
    for s in spans {
        let Some(phase) = s.phase() else { continue };
        events.push(vmap(vec![
            ("name", vstr(phase.name())),
            ("cat", vstr("phase")),
            ("ph", vstr("X")),
            ("ts", Value::F64(s.start_ns as f64 / 1000.0)),
            ("dur", Value::F64(s.dur_ns as f64 / 1000.0)),
            ("pid", Value::U64(0)),
            ("tid", Value::U64(u64::from(s.shard))),
            (
                "args",
                vmap(vec![
                    ("self_ns", Value::U64(s.self_ns)),
                    ("stack", vstr(s.folded_key())),
                ]),
            ),
        ]));
    }
    let doc = RawValue(vmap(vec![
        ("traceEvents", Value::Seq(events)),
        ("displayTimeUnit", vstr("ms")),
    ]));
    serde_json::to_string(&doc).expect("trace events serialize")
}

/// Renders completed spans as inferno-compatible folded stacks: one
/// `frame;frame;... <count>` line per distinct phase path (rooted at
/// the shard), counts in self-time nanoseconds, sorted by path.
pub fn folded_stacks(spans: &[SpanRecord]) -> String {
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for s in spans {
        *agg.entry(s.folded_key()).or_insert(0) += s.self_ns;
    }
    let mut out = String::new();
    for (key, self_ns) in agg {
        out.push_str(&key);
        out.push(' ');
        out.push_str(&self_ns.to_string());
        out.push('\n');
    }
    out
}

/// Parses a Chrome trace-event document back and returns the number of
/// events in its `traceEvents` array — the validation counterpart of
/// [`chrome_trace_json`], used by the `profile` binary and CI to assert
/// the written artifact is loadable before anyone opens it in Perfetto.
///
/// # Errors
///
/// Returns a description of the first structural problem: unparseable
/// JSON, a non-object top level, or a missing/non-array `traceEvents`.
pub fn validate_trace_json(text: &str) -> Result<usize, String> {
    let RawValue(doc) =
        serde_json::from_str(text).map_err(|e| format!("trace JSON does not parse: {e}"))?;
    let Value::Map(entries) = doc else {
        return Err("trace top level is not an object".to_owned());
    };
    let events = entries
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or_else(|| "trace is missing the traceEvents key".to_owned())?;
    let Value::Seq(events) = events else {
        return Err("traceEvents is not an array".to_owned());
    };
    Ok(events.len())
}

/// Parses folded stacks back into `(frames, count)` rows — the
/// round-trip counterpart of [`folded_stacks`].
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_folded(text: &str) -> Result<Vec<(Vec<String>, u64)>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let (stack, count) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no count: {line:?}", i + 1))?;
        let count: u64 = count
            .parse()
            .map_err(|e| format!("line {}: bad count: {e}", i + 1))?;
        let frames: Vec<String> = stack.split(';').map(str::to_owned).collect();
        if frames.iter().any(String::is_empty) {
            return Err(format!("line {}: empty frame: {line:?}", i + 1));
        }
        out.push((frames, count));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ObsConfig, ObsRegistry, ShardObs};

    fn profiled(shards: usize, every: u32) -> std::sync::Arc<ObsRegistry> {
        ObsRegistry::shared(ObsConfig::metrics_only().with_profile(every), shards)
    }

    #[test]
    fn phase_indexes_are_dense_and_names_stable() {
        for (i, p) in PHASES.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(Phase::from_index(i), Some(*p));
            assert!(!p.name().is_empty());
        }
        assert_eq!(Phase::from_index(PHASES.len()), None);
    }

    #[test]
    fn disabled_and_profile_off_guards_record_nothing() {
        let off = ShardObs::disabled();
        assert!(!off.profile_enabled());
        off.phase(Phase::Ingest).finish();

        let registry = ObsRegistry::shared(ObsConfig::metrics_only(), 1);
        let h = registry.handle(0);
        assert!(!h.profile_enabled());
        {
            let _g = h.phase(Phase::Ingest);
        }
        assert!(registry.profile_snapshot().is_empty());
        assert!(registry.drain_spans().is_empty());
    }

    #[test]
    fn nested_guards_attribute_self_time_exactly() {
        let registry = profiled(1, 1);
        let h = registry.handle(0);
        {
            let _root = h.phase(Phase::Ingest);
            {
                let _check = h.phase(Phase::ConstraintCheck);
                std::hint::black_box(1 + 1);
            }
            {
                let _resolve = h.phase(Phase::Resolution);
            }
        }
        let snap = registry.profile_snapshot();
        assert!(!snap.is_empty());
        let sh = &snap.shards[0];
        assert_eq!((sh.roots, sh.sampled_roots), (1, 1));
        let ingest = sh.phase(Phase::Ingest).unwrap();
        let check = sh.phase(Phase::ConstraintCheck).unwrap();
        let resolve = sh.phase(Phase::Resolution).unwrap();
        assert_eq!((ingest.calls, check.calls, resolve.calls), (1, 1, 1));
        // Leaves have no children: self == total, exactly.
        assert_eq!(check.self_ns, check.total_ns);
        assert_eq!(resolve.self_ns, resolve.total_ns);
        // The parent's self is its total minus its children, exactly.
        assert_eq!(
            ingest.self_ns,
            ingest.total_ns - check.total_ns - resolve.total_ns
        );

        let spans = registry.drain_spans();
        assert_eq!(spans.len(), 3, "one record per completed span");
        let root = spans.iter().find(|s| s.depth == 0).unwrap();
        assert_eq!(root.phase(), Some(Phase::Ingest));
        let nested = spans
            .iter()
            .find(|s| s.phase() == Some(Phase::ConstraintCheck))
            .unwrap();
        assert_eq!(nested.folded_key(), "shard0;ingest;constraint_check");
        assert!(nested.start_ns >= root.start_ns);
    }

    #[test]
    fn sampling_divisor_admits_every_nth_root() {
        let registry = profiled(1, 3);
        let h = registry.handle(0);
        for _ in 0..7 {
            let _root = h.phase(Phase::Ingest);
            let _child = h.phase(Phase::Resolution);
        }
        let sh = &registry.profile_snapshot().shards[0];
        assert_eq!(sh.roots, 7);
        // Roots 0, 3, 6 record.
        assert_eq!(sh.sampled_roots, 3);
        assert_eq!(sh.phase(Phase::Ingest).unwrap().calls, 3);
        assert_eq!(sh.phase(Phase::Resolution).unwrap().calls, 3);
        assert_eq!(registry.drain_spans().len(), 6);
    }

    #[test]
    fn depth_overflow_is_bounded_and_balanced() {
        let registry = profiled(1, 1);
        let h = registry.handle(0);
        {
            let mut guards = Vec::new();
            for _ in 0..MAX_PHASE_DEPTH + 5 {
                guards.push(h.phase(Phase::Ingest));
            }
        }
        let sh = &registry.profile_snapshot().shards[0];
        assert_eq!(
            sh.phase(Phase::Ingest).unwrap().calls,
            MAX_PHASE_DEPTH as u64
        );
        // The stack is balanced again: a fresh root records normally.
        {
            let _g = h.phase(Phase::Rebalance);
        }
        let sh = &registry.profile_snapshot().shards[0];
        assert_eq!(sh.phase(Phase::Rebalance).unwrap().calls, 1);
    }

    #[test]
    fn span_ring_eviction_is_counted_and_drain_is_chronological() {
        let registry = profiled(1, 1);
        let h = registry.handle(0);
        for _ in 0..SPAN_RING_CAPACITY + 10 {
            let _g = h.phase(Phase::Export);
        }
        let sh = &registry.profile_snapshot().shards[0];
        assert_eq!(sh.spans_dropped, 10);
        let spans = registry.drain_spans();
        assert_eq!(spans.len(), SPAN_RING_CAPACITY);
        assert!(spans.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        assert!(registry.drain_spans().is_empty(), "drain empties the ring");
        let sh = &registry.profile_snapshot().shards[0];
        assert_eq!(sh.spans_dropped, 10, "dropped count survives the drain");
    }

    #[test]
    fn phase_sample_windows_difference_snapshots() {
        let registry = profiled(1, 1);
        let h = registry.handle(0);
        {
            let _g = h.phase(Phase::Ingest);
        }
        let a = registry.profile_snapshot();
        {
            let _g = h.phase(Phase::Ingest);
        }
        {
            let _g = h.phase(Phase::SituationEval);
        }
        let b = registry.profile_snapshot();
        let w = PhaseSample::between(Some(&a), &b);
        let ingest = w.window_total.iter().find(|p| p.phase == "ingest").unwrap();
        assert_eq!(ingest.calls, 1, "only the second ingest is in-window");
        let sit = w
            .window_total
            .iter()
            .find(|p| p.phase == "situation_eval")
            .unwrap();
        assert_eq!(sit.calls, 1);
        assert!(w.self_share(Phase::Ingest).unwrap() > 0.0);
        let baseline = PhaseSample::between(None, &b);
        assert_eq!(
            baseline
                .window_total
                .iter()
                .find(|p| p.phase == "ingest")
                .unwrap()
                .calls,
            2
        );
    }

    #[test]
    fn snapshots_round_trip_through_serde() {
        let registry = profiled(2, 1);
        {
            let h = registry.handle(1);
            let _g = h.phase(Phase::Rebalance);
        }
        let snap = registry.profile_snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: ProfileSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);

        let sample = PhaseSample::between(None, &snap);
        let json = serde_json::to_string(&sample).unwrap();
        let back: PhaseSample = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sample);

        let spans = registry.drain_spans();
        let json = serde_json::to_string(&spans).unwrap();
        let back: Vec<SpanRecord> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spans);
    }

    fn field<'a>(map: &'a [(String, Value)], key: &str) -> &'a Value {
        &map.iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("missing field {key:?}"))
            .1
    }

    fn as_str(v: &Value) -> &str {
        match v {
            Value::Str(s) => s,
            other => panic!("expected string, found {other:?}"),
        }
    }

    fn is_number(v: &Value) -> bool {
        matches!(v, Value::I64(_) | Value::U64(_) | Value::F64(_))
    }

    #[test]
    fn chrome_trace_json_is_valid_and_loadable() {
        let registry = profiled(2, 1);
        for shard in 0..2 {
            let h = registry.handle(shard);
            let _root = h.phase(Phase::Ingest);
            let _child = h.phase(Phase::ConstraintCheck);
        }
        let spans = registry.drain_spans();
        let text = chrome_trace_json(&spans);
        let RawValue(doc) = serde_json::from_str(&text).expect("valid JSON");
        let Value::Map(doc) = doc else {
            panic!("top level must be an object")
        };
        assert_eq!(as_str(field(&doc, "displayTimeUnit")), "ms");
        let Value::Seq(events) = field(&doc, "traceEvents") else {
            panic!("traceEvents must be an array")
        };
        // 2 thread-name metadata + 4 spans.
        assert_eq!(events.len(), 6);
        for e in events {
            let Value::Map(e) = e else {
                panic!("every event must be an object")
            };
            let ph = as_str(field(e, "ph"));
            assert!(ph == "X" || ph == "M", "{ph:?}");
            assert!(is_number(field(e, "pid")) && is_number(field(e, "tid")));
            if ph == "X" {
                assert!(is_number(field(e, "ts")) && is_number(field(e, "dur")));
                assert!(!as_str(field(e, "name")).is_empty());
            }
        }
    }

    #[test]
    fn folded_stacks_round_trip_through_the_parser() {
        let registry = profiled(2, 1);
        for shard in 0..2 {
            let h = registry.handle(shard);
            let _root = h.phase(Phase::Ingest);
            {
                let _c = h.phase(Phase::ConstraintCheck);
            }
            {
                let _r = h.phase(Phase::Resolution);
            }
        }
        let spans = registry.drain_spans();
        let text = folded_stacks(&spans);
        assert!(!text.is_empty());
        let rows = parse_folded(&text).expect("parses");
        assert_eq!(rows.len(), 6, "3 distinct paths per shard");
        // Re-rendering the parsed rows reproduces the text exactly.
        let mut rebuilt = String::new();
        for (frames, count) in &rows {
            rebuilt.push_str(&frames.join(";"));
            rebuilt.push(' ');
            rebuilt.push_str(&count.to_string());
            rebuilt.push('\n');
        }
        assert_eq!(rebuilt, text);
        // And the parsed self-time total matches the recorded total.
        let parsed_total: u64 = rows.iter().map(|(_, c)| *c).sum();
        let recorded_total: u64 = spans.iter().map(|s| s.self_ns).sum();
        assert_eq!(parsed_total, recorded_total);

        assert!(parse_folded("no-count-here\n").is_err());
        assert!(parse_folded("a;;b 3\n").is_err());
        assert!(parse_folded("a;b notanumber\n").is_err());
    }
}

#[cfg(test)]
mod invariant_proptests {
    //! The satellite properties:
    //!
    //! * **self times telescope**: for any nesting structure with a
    //!   dedicated root phase, the self times of every phase sum
    //!   exactly to the root phase's total — child time is subtracted
    //!   from the parent, nothing is lost or double-counted;
    //! * **windows telescope**: summing per-phase window deltas across
    //!   any snapshot schedule reproduces the final cumulative cells;
    //! * **sampling never skews structure**: with divisor `d`, exactly
    //!   `ceil(roots / d)` roots record, per-phase call counts keep
    //!   their per-root proportions, and leaf phases keep
    //!   `self == total` exactly — a root is all-or-nothing, so
    //!   self/total ratios are never biased by sampling.

    use super::*;
    use crate::registry::{ObsConfig, ObsRegistry};
    use proptest::prelude::*;

    /// Children drawn from the non-root phases.
    const CHILD_PHASES: [Phase; 4] = [
        Phase::ConstraintCheck,
        Phase::Resolution,
        Phase::SituationEval,
        Phase::IndexMaint,
    ];

    fn run_root(h: &crate::registry::ShardObs, shape: &[(usize, bool)]) {
        let _root = h.phase(Phase::Ingest);
        for (child_ix, nest) in shape {
            let child = h.phase(CHILD_PHASES[*child_ix % CHILD_PHASES.len()]);
            if *nest {
                let _grandchild = h.phase(Phase::ProvenanceEmit);
            }
            child.finish();
        }
    }

    proptest! {
        #[test]
        fn self_times_telescope_to_the_root_total(
            roots in proptest::collection::vec(
                proptest::collection::vec((0usize..4, any::<bool>()), 0..6),
                1..8,
            ),
        ) {
            let registry = ObsRegistry::shared(
                ObsConfig::metrics_only().with_profile(1), 1);
            let h = registry.handle(0);
            for shape in &roots {
                run_root(&h, shape);
            }
            let sh = &registry.profile_snapshot().shards[0];
            let self_sum: u64 = sh.phases.iter().map(|p| p.self_ns).sum();
            let root_total = sh.phase(Phase::Ingest).unwrap().total_ns;
            prop_assert_eq!(self_sum, root_total);
            prop_assert_eq!(sh.roots, roots.len() as u64);
            prop_assert_eq!(sh.sampled_roots, roots.len() as u64);
            for p in &sh.phases {
                prop_assert!(p.self_ns <= p.total_ns, "{}: self > total", p.phase);
            }
        }

        #[test]
        fn window_deltas_telescope_across_snapshots(
            batches in proptest::collection::vec(
                proptest::collection::vec((0usize..4, any::<bool>()), 0..4),
                1..6,
            ),
        ) {
            let registry = ObsRegistry::shared(
                ObsConfig::metrics_only().with_profile(1), 1);
            let h = registry.handle(0);
            let mut prev: Option<ProfileSnapshot> = None;
            let mut summed: Vec<PhaseStat> = Vec::new();
            for shape in &batches {
                run_root(&h, shape);
                let cur = registry.profile_snapshot();
                let w = PhaseSample::between(prev.as_ref(), &cur);
                summed = sum_phase_stats([summed, w.window_total].iter());
                prev = Some(cur);
            }
            let cum = registry.profile_snapshot().aggregate();
            prop_assert_eq!(summed, cum);
        }

        #[test]
        fn sampling_keeps_ratios_unbiased(
            roots in 1u64..40,
            every in 1u32..6,
        ) {
            let registry = ObsRegistry::shared(
                ObsConfig::metrics_only().with_profile(every), 1);
            let h = registry.handle(0);
            for _ in 0..roots {
                // Identical structure per root: one leaf child.
                let _root = h.phase(Phase::Ingest);
                let _child = h.phase(Phase::Resolution);
            }
            let sh = &registry.profile_snapshot().shards[0];
            prop_assert_eq!(sh.roots, roots);
            let expected = roots.div_ceil(u64::from(every));
            prop_assert_eq!(sh.sampled_roots, expected);
            let root = sh.phase(Phase::Ingest).unwrap();
            let leaf = sh.phase(Phase::Resolution).unwrap();
            // Structure is preserved under sampling: call counts stay
            // proportional (1:1 here) and leaves keep self == total,
            // so self/total ratios cannot be skewed by the divisor.
            prop_assert_eq!(root.calls, expected);
            prop_assert_eq!(leaf.calls, expected);
            prop_assert_eq!(leaf.self_ns, leaf.total_ns);
            prop_assert!(root.self_ns <= root.total_ns);
            prop_assert_eq!(root.self_ns, root.total_ns - leaf.total_ns);
        }
    }
}

//! End-to-end tail-latency spans, slow-context exemplars, and
//! speculation-efficiency telemetry.
//!
//! The per-operation histograms ([`crate::MetricKind::CheckLatency`],
//! [`crate::MetricKind::IngestLatency`], …) time *stages*; nothing in
//! the stack could say how long one context waited from the door to its
//! verdict — the quantity the paper's delay-versus-accuracy trade-off
//! (§3.3) is actually about. This module adds that missing axis:
//!
//! * **context spans** ([`ContextSpan`]): four monotonic stamps per
//!   context — batch/submit ingress, constraint verdict, resolution
//!   decision, and the terminal delivery/discard/expiry — whose three
//!   segments telescope exactly to the end-to-end total;
//! * **per-(shard, outcome) histograms**: totals fold into log-bucketed
//!   histograms (microsecond resolution, so multi-second tails stay in
//!   finite buckets) keyed by [`TailOutcome`], with windowed
//!   p50/p95/p99/p999 computed by the interpolated
//!   [`HistogramSnapshot::quantile_est`];
//! * **exemplar capture** ([`Exemplar`]): contexts whose total exceeds
//!   a rolling p99 threshold land in a bounded per-shard reservoir,
//!   each carrying the causal ID `s<shard>/ctx#<id>` (resolvable by the
//!   `explain` bin), the packed profiler phase path it completed under,
//!   its batch index, and its speculation outcome;
//! * **speculation efficiency** ([`SpecBatch`], [`SpecStats`]): the
//!   fused batch path reports groups speculated, verdicts consumed,
//!   verdicts wasted on dirty-subject collisions, inline re-checks,
//!   workers used, and per-worker busy occupancy; the sharded engine
//!   reports lock-wait versus service time for its queues
//!   ([`QueueStats`]).
//!
//! Everything is cumulative at the slot level; [`TailSample::between`]
//! turns two snapshots into the windowed view `/metrics`, `/snapshot`,
//! `obs_top`, and the SLO engine consume.

use crate::metrics::{Histogram, HistogramSnapshot};
use crate::profile::{Phase, PHASES};
use ctxres_context::ContextId;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Quantiles the tail surfaces report, in order.
pub const TAIL_QUANTILES: [f64; 4] = [0.5, 0.95, 0.99, 0.999];

/// Exemplar reservoir capacity per shard: big enough to catch a
/// postmortem's worth of slow contexts, small enough that a snapshot
/// clone is trivial.
pub const EXEMPLAR_CAPACITY: usize = 32;

/// How many end-to-end records pass between rolling-p99 threshold
/// refreshes.
const THRESHOLD_RECALC_EVERY: u64 = 32;

/// Per-worker busy-time slots tracked per shard (the fused path caps
/// workers well below this; extras clamp into the last slot).
pub const MAX_TRACKED_WORKERS: usize = 8;

/// End-to-end histograms record in microseconds: the power-of-two
/// buckets then span 1µs..2^23µs (~8.4s) before overflowing, where
/// nanosecond recording would overflow past ~16ms — far too low for
/// spans that include queue waits.
const NS_PER_BUCKET_UNIT: u64 = 1_000;

/// The terminal outcome of a context's end-to-end span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TailOutcome {
    /// The context was used and delivered to the application.
    Delivered,
    /// The context was discarded by the resolution strategy.
    Discarded,
    /// The context aged out of its use window without a delivery.
    Expired,
}

/// Every [`TailOutcome`], in index order.
pub const TAIL_OUTCOMES: [TailOutcome; 3] = [
    TailOutcome::Delivered,
    TailOutcome::Discarded,
    TailOutcome::Expired,
];

impl TailOutcome {
    /// Index into a tail slot's histogram array.
    pub fn index(self) -> usize {
        match self {
            TailOutcome::Delivered => 0,
            TailOutcome::Discarded => 1,
            TailOutcome::Expired => 2,
        }
    }

    /// Snake-case outcome name (stable; used in exports).
    pub fn name(self) -> &'static str {
        match self {
            TailOutcome::Delivered => "delivered",
            TailOutcome::Discarded => "discarded",
            TailOutcome::Expired => "expired",
        }
    }
}

/// How a relevant context's constraint verdict was obtained on the
/// fused path, for exemplar attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpecOutcome {
    /// Not checked speculatively (sequential path, or irrelevant to
    /// every constraint).
    NotSpeculated,
    /// A speculated group verdict was consumed at commit time.
    Consumed,
    /// A speculated verdict existed but was wasted: the subject went
    /// dirty before commit and the check re-ran inline.
    WastedDirty,
    /// No speculated verdict existed; the check ran inline at commit.
    Inline,
}

impl SpecOutcome {
    /// Snake-case outcome name (stable; used in exports and dumps).
    pub fn name(self) -> &'static str {
        match self {
            SpecOutcome::NotSpeculated => "not_speculated",
            SpecOutcome::Consumed => "consumed",
            SpecOutcome::WastedDirty => "wasted_dirty",
            SpecOutcome::Inline => "inline",
        }
    }
}

/// One context's end-to-end span: monotonic nanosecond stamps (shared
/// registry epoch) at ingress, constraint verdict, resolution decision,
/// and the terminal event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ContextSpan {
    /// Stamp at submit/batch ingress.
    pub ingress_ns: u64,
    /// Stamp when the constraint verdict for this context landed.
    pub verdict_ns: u64,
    /// Stamp when the resolution strategy decided what to do with it.
    pub decision_ns: u64,
    /// Stamp at delivery, discard, or expiry.
    pub end_ns: u64,
}

/// Names of the three [`ContextSpan::segments`], in order.
pub const SEGMENT_NAMES: [&str; 3] = [
    "ingress_to_verdict",
    "verdict_to_decision",
    "decision_to_end",
];

impl ContextSpan {
    /// The end-to-end total, ingress to terminal event.
    pub fn total_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.ingress_ns)
    }

    /// The three stage segments (ingress→verdict, verdict→decision,
    /// decision→end). For monotone stamps — which the shared-epoch
    /// clock guarantees — these telescope exactly to
    /// [`ContextSpan::total_ns`]; out-of-order stamps are clamped
    /// forward so the sum never exceeds the total.
    pub fn segments(&self) -> [u64; 3] {
        let end = self.end_ns.max(self.ingress_ns);
        let v = self.verdict_ns.clamp(self.ingress_ns, end);
        let d = self.decision_ns.clamp(v, end);
        [v - self.ingress_ns, d - v, end - d]
    }
}

/// A captured slow context: everything a postmortem needs to chase it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Exemplar {
    /// The shard that resolved the context (presentation; filled at
    /// snapshot time like [`crate::SpanRecord::shard`]).
    pub shard: usize,
    /// The context id; `causal_id()` renders it for `explain`.
    pub ctx: ContextId,
    /// Terminal outcome of the span.
    pub outcome: TailOutcome,
    /// The full four-stamp span.
    pub span: ContextSpan,
    /// Which ingestion batch the context arrived in (engine-local,
    /// monotone; 0 for non-batch submits).
    pub batch_index: u64,
    /// The packed profiler phase path open when the terminal event
    /// recorded (4 bits per level, root in the lowest nibble; 0 when
    /// profiling is off or no phase was open).
    pub phase_path: u64,
    /// Nesting depth of `phase_path` (number of open frames).
    pub phase_depth: u8,
    /// How the constraint verdict was obtained.
    pub spec: SpecOutcome,
    /// Logical tick of the terminal event.
    pub at: u64,
}

impl Exemplar {
    /// The causal ID in the provenance notation `s<shard>/ctx#<id>`,
    /// accepted verbatim by the `explain` bin.
    pub fn causal_id(&self) -> String {
        format!("s{}/ctx#{}", self.shard, self.ctx.raw())
    }

    /// Decodes the packed phase path into phases, root first.
    pub fn phase_stack(&self) -> Vec<Phase> {
        (0..self.phase_depth as usize)
            .map(|i| PHASES[((self.phase_path >> (4 * i)) & 0xF) as usize % PHASES.len()])
            .collect()
    }
}

/// One fused batch's speculation accounting, reported by the engine
/// after commit.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpecBatch {
    /// Subject groups the speculation pass checked ahead of commit.
    pub groups_speculated: u64,
    /// Speculated verdicts consumed at commit time.
    pub consumed: u64,
    /// Speculated verdicts wasted on dirty-subject collisions.
    pub wasted_dirty: u64,
    /// Commit-time checks that ran inline (no speculated verdict).
    pub inline_checks: u64,
    /// Worker threads the speculation pass actually used.
    pub workers_used: u64,
    /// Per-worker busy time in the speculation pass, nanoseconds.
    pub worker_busy_ns: Vec<u64>,
}

/// Cumulative speculation-efficiency counters for one shard.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecStats {
    /// Fused batches that reported speculation accounting.
    pub batches: u64,
    /// Subject groups checked speculatively.
    pub groups_speculated: u64,
    /// Speculated verdicts consumed at commit.
    pub consumed: u64,
    /// Speculated verdicts wasted on dirty-subject collisions.
    pub wasted_dirty: u64,
    /// Commit-time inline re-checks.
    pub inline_checks: u64,
    /// Sum of workers used across batches (divide by `batches` for the
    /// average).
    pub workers_used: u64,
    /// Per-worker-slot busy nanoseconds (slot = worker index, clamped
    /// to [`MAX_TRACKED_WORKERS`]).
    pub worker_busy_ns: Vec<u64>,
}

impl SpecStats {
    /// Adds another shard's stats into this one.
    pub fn merge(&mut self, other: &SpecStats) {
        self.batches += other.batches;
        self.groups_speculated += other.groups_speculated;
        self.consumed += other.consumed;
        self.wasted_dirty += other.wasted_dirty;
        self.inline_checks += other.inline_checks;
        self.workers_used += other.workers_used;
        if self.worker_busy_ns.len() < other.worker_busy_ns.len() {
            self.worker_busy_ns.resize(other.worker_busy_ns.len(), 0);
        }
        for (mine, theirs) in self.worker_busy_ns.iter_mut().zip(&other.worker_busy_ns) {
            *mine += *theirs;
        }
    }

    /// Whether nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.batches == 0 && self.groups_speculated == 0 && self.inline_checks == 0
    }

    /// Field-wise saturating difference (windowed delta).
    fn delta(cur: &SpecStats, prev: &SpecStats) -> SpecStats {
        SpecStats {
            batches: cur.batches.saturating_sub(prev.batches),
            groups_speculated: cur.groups_speculated.saturating_sub(prev.groups_speculated),
            consumed: cur.consumed.saturating_sub(prev.consumed),
            wasted_dirty: cur.wasted_dirty.saturating_sub(prev.wasted_dirty),
            inline_checks: cur.inline_checks.saturating_sub(prev.inline_checks),
            workers_used: cur.workers_used.saturating_sub(prev.workers_used),
            worker_busy_ns: cur
                .worker_busy_ns
                .iter()
                .enumerate()
                .map(|(i, v)| v.saturating_sub(prev.worker_busy_ns.get(i).copied().unwrap_or(0)))
                .collect(),
        }
    }
}

/// Cumulative wait-versus-service decomposition for one shard's engine
/// queue: how long `batch_add` chunks waited for the shard lock versus
/// how long the engine spent serving them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Total nanoseconds chunks spent waiting for the shard lock.
    pub wait_ns: u64,
    /// Lock waits recorded.
    pub wait_count: u64,
    /// Total nanoseconds the engine spent serving chunks.
    pub service_ns: u64,
    /// Service intervals recorded.
    pub service_count: u64,
}

impl QueueStats {
    /// Adds another shard's stats into this one.
    pub fn merge(&mut self, other: &QueueStats) {
        self.wait_ns += other.wait_ns;
        self.wait_count += other.wait_count;
        self.service_ns += other.service_ns;
        self.service_count += other.service_count;
    }

    /// Whether nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.wait_count == 0 && self.service_count == 0
    }

    fn delta(cur: &QueueStats, prev: &QueueStats) -> QueueStats {
        QueueStats {
            wait_ns: cur.wait_ns.saturating_sub(prev.wait_ns),
            wait_count: cur.wait_count.saturating_sub(prev.wait_count),
            service_ns: cur.service_ns.saturating_sub(prev.service_ns),
            service_count: cur.service_count.saturating_sub(prev.service_count),
        }
    }
}

/// The bounded exemplar reservoir: at capacity, new captures overwrite
/// the oldest.
#[derive(Debug, Default)]
struct ExemplarRing {
    buf: Vec<Exemplar>,
    next: usize,
}

impl ExemplarRing {
    fn push(&mut self, ex: Exemplar) {
        if self.buf.len() < EXEMPLAR_CAPACITY {
            self.buf.push(ex);
        } else {
            self.buf[self.next] = ex;
            self.next = (self.next + 1) % EXEMPLAR_CAPACITY;
        }
    }
}

/// One shard's tail-telemetry state: per-outcome histograms, the
/// rolling-p99 capture threshold, the exemplar reservoir, and the
/// speculation/queue counters. Everything but the reservoir is
/// lock-free.
#[derive(Debug)]
pub(crate) struct ShardTailSlot {
    enabled: bool,
    hists: [Histogram; TAIL_OUTCOMES.len()],
    threshold_ns: AtomicU64,
    records: AtomicU64,
    captured: AtomicU64,
    exemplars: Mutex<ExemplarRing>,
    batches: AtomicU64,
    groups_speculated: AtomicU64,
    spec_consumed: AtomicU64,
    spec_wasted: AtomicU64,
    spec_inline: AtomicU64,
    workers_used: AtomicU64,
    worker_busy_ns: [AtomicU64; MAX_TRACKED_WORKERS],
    wait_ns: AtomicU64,
    wait_count: AtomicU64,
    service_ns: AtomicU64,
    service_count: AtomicU64,
}

impl ShardTailSlot {
    pub(crate) fn new(enabled: bool) -> Self {
        ShardTailSlot {
            enabled,
            hists: Default::default(),
            threshold_ns: AtomicU64::new(0),
            records: AtomicU64::new(0),
            captured: AtomicU64::new(0),
            exemplars: Mutex::new(ExemplarRing::default()),
            batches: AtomicU64::new(0),
            groups_speculated: AtomicU64::new(0),
            spec_consumed: AtomicU64::new(0),
            spec_wasted: AtomicU64::new(0),
            spec_inline: AtomicU64::new(0),
            workers_used: AtomicU64::new(0),
            worker_busy_ns: Default::default(),
            wait_ns: AtomicU64::new(0),
            wait_count: AtomicU64::new(0),
            service_ns: AtomicU64::new(0),
            service_count: AtomicU64::new(0),
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    /// Folds a finished span into the outcome histogram and decides
    /// whether it crosses the rolling p99 capture threshold. The
    /// threshold starts at zero (everything early is an exemplar — the
    /// reservoir overwrites the oldest anyway) and refreshes to the
    /// merged p99 estimate every [`THRESHOLD_RECALC_EVERY`] records.
    pub(crate) fn observe(&self, outcome: TailOutcome, total_ns: u64) -> bool {
        if !self.enabled {
            return false;
        }
        self.hists[outcome.index()].record(total_ns / NS_PER_BUCKET_UNIT);
        let n = self.records.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(THRESHOLD_RECALC_EVERY) {
            let mut merged = self.hists[0].snapshot();
            for h in &self.hists[1..] {
                merged.merge(&h.snapshot());
            }
            if let Some(p99) = merged.quantile_est(0.99) {
                let t = if p99.is_finite() {
                    (p99 * NS_PER_BUCKET_UNIT as f64) as u64
                } else {
                    u64::MAX
                };
                self.threshold_ns.store(t, Ordering::Relaxed);
            }
        }
        total_ns >= self.threshold_ns.load(Ordering::Relaxed)
    }

    /// Stores a captured exemplar (bounded; oldest overwritten).
    pub(crate) fn capture(&self, ex: Exemplar) {
        if !self.enabled {
            return;
        }
        self.captured.fetch_add(1, Ordering::Relaxed);
        self.exemplars.lock().push(ex);
    }

    /// Adds one fused batch's speculation accounting.
    pub(crate) fn record_spec_batch(&self, batch: &SpecBatch) {
        if !self.enabled {
            return;
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.groups_speculated
            .fetch_add(batch.groups_speculated, Ordering::Relaxed);
        self.spec_consumed
            .fetch_add(batch.consumed, Ordering::Relaxed);
        self.spec_wasted
            .fetch_add(batch.wasted_dirty, Ordering::Relaxed);
        self.spec_inline
            .fetch_add(batch.inline_checks, Ordering::Relaxed);
        self.workers_used
            .fetch_add(batch.workers_used, Ordering::Relaxed);
        for (i, busy) in batch.worker_busy_ns.iter().enumerate() {
            self.worker_busy_ns[i.min(MAX_TRACKED_WORKERS - 1)].fetch_add(*busy, Ordering::Relaxed);
        }
    }

    /// Records one lock-wait interval for this shard's queue.
    pub(crate) fn record_queue_wait(&self, ns: u64) {
        if !self.enabled {
            return;
        }
        self.wait_ns.fetch_add(ns, Ordering::Relaxed);
        self.wait_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one service interval for this shard's queue.
    pub(crate) fn record_queue_service(&self, ns: u64) {
        if !self.enabled {
            return;
        }
        self.service_ns.fetch_add(ns, Ordering::Relaxed);
        self.service_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of this shard's tail state.
    pub(crate) fn snapshot(&self, shard: usize) -> ShardTail {
        let exemplars = {
            let ring = self.exemplars.lock();
            ring.buf
                .iter()
                .cloned()
                .map(|mut ex| {
                    ex.shard = shard;
                    ex
                })
                .collect()
        };
        ShardTail {
            shard,
            outcomes: TAIL_OUTCOMES
                .iter()
                .map(|o| OutcomeTail {
                    outcome: *o,
                    hist: self.hists[o.index()].snapshot(),
                })
                .collect(),
            threshold_ns: self.threshold_ns.load(Ordering::Relaxed),
            captured: self.captured.load(Ordering::Relaxed),
            exemplars,
            spec: SpecStats {
                batches: self.batches.load(Ordering::Relaxed),
                groups_speculated: self.groups_speculated.load(Ordering::Relaxed),
                consumed: self.spec_consumed.load(Ordering::Relaxed),
                wasted_dirty: self.spec_wasted.load(Ordering::Relaxed),
                inline_checks: self.spec_inline.load(Ordering::Relaxed),
                workers_used: self.workers_used.load(Ordering::Relaxed),
                worker_busy_ns: self
                    .worker_busy_ns
                    .iter()
                    .map(|w| w.load(Ordering::Relaxed))
                    .collect(),
            },
            queue: QueueStats {
                wait_ns: self.wait_ns.load(Ordering::Relaxed),
                wait_count: self.wait_count.load(Ordering::Relaxed),
                service_ns: self.service_ns.load(Ordering::Relaxed),
                service_count: self.service_count.load(Ordering::Relaxed),
            },
        }
    }
}

/// A point-in-time copy of one shard's tail telemetry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardTail {
    /// The shard index.
    pub shard: usize,
    /// Per-outcome end-to-end histograms (microsecond buckets), in
    /// [`TAIL_OUTCOMES`] order.
    pub outcomes: Vec<OutcomeTail>,
    /// The rolling p99 capture threshold at snapshot time, nanoseconds.
    pub threshold_ns: u64,
    /// Exemplars captured over the shard's lifetime (the reservoir
    /// holds only the newest [`EXEMPLAR_CAPACITY`]).
    pub captured: u64,
    /// The current reservoir contents.
    pub exemplars: Vec<Exemplar>,
    /// Cumulative speculation counters.
    pub spec: SpecStats,
    /// Cumulative queue wait/service counters.
    pub queue: QueueStats,
}

/// One outcome's cumulative end-to-end histogram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeTail {
    /// The terminal outcome the histogram covers.
    pub outcome: TailOutcome,
    /// The distribution of end-to-end totals, in microseconds.
    pub hist: HistogramSnapshot,
}

/// A whole registry's tail snapshot: one record per shard.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TailSnapshot {
    /// Per-shard tail records, in shard order.
    pub shards: Vec<ShardTail>,
}

impl TailSnapshot {
    /// Whether no tail telemetry was ever recorded anywhere.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| {
            s.outcomes.iter().all(|o| o.hist.count == 0) && s.spec.is_empty() && s.queue.is_empty()
        })
    }

    /// Cross-shard merged histogram for one outcome index.
    fn merged(&self, outcome_ix: usize) -> HistogramSnapshot {
        let mut m = HistogramSnapshot::empty();
        for s in &self.shards {
            if let Some(o) = s.outcomes.get(outcome_ix) {
                m.merge(&o.hist);
            }
        }
        m
    }

    /// Cross-shard merged speculation stats.
    fn merged_spec(&self) -> SpecStats {
        let mut m = SpecStats::default();
        for s in &self.shards {
            m.merge(&s.spec);
        }
        m
    }

    /// Cross-shard merged queue stats.
    fn merged_queue(&self) -> QueueStats {
        let mut m = QueueStats::default();
        for s in &self.shards {
            m.merge(&s.queue);
        }
        m
    }

    /// Every exemplar across shards, newest state of each reservoir.
    pub fn exemplars(&self) -> Vec<&Exemplar> {
        self.shards
            .iter()
            .flat_map(|s| s.exemplars.iter())
            .collect()
    }
}

/// Windowed quantile summary of one end-to-end distribution, in
/// nanoseconds (interpolated; `None` when the window is empty or the
/// rank overflows the finite buckets).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TailWindow {
    /// Spans finished in the window.
    pub count: u64,
    /// Mean end-to-end total, nanoseconds.
    pub mean_ns: Option<f64>,
    /// Interpolated p50, nanoseconds.
    pub p50_ns: Option<f64>,
    /// Interpolated p95, nanoseconds.
    pub p95_ns: Option<f64>,
    /// Interpolated p99, nanoseconds.
    pub p99_ns: Option<f64>,
    /// Interpolated p999, nanoseconds.
    pub p999_ns: Option<f64>,
}

impl TailWindow {
    fn from_hist(h: &HistogramSnapshot) -> TailWindow {
        let scale = NS_PER_BUCKET_UNIT as f64;
        let q = |q: f64| {
            h.quantile_est(q)
                .filter(|v| v.is_finite())
                .map(|v| v * scale)
        };
        TailWindow {
            count: h.count,
            mean_ns: h.mean().map(|m| m * scale),
            p50_ns: q(TAIL_QUANTILES[0]),
            p95_ns: q(TAIL_QUANTILES[1]),
            p99_ns: q(TAIL_QUANTILES[2]),
            p999_ns: q(TAIL_QUANTILES[3]),
        }
    }
}

/// One outcome's windowed tail summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutcomeWindow {
    /// The terminal outcome.
    pub outcome: TailOutcome,
    /// The windowed summary for that outcome.
    pub window: TailWindow,
}

/// Windowed speculation-efficiency summary across shards.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpecWindow {
    /// Fused batches in the window.
    pub batches: u64,
    /// Subject groups speculated in the window.
    pub groups_speculated: u64,
    /// Speculated verdicts consumed.
    pub consumed: u64,
    /// Speculated verdicts wasted on dirty collisions.
    pub wasted_dirty: u64,
    /// Inline commit-time re-checks.
    pub inline_checks: u64,
    /// Consumed share of speculated groups (`None` with no
    /// speculation).
    pub consumed_rate: Option<f64>,
    /// Wasted share of speculated groups.
    pub wasted_rate: Option<f64>,
    /// Average workers per batch.
    pub avg_workers: Option<f64>,
    /// Per-worker-slot busy nanoseconds in the window.
    pub worker_busy_ns: Vec<u64>,
}

impl SpecWindow {
    fn from_stats(s: &SpecStats) -> SpecWindow {
        let groups = s.groups_speculated;
        let rate = |n: u64| (groups > 0).then(|| n as f64 / groups as f64);
        SpecWindow {
            batches: s.batches,
            groups_speculated: groups,
            consumed: s.consumed,
            wasted_dirty: s.wasted_dirty,
            inline_checks: s.inline_checks,
            consumed_rate: rate(s.consumed),
            wasted_rate: rate(s.wasted_dirty),
            avg_workers: (s.batches > 0).then(|| s.workers_used as f64 / s.batches as f64),
            worker_busy_ns: s.worker_busy_ns.clone(),
        }
    }
}

/// Windowed queue wait-versus-service summary across shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct QueueWindow {
    /// Lock waits in the window.
    pub wait_count: u64,
    /// Service intervals in the window.
    pub service_count: u64,
    /// Mean lock wait, nanoseconds.
    pub avg_wait_ns: Option<f64>,
    /// Mean service time, nanoseconds.
    pub avg_service_ns: Option<f64>,
    /// Wait share of total queue time: `wait / (wait + service)`.
    pub wait_share: Option<f64>,
}

impl QueueWindow {
    fn from_stats(q: &QueueStats) -> QueueWindow {
        let total = q.wait_ns + q.service_ns;
        QueueWindow {
            wait_count: q.wait_count,
            service_count: q.service_count,
            avg_wait_ns: (q.wait_count > 0).then(|| q.wait_ns as f64 / q.wait_count as f64),
            avg_service_ns: (q.service_count > 0)
                .then(|| q.service_ns as f64 / q.service_count as f64),
            wait_share: (total > 0).then(|| q.wait_ns as f64 / total as f64),
        }
    }
}

/// Per-field saturating histogram difference.
fn hist_delta(cur: &HistogramSnapshot, prev: &HistogramSnapshot) -> HistogramSnapshot {
    HistogramSnapshot {
        count: cur.count.saturating_sub(prev.count),
        sum: cur.sum.saturating_sub(prev.sum),
        buckets: cur
            .buckets
            .iter()
            .enumerate()
            .map(|(i, b)| b.saturating_sub(prev.buckets.get(i).copied().unwrap_or(0)))
            .collect(),
    }
}

/// The windowed tail view a scrape hands out: cumulative snapshot plus
/// per-outcome and combined quantiles, speculation rates, and queue
/// decomposition covering the interval since the previous scrape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TailSample {
    /// The cumulative tail snapshot at sample time (exemplar
    /// reservoirs ride along here).
    pub snapshot: TailSnapshot,
    /// Windowed per-outcome summaries, in [`TAIL_OUTCOMES`] order.
    pub outcomes: Vec<OutcomeWindow>,
    /// Windowed summary across all outcomes.
    pub all: TailWindow,
    /// Windowed speculation efficiency.
    pub spec: SpecWindow,
    /// Windowed queue wait/service decomposition.
    pub queue: QueueWindow,
}

impl TailSample {
    /// The windowed view between two snapshots (`prev = None` means
    /// "since the beginning").
    pub fn between(prev: Option<&TailSnapshot>, cur: TailSnapshot) -> TailSample {
        let mut outcomes = Vec::with_capacity(TAIL_OUTCOMES.len());
        let mut all = HistogramSnapshot::empty();
        for (oi, outcome) in TAIL_OUTCOMES.iter().enumerate() {
            let cur_m = cur.merged(oi);
            let delta = match prev {
                Some(p) => hist_delta(&cur_m, &p.merged(oi)),
                None => cur_m,
            };
            all.merge(&delta);
            outcomes.push(OutcomeWindow {
                outcome: *outcome,
                window: TailWindow::from_hist(&delta),
            });
        }
        let spec = match prev {
            Some(p) => SpecStats::delta(&cur.merged_spec(), &p.merged_spec()),
            None => cur.merged_spec(),
        };
        let queue = match prev {
            Some(p) => QueueStats::delta(&cur.merged_queue(), &p.merged_queue()),
            None => cur.merged_queue(),
        };
        TailSample {
            outcomes,
            all: TailWindow::from_hist(&all),
            spec: SpecWindow::from_stats(&spec),
            queue: QueueWindow::from_stats(&queue),
            snapshot: cur,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(ingress: u64, verdict: u64, decision: u64, end: u64) -> ContextSpan {
        ContextSpan {
            ingress_ns: ingress,
            verdict_ns: verdict,
            decision_ns: decision,
            end_ns: end,
        }
    }

    fn ex(ctx: u64, total_ns: u64) -> Exemplar {
        Exemplar {
            shard: 0,
            ctx: ContextId::from_raw(ctx),
            outcome: TailOutcome::Delivered,
            span: span(0, 1, 2, total_ns),
            batch_index: 0,
            phase_path: 0,
            phase_depth: 0,
            spec: SpecOutcome::NotSpeculated,
            at: 0,
        }
    }

    #[test]
    fn segments_telescope_for_monotone_stamps() {
        let s = span(10, 40, 45, 100);
        assert_eq!(s.segments(), [30, 5, 55]);
        assert_eq!(s.segments().iter().sum::<u64>(), s.total_ns());
    }

    #[test]
    fn causal_id_matches_provenance_notation() {
        let mut e = ex(12, 100);
        e.shard = 3;
        assert_eq!(e.causal_id(), "s3/ctx#12");
    }

    #[test]
    fn phase_stack_round_trips_the_packed_path() {
        let mut e = ex(1, 100);
        // ingest (index 0) at root, constraint_check (index 2) nested.
        e.phase_path = 2 << 4;
        e.phase_depth = 2;
        assert_eq!(e.phase_stack(), vec![Phase::Ingest, Phase::ConstraintCheck]);
    }

    #[test]
    fn disabled_slot_records_nothing() {
        let slot = ShardTailSlot::new(false);
        assert!(!slot.observe(TailOutcome::Delivered, 1_000_000));
        slot.capture(ex(1, 1_000_000));
        slot.record_queue_wait(5);
        let snap = slot.snapshot(0);
        assert_eq!(snap.captured, 0);
        assert!(snap.exemplars.is_empty());
        assert!(TailSnapshot { shards: vec![snap] }.is_empty());
    }

    #[test]
    fn threshold_starts_open_then_tracks_p99() {
        let slot = ShardTailSlot::new(true);
        // Before the first refresh everything crosses the zero
        // threshold.
        assert!(slot.observe(TailOutcome::Delivered, 10_000));
        // A uniform fast load pushes the threshold up past the slow
        // refresh point; after it, a fast span no longer captures but a
        // slow one does.
        for _ in 0..THRESHOLD_RECALC_EVERY * 2 {
            slot.observe(TailOutcome::Delivered, 1_000);
        }
        assert!(!slot.observe(TailOutcome::Delivered, 500));
        assert!(slot.observe(TailOutcome::Delivered, u64::MAX / 2));
    }

    #[test]
    fn reservoir_is_bounded_and_keeps_newest() {
        let slot = ShardTailSlot::new(true);
        for i in 0..(EXEMPLAR_CAPACITY as u64 + 10) {
            slot.capture(ex(i, 1_000));
        }
        let snap = slot.snapshot(2);
        assert_eq!(snap.exemplars.len(), EXEMPLAR_CAPACITY);
        assert_eq!(snap.captured, EXEMPLAR_CAPACITY as u64 + 10);
        assert!(snap.exemplars.iter().all(|e| e.shard == 2));
        // The overwritten slots hold the newest ids.
        assert!(snap
            .exemplars
            .iter()
            .any(|e| e.ctx == ContextId::from_raw(EXEMPLAR_CAPACITY as u64 + 9)));
        assert!(!snap
            .exemplars
            .iter()
            .any(|e| e.ctx == ContextId::from_raw(0)));
    }

    #[test]
    fn windowed_sample_subtracts_the_previous_snapshot() {
        let slot = ShardTailSlot::new(true);
        for _ in 0..10 {
            slot.observe(TailOutcome::Delivered, 2_000_000);
        }
        let prev = TailSnapshot {
            shards: vec![slot.snapshot(0)],
        };
        for _ in 0..5 {
            slot.observe(TailOutcome::Discarded, 8_000_000);
        }
        let cur = TailSnapshot {
            shards: vec![slot.snapshot(0)],
        };
        let sample = TailSample::between(Some(&prev), cur);
        assert_eq!(sample.all.count, 5);
        let discarded = &sample.outcomes[TailOutcome::Discarded.index()];
        assert_eq!(discarded.window.count, 5);
        assert_eq!(
            sample.outcomes[TailOutcome::Delivered.index()].window.count,
            0
        );
        let p99 = discarded.window.p99_ns.unwrap();
        assert!(p99 <= 8192.0 * 1_000.0 && p99 > 4_000_000.0, "{p99}");
    }

    #[test]
    fn spec_window_rates_divide_by_groups() {
        let slot = ShardTailSlot::new(true);
        slot.record_spec_batch(&SpecBatch {
            groups_speculated: 10,
            consumed: 7,
            wasted_dirty: 2,
            inline_checks: 3,
            workers_used: 4,
            worker_busy_ns: vec![100, 200, 300, 400],
        });
        let cur = TailSnapshot {
            shards: vec![slot.snapshot(0)],
        };
        let sample = TailSample::between(None, cur);
        assert_eq!(sample.spec.consumed_rate, Some(0.7));
        assert_eq!(sample.spec.wasted_rate, Some(0.2));
        assert_eq!(sample.spec.avg_workers, Some(4.0));
        assert_eq!(sample.spec.worker_busy_ns[..4], [100, 200, 300, 400]);
    }

    #[test]
    fn queue_window_decomposes_wait_vs_service() {
        let slot = ShardTailSlot::new(true);
        slot.record_queue_wait(100);
        slot.record_queue_wait(300);
        slot.record_queue_service(600);
        let cur = TailSnapshot {
            shards: vec![slot.snapshot(0)],
        };
        let sample = TailSample::between(None, cur);
        assert_eq!(sample.queue.avg_wait_ns, Some(200.0));
        assert_eq!(sample.queue.avg_service_ns, Some(600.0));
        assert_eq!(sample.queue.wait_share, Some(0.4));
    }

    #[test]
    fn tail_sample_round_trips_through_serde() {
        let slot = ShardTailSlot::new(true);
        if slot.observe(TailOutcome::Expired, 3_000_000) {
            slot.capture(ex(9, 3_000_000));
        }
        slot.record_spec_batch(&SpecBatch {
            groups_speculated: 1,
            consumed: 1,
            ..SpecBatch::default()
        });
        let cur = TailSnapshot {
            shards: vec![slot.snapshot(0)],
        };
        let sample = TailSample::between(None, cur);
        let json = serde_json::to_string(&sample).unwrap();
        let back: TailSample = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sample);
    }

    #[test]
    fn overflow_bucket_quantiles_are_none_not_infinite() {
        let slot = ShardTailSlot::new(true);
        slot.observe(TailOutcome::Delivered, u64::MAX);
        let cur = TailSnapshot {
            shards: vec![slot.snapshot(0)],
        };
        let sample = TailSample::between(None, cur);
        assert_eq!(sample.all.count, 1);
        assert_eq!(
            sample.all.p99_ns, None,
            "infinite estimates stay out of JSON"
        );
    }
}

#[cfg(test)]
mod invariant_proptests {
    //! The two reservoir/span invariants the issue pins: the exemplar
    //! reservoir never exceeds its bound (even under concurrent
    //! writers), and a context span's segments telescope exactly to the
    //! end-to-end total.

    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    proptest! {
        #[test]
        fn segments_telescope_to_the_total(
            ingress in 0u64..1 << 40,
            d1 in 0u64..1 << 30,
            d2 in 0u64..1 << 30,
            d3 in 0u64..1 << 30,
        ) {
            let s = ContextSpan {
                ingress_ns: ingress,
                verdict_ns: ingress + d1,
                decision_ns: ingress + d1 + d2,
                end_ns: ingress + d1 + d2 + d3,
            };
            prop_assert_eq!(s.segments(), [d1, d2, d3]);
            prop_assert_eq!(s.segments().iter().sum::<u64>(), s.total_ns());
        }

        #[test]
        fn out_of_order_stamps_never_overshoot_the_total(
            ingress in 0u64..1 << 30,
            verdict in 0u64..1 << 30,
            decision in 0u64..1 << 30,
            end in 0u64..1 << 30,
        ) {
            let s = ContextSpan {
                ingress_ns: ingress,
                verdict_ns: verdict,
                decision_ns: decision,
                end_ns: end,
            };
            // Clamping keeps every segment inside [ingress, end], so
            // the telescoped sum still equals the saturating total.
            prop_assert_eq!(s.segments().iter().sum::<u64>(), s.total_ns());
        }

        #[test]
        fn reservoir_never_exceeds_its_bound(
            captures in 0usize..200,
        ) {
            let slot = ShardTailSlot::new(true);
            for i in 0..captures {
                slot.capture(Exemplar {
                    shard: 0,
                    ctx: ContextId::from_raw(i as u64),
                    outcome: TailOutcome::Delivered,
                    span: ContextSpan::default(),
                    batch_index: 0,
                    phase_path: 0,
                    phase_depth: 0,
                    spec: SpecOutcome::Inline,
                    at: 0,
                });
            }
            let snap = slot.snapshot(0);
            prop_assert!(snap.exemplars.len() <= EXEMPLAR_CAPACITY);
            prop_assert_eq!(snap.exemplars.len(), captures.min(EXEMPLAR_CAPACITY));
            prop_assert_eq!(snap.captured, captures as u64);
        }

        #[test]
        fn reservoir_bound_survives_concurrent_writers(
            per_thread in 1usize..40,
            threads in 2usize..5,
        ) {
            let slot = Arc::new(ShardTailSlot::new(true));
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let slot = Arc::clone(&slot);
                    scope.spawn(move || {
                        for i in 0..per_thread {
                            let n = (t * per_thread + i) as u64;
                            if slot.observe(TailOutcome::Delivered, n * 1_000) {
                                slot.capture(Exemplar {
                                    shard: 0,
                                    ctx: ContextId::from_raw(n),
                                    outcome: TailOutcome::Delivered,
                                    span: ContextSpan::default(),
                                    batch_index: 0,
                                    phase_path: 0,
                                    phase_depth: 0,
                                    spec: SpecOutcome::Consumed,
                                    at: n,
                                });
                            }
                        }
                    });
                }
            });
            let snap = slot.snapshot(0);
            prop_assert!(snap.exemplars.len() <= EXEMPLAR_CAPACITY);
            prop_assert!(snap.captured <= (per_thread * threads) as u64);
            let all = TailSnapshot { shards: vec![snap] };
            let sample = TailSample::between(None, all);
            prop_assert_eq!(sample.all.count, (per_thread * threads) as u64);
        }
    }
}

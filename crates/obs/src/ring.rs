//! Bounded per-shard event ring buffer.

use crate::event::TraceRecord;
use std::collections::VecDeque;

/// A bounded ring of trace records.
///
/// When full, pushing evicts the **oldest** record (classic ring
/// semantics: the tail of a long run is what a debugger usually wants)
/// and bumps the dropped counter — truncation is never silent. Pushing
/// never blocks on anything but the per-shard lock the owner wraps the
/// ring in, and never allocates once the ring has reached capacity.
#[derive(Debug)]
pub struct EventRing {
    buf: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` records (at least 1).
    pub fn new(capacity: usize) -> Self {
        EventRing {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&mut self, record: TraceRecord) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(record);
    }

    /// Removes and returns every buffered record, oldest first. The
    /// dropped counter is *not* reset — it reports lifetime truncation.
    pub fn drain(&mut self) -> Vec<TraceRecord> {
        self.buf.drain(..).collect()
    }

    /// Records evicted because the ring was full, over the ring's
    /// lifetime.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use ctxres_context::ContextId;

    fn rec(seq: u64) -> TraceRecord {
        TraceRecord {
            shard: 0,
            seq,
            at: seq,
            event: TraceEvent::Delivered {
                ctx: ContextId::from_raw(seq),
            },
        }
    }

    #[test]
    fn push_within_capacity_drops_nothing() {
        let mut ring = EventRing::new(4);
        for i in 0..4 {
            ring.push(rec(i));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn overflow_evicts_oldest_and_counts() {
        let mut ring = EventRing::new(3);
        for i in 0..5 {
            ring.push(rec(i));
        }
        assert_eq!(ring.dropped(), 2);
        let drained = ring.drain();
        assert_eq!(
            drained.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest evicted first"
        );
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 2, "drain keeps the lifetime counter");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut ring = EventRing::new(0);
        ring.push(rec(0));
        ring.push(rec(1));
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped(), 1);
    }
}

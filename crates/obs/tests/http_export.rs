//! End-to-end export pipeline: registry → sampler → HTTP endpoint,
//! scraped over a real TCP connection.
//!
//! Includes the satellite acceptance check: a deliberately overflowed
//! event ring must surface a nonzero `ctxres_trace_events_dropped_total`
//! through `/metrics` — truncation is never silent, not even one
//! indirection away from the ring.

use ctxres_context::{ContextId, LogicalTime};
use ctxres_obs::{CounterKind, MetricsServer, ObsConfig, ObsRegistry, Sample, TraceEvent};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn get(server: &MetricsServer, path: &str) -> String {
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
        .split_once("\r\n\r\n")
        .expect("header block")
        .1
        .to_owned()
}

/// One series' value from an exposition body.
fn series_value(body: &str, series: &str) -> Option<f64> {
    body.lines()
        .find(|l| l.starts_with(series) && l.as_bytes().get(series.len()) == Some(&b' '))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
}

#[test]
fn overflowed_ring_surfaces_dropped_events_in_metrics() {
    // A 4-slot ring fed 20 events: 16 must be dropped, and the drop
    // counter must be visible to an external scraper.
    let registry = ObsRegistry::shared(ObsConfig::enabled().with_ring_capacity(4), 1);
    let h = registry.handle(0);
    for i in 0..20 {
        h.record(
            LogicalTime::new(i),
            TraceEvent::Delivered {
                ctx: ContextId::from_raw(i),
            },
        );
    }
    assert_eq!(registry.dropped(), 16, "precondition: the ring overflowed");

    let server = MetricsServer::spawn(Arc::clone(&registry), "127.0.0.1:0").unwrap();
    let body = get(&server, "/metrics");
    let dropped = series_value(&body, "ctxres_trace_events_dropped_total{shard=\"0\"}")
        .expect("dropped series present");
    assert_eq!(dropped, 16.0, "{body}");
    let buffered = series_value(&body, "ctxres_trace_events_buffered{shard=\"0\"}").unwrap();
    assert_eq!(buffered, 4.0);
    // The recorded counter still counts every accepted event.
    let recorded = series_value(&body, "ctxres_events_recorded_total{shard=\"0\"}").unwrap();
    assert_eq!(recorded, 20.0);
}

#[test]
fn aggregation_totals_flow_through_the_endpoint() {
    let registry = ObsRegistry::shared(ObsConfig::metrics_only(), 3);
    for shard in 0..3 {
        registry
            .handle(shard)
            .count(CounterKind::Ingested, 10 * (shard as u64 + 1));
        registry
            .handle(shard)
            .count(CounterKind::Discards, shard as u64);
    }
    let server = MetricsServer::spawn(Arc::clone(&registry), "127.0.0.1:0").unwrap();

    // First scrape: the baseline sample still carries the cumulative
    // deltas from zero. (Scrapes share one sampler — each one advances
    // the window, so ordering matters in this test.)
    let json = get(&server, "/snapshot");
    let sample: Sample = serde_json::from_str(&json).unwrap();
    assert_eq!(
        sample.snapshot.aggregate().counter(CounterKind::Ingested),
        registry
            .snapshot()
            .aggregate()
            .counter(CounterKind::Ingested),
    );
    assert_eq!(sample.total.delta(CounterKind::Discards), 3);

    let body = get(&server, "/metrics");
    let total: f64 = (0..3)
        .map(|s| series_value(&body, &format!("ctxres_ingested_total{{shard=\"{s}\"}}")).unwrap())
        .sum();
    assert_eq!(total, 60.0, "{body}");
}

#[test]
fn scrape_rates_reflect_activity_between_scrapes() {
    let registry = ObsRegistry::shared(ObsConfig::metrics_only(), 1);
    let server = MetricsServer::spawn(Arc::clone(&registry), "127.0.0.1:0").unwrap();
    let _ = get(&server, "/metrics"); // baseline scrape
    registry.handle(0).count(CounterKind::Deliveries, 50);
    std::thread::sleep(std::time::Duration::from_millis(30));
    let body = get(&server, "/metrics");
    let rate = series_value(&body, "ctxres_deliveries_per_sec{shard=\"0\"}").unwrap();
    assert!(rate > 0.0, "a positive delivery rate, got {rate} in {body}");
}

//! Property tests for the eager baselines: decision-at-addition
//! invariants that hold on arbitrary inconsistency batches.

use ctxres_context::{Context, ContextId, ContextKind, ContextPool, LogicalTime};
use ctxres_core::strategies::{DropAll, DropLatest, DropRandom};
use ctxres_core::{Inconsistency, ResolutionStrategy};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A random sequence of addition changes: each step adds a context and
/// reports fresh inconsistencies pairing it with earlier survivors.
#[derive(Debug, Clone)]
struct Additions {
    /// For each new context: indices (into earlier contexts) it
    /// conflicts with.
    conflicts: Vec<Vec<usize>>,
}

fn additions() -> impl Strategy<Value = Additions> {
    proptest::collection::vec(proptest::collection::vec(0usize..8, 0..3), 1..20)
        .prop_map(|conflicts| Additions { conflicts })
}

fn drive(
    strategy: &mut dyn ResolutionStrategy,
    w: &Additions,
) -> (ContextPool, BTreeSet<ContextId>) {
    let mut pool = ContextPool::new();
    let mut discarded = BTreeSet::new();
    let now = LogicalTime::ZERO;
    let mut ids: Vec<ContextId> = Vec::new();
    for conflicts in &w.conflicts {
        let id = pool.insert(Context::builder(ContextKind::new("k"), "s").build());
        // The same detector report goes to every strategy (no feedback
        // from earlier discards), so cross-strategy set comparisons are
        // meaningful; the strategies themselves skip already-discarded
        // members.
        let fresh: Vec<Inconsistency> = conflicts
            .iter()
            .filter_map(|j| ids.get(*j))
            .map(|earlier| Inconsistency::pair("c", *earlier, id, now))
            .collect();
        let out = strategy.on_addition(&mut pool, now, id, &fresh);
        discarded.extend(out.discarded);
        ids.push(id);
    }
    (pool, discarded)
}

proptest! {
    /// Eager strategies never leave a context undecided: after each
    /// addition everything is Consistent or Inconsistent.
    #[test]
    fn eager_strategies_decide_immediately(w in additions()) {
        for strategy in [
            Box::new(DropLatest::new()) as Box<dyn ResolutionStrategy>,
            Box::new(DropAll::new()),
            Box::new(DropRandom::new(7)),
        ] {
            let mut s = strategy;
            let (pool, _) = drive(s.as_mut(), &w);
            for (id, c) in pool.iter() {
                prop_assert!(
                    c.state().is_terminal(),
                    "{}: {id} left {}",
                    s.name(),
                    c.state()
                );
            }
        }
    }

    /// Drop-all discards a superset of drop-latest on identical input:
    /// the latest member of every fresh inconsistency is among "all of
    /// them".
    #[test]
    fn drop_all_discards_superset_of_drop_latest(w in additions()) {
        let mut lat = DropLatest::new();
        let mut all = DropAll::new();
        let (_, lat_discarded) = drive(&mut lat, &w);
        let (_, all_discarded) = drive(&mut all, &w);
        prop_assert!(
            lat_discarded.is_subset(&all_discarded),
            "d-lat {lat_discarded:?} not within d-all {all_discarded:?}"
        );
    }

    /// Drop-random discards exactly one member per fresh unresolved
    /// inconsistency, so it never discards more than drop-all.
    #[test]
    fn drop_random_bounded_by_drop_all(w in additions(), seed in any::<u64>()) {
        let mut rnd = DropRandom::new(seed);
        let mut all = DropAll::new();
        let (_, rnd_discarded) = drive(&mut rnd, &w);
        let (_, all_discarded) = drive(&mut all, &w);
        prop_assert!(rnd_discarded.len() <= all_discarded.len());
    }

    /// The discard decision is pure: same workload, same outcome (for
    /// the deterministic strategies and for a fixed random seed).
    #[test]
    fn eager_decisions_are_deterministic(w in additions(), seed in any::<u64>()) {
        let run = |mut s: Box<dyn ResolutionStrategy>| drive(s.as_mut(), &w).1;
        prop_assert_eq!(run(Box::new(DropLatest::new())), run(Box::new(DropLatest::new())));
        prop_assert_eq!(run(Box::new(DropAll::new())), run(Box::new(DropAll::new())));
        prop_assert_eq!(
            run(Box::new(DropRandom::new(seed))),
            run(Box::new(DropRandom::new(seed)))
        );
    }
}

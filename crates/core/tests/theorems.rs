//! Property-based validation of the paper's Theorems 1 and 2 (§3.4).
//!
//! *Theorem 1*: with heuristic Rules 1 and 2 holding, the drop-bad
//! strategy is always reliable — each discarded context is corrupted.
//! *Theorem 2*: likewise with Rules 1 and 2′ (relaxed).
//!
//! The paper omits the proofs (they live in technical report
//! HKUST-CS07-11); here we machine-check the claims. We read the rules
//! as invariants of the tracked set Δ at each resolution instant: the
//! harness replays a randomized use order and, at every step where the
//! rules held on the residual Δ, asserts that whatever drop-bad
//! discarded is corrupted ground truth.
//!
//! Generators produce *star hypergraphs* — corrupted hubs each
//! conflicting with ≥ 2 expected leaves, plus optional
//! corrupted-corrupted edges — the natural family satisfying the rules
//! at detection time (a corrupted context participates in more
//! inconsistencies than its expected neighbours, §3.1).

use ctxres_context::{Context, ContextId, ContextKind, ContextPool, LogicalTime, TruthTag};
use ctxres_core::strategies::DropBad;
use ctxres_core::theory::{rule1_holds, rule2_holds, rule2_relaxed_holds};
use ctxres_core::{Inconsistency, ResolutionStrategy};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A generated workload: contexts with ground truth, their
/// inconsistencies, and a use order.
#[derive(Debug, Clone)]
struct StarWorkload {
    /// corrupted[i] == true iff context i is corrupted.
    corrupted: Vec<bool>,
    /// Inconsistencies as index sets.
    incs: Vec<Vec<usize>>,
    /// Permutation of context indices giving the use order.
    use_order: Vec<usize>,
}

fn star_workload() -> impl Strategy<Value = StarWorkload> {
    // 1..=3 hubs, each with 2..=4 leaves; optionally link hub pairs.
    (
        1usize..=3,
        proptest::collection::vec(2usize..=4, 3),
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(|(hubs, leaf_counts, link_hubs, shuffle_seed)| {
            let mut corrupted = Vec::new();
            let mut incs = Vec::new();
            let mut hub_ids = Vec::new();
            for &leaves in leaf_counts.iter().take(hubs) {
                let hub = corrupted.len();
                corrupted.push(true);
                hub_ids.push(hub);
                for _ in 0..leaves {
                    let leaf = corrupted.len();
                    corrupted.push(false);
                    incs.push(vec![hub, leaf]);
                }
            }
            if link_hubs && hub_ids.len() >= 2 {
                incs.push(vec![hub_ids[0], hub_ids[1]]);
            }
            // Deterministic Fisher-Yates driven by the seed.
            let n = corrupted.len();
            let mut order: Vec<usize> = (0..n).collect();
            let mut state = shuffle_seed | 1;
            for i in (1..n).rev() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                order.swap(i, j);
            }
            StarWorkload {
                corrupted,
                incs,
                use_order: order,
            }
        })
}

/// Replays a workload through drop-bad, asserting theorem compliance at
/// every step where `rules_hold` is true on the residual Δ.
fn replay(w: &StarWorkload, rules_hold: impl Fn(&[Inconsistency]) -> bool) {
    let mut pool = ContextPool::new();
    let ids: Vec<ContextId> = w
        .corrupted
        .iter()
        .enumerate()
        .map(|(i, corr)| {
            pool.insert(
                Context::builder(ContextKind::new("x"), &format!("s{i}"))
                    .truth(if *corr {
                        TruthTag::Corrupted
                    } else {
                        TruthTag::Expected
                    })
                    .stamp(LogicalTime::new(i as u64))
                    .build(),
            )
        })
        .collect();
    let truth = |id: ContextId| w.corrupted[id.raw() as usize];

    let mut strategy = DropBad::new();
    let now = LogicalTime::new(100);
    for inc in &w.incs {
        let members: Vec<ContextId> = inc.iter().map(|i| ids[*i]).collect();
        let latest = *members.iter().max().unwrap();
        let inc = Inconsistency::new("c", members, now);
        strategy.on_addition(&mut pool, now, latest, &[inc]);
    }

    // Rule 1 is about detection and must hold throughout by construction.
    let all: Vec<Inconsistency> = strategy.tracked().iter().cloned().collect();
    assert!(rule1_holds(&all, truth));

    // The rules are read as invariants: assertions apply while they have
    // held at every resolution instant so far (a later bad-marked
    // discard traces back to the round that marked it).
    let mut held_so_far = true;
    for &idx in &w.use_order {
        let residual: Vec<Inconsistency> = strategy.tracked().iter().cloned().collect();
        held_so_far = held_so_far && rules_hold(&residual);
        let out = strategy.on_use(&mut pool, now, ids[idx]);
        if held_so_far {
            for discarded in &out.discarded {
                assert!(
                    truth(*discarded),
                    "drop-bad discarded expected context {discarded} while the rules held;\n\
                     workload: {w:?}\nresidual Δ: {residual:?}"
                );
            }
        }
        // Regardless of the rules: delivered and discarded are disjoint.
        if out.delivered {
            assert!(!out.discarded.contains(&ids[idx]));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Theorem 1: under Rules 1+2 (checked as residual invariants),
    /// every discard is corrupted.
    #[test]
    fn theorem1_discards_only_corrupted(w in star_workload()) {
        let corrupted = w.corrupted.clone();
        replay(&w, move |residual| {
            rule1_holds(residual, |id| corrupted[id.raw() as usize])
                && rule2_holds(residual, |id| corrupted[id.raw() as usize])
        });
    }

    /// Theorem 2: the relaxed Rule 2′ suffices.
    #[test]
    fn theorem2_relaxed_rule_suffices(w in star_workload()) {
        let corrupted = w.corrupted.clone();
        replay(&w, move |residual| {
            rule1_holds(residual, |id| corrupted[id.raw() as usize])
                && rule2_relaxed_holds(residual, |id| corrupted[id.raw() as usize])
        });
    }

    /// Liveness: every context is eventually decided (delivered or
    /// discarded), and Δ drains completely once everything was used.
    #[test]
    fn every_context_is_decided_and_delta_drains(w in star_workload()) {
        let mut pool = ContextPool::new();
        let ids: Vec<ContextId> = w
            .corrupted
            .iter()
            .enumerate()
            .map(|(i, corr)| {
                pool.insert(
                    Context::builder(ContextKind::new("x"), &format!("s{i}"))
                        .truth(if *corr { TruthTag::Corrupted } else { TruthTag::Expected })
                        .build(),
                )
            })
            .collect();
        let mut strategy = DropBad::new();
        let now = LogicalTime::ZERO;
        for inc in &w.incs {
            let members: Vec<ContextId> = inc.iter().map(|i| ids[*i]).collect();
            let latest = *members.iter().max().unwrap();
            strategy.on_addition(&mut pool, now, latest, &[Inconsistency::new("c", members, now)]);
        }
        for &idx in &w.use_order {
            let out = strategy.on_use(&mut pool, now, ids[idx]);
            prop_assert!(out.delivered || out.discarded.contains(&ids[idx]));
        }
        prop_assert!(strategy.tracked().is_empty());
        let undecided: BTreeSet<ContextId> = pool
            .iter()
            .filter(|(_, c)| !c.state().is_terminal())
            .map(|(id, _)| id)
            .collect();
        prop_assert!(undecided.is_empty(), "left undecided: {undecided:?}");
    }

    /// The corrupted hub of a pure star is always caught, whatever the
    /// use order (it dominates every inconsistency it is in).
    #[test]
    fn star_hub_is_always_caught(
        leaves in 2usize..=5,
        seed in any::<u64>(),
    ) {
        let mut pool = ContextPool::new();
        let kind = ContextKind::new("x");
        let hub = pool.insert(
            Context::builder(kind.clone(), "hub").truth(TruthTag::Corrupted).build(),
        );
        let leaf_ids: Vec<ContextId> = (0..leaves)
            .map(|i| pool.insert(Context::builder(kind.clone(), &format!("l{i}")).build()))
            .collect();
        let mut strategy = DropBad::new();
        let now = LogicalTime::ZERO;
        for &leaf in &leaf_ids {
            strategy.on_addition(&mut pool, now, leaf, &[Inconsistency::pair("c", hub, leaf, now)]);
        }
        let mut order: Vec<ContextId> = std::iter::once(hub).chain(leaf_ids.iter().copied()).collect();
        let mut state = seed | 1;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let mut hub_discarded = false;
        let mut expected_lost = false;
        for id in order {
            let out = strategy.on_use(&mut pool, now, id);
            if out.discarded.contains(&hub) {
                hub_discarded = true;
            }
            if out.discarded.iter().any(|d| *d != hub) {
                expected_lost = true;
            }
        }
        prop_assert!(hub_discarded, "the corrupted hub must be discarded");
        prop_assert!(!expected_lost, "no expected leaf may be discarded");
    }
}

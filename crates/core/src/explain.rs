//! Discard explanations: why did drop-bad throw a context away?
//!
//! The paper's §5.1 lessons note that eager strategies fail opaquely —
//! their assumptions are implicit. Drop-bad's decisions, by contrast,
//! are *explainable*: each discard follows from concrete count values
//! over concrete inconsistencies. This module captures that evidence at
//! decision time so operators (and the test suite) can audit every
//! discard after the fact.

use crate::inconsistency::Inconsistency;
use ctxres_context::{ContextId, LogicalTime};
use std::fmt;

/// Why a context was discarded (or marked bad).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscardReason {
    /// The context carried the largest count value in this inconsistency
    /// when it was used.
    LargestCount {
        /// The deciding inconsistency.
        inconsistency: Inconsistency,
        /// The context's count value at decision time.
        count: usize,
    },
    /// The context had been marked bad earlier and was discarded on use.
    WasBad,
    /// The context was marked bad while resolving an inconsistency in
    /// another context's favour.
    MarkedBad {
        /// The inconsistency being resolved.
        inconsistency: Inconsistency,
        /// The context that was being used (and delivered).
        resolved_for: ContextId,
        /// The marked context's count value at that time.
        count: usize,
    },
}

/// One audited decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Explanation {
    /// The context the decision concerns.
    pub context: ContextId,
    /// When the decision was taken.
    pub at: LogicalTime,
    /// The evidence.
    pub reason: DiscardReason,
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.reason {
            DiscardReason::LargestCount { inconsistency, count } => write!(
                f,
                "{} discarded at {}: largest count value {count} in {inconsistency}",
                self.context, self.at
            ),
            DiscardReason::WasBad => {
                write!(f, "{} discarded at {}: previously marked bad", self.context, self.at)
            }
            DiscardReason::MarkedBad { inconsistency, resolved_for, count } => write!(
                f,
                "{} marked bad at {} (count {count}) while {inconsistency} was resolved in favour of {resolved_for}",
                self.context, self.at
            ),
        }
    }
}

/// A journal of explanations.
///
/// ```
/// use ctxres_core::strategies::DropBad;
/// use ctxres_core::{Inconsistency, ResolutionStrategy};
/// use ctxres_context::{Context, ContextKind, ContextPool, LogicalTime};
///
/// let mut pool = ContextPool::new();
/// let kind = ContextKind::new("location");
/// let a = pool.insert(Context::builder(kind.clone(), "p").build());
/// let b = pool.insert(Context::builder(kind.clone(), "p").build());
/// let c = pool.insert(Context::builder(kind, "p").build());
///
/// let mut strategy = DropBad::new().with_explanations();
/// let now = LogicalTime::ZERO;
/// strategy.on_addition(&mut pool, now, b, &[Inconsistency::pair("v", a, b, now)]);
/// strategy.on_addition(&mut pool, now, c, &[Inconsistency::pair("v", b, c, now)]);
/// strategy.on_use(&mut pool, now, b); // count 2: discarded
///
/// let log = strategy.explanations().unwrap();
/// assert!(log.entries()[0].to_string().contains("largest count value 2"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExplanationLog {
    entries: Vec<Explanation>,
}

impl ExplanationLog {
    /// Creates an empty journal.
    pub fn new() -> Self {
        ExplanationLog::default()
    }

    /// The recorded explanations, oldest first.
    pub fn entries(&self) -> &[Explanation] {
        &self.entries
    }

    /// Explanations concerning one context.
    pub fn for_context(&self, id: ContextId) -> impl Iterator<Item = &Explanation> + '_ {
        self.entries.iter().filter(move |e| e.context == id)
    }

    pub(crate) fn record(&mut self, e: Explanation) {
        self.entries.push(e);
    }

    /// Clears the journal.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ContextId {
        ContextId::from_raw(n)
    }

    #[test]
    fn explanations_render_their_evidence() {
        let inc = Inconsistency::pair("velocity", id(2), id(3), LogicalTime::new(1));
        let e = Explanation {
            context: id(3),
            at: LogicalTime::new(5),
            reason: DiscardReason::LargestCount {
                inconsistency: inc,
                count: 4,
            },
        };
        let s = e.to_string();
        assert!(s.contains("ctx#3"));
        assert!(s.contains("count value 4"));
        assert!(s.contains("velocity"));
    }

    #[test]
    fn log_filters_by_context() {
        let mut log = ExplanationLog::new();
        log.record(Explanation {
            context: id(1),
            at: LogicalTime::ZERO,
            reason: DiscardReason::WasBad,
        });
        log.record(Explanation {
            context: id(2),
            at: LogicalTime::ZERO,
            reason: DiscardReason::WasBad,
        });
        assert_eq!(log.entries().len(), 2);
        assert_eq!(log.for_context(id(1)).count(), 1);
        log.clear();
        assert!(log.entries().is_empty());
    }
}

//! Context inconsistency **resolution strategies** — the primary
//! contribution of the ICDCS 2008 paper *"Heuristics-Based Strategies for
//! Resolving Context Inconsistencies in Pervasive Computing
//! Applications"* (Xu, Cheung, Chan, Ye).
//!
//! A pervasive-computing middleware detects **context inconsistencies**
//! (violations of consistency constraints, see `ctxres-constraint`) among
//! the noisy contexts it manages. Something must then decide which
//! contexts to discard. This crate implements every strategy the paper
//! discusses, behind one [`ResolutionStrategy`] trait:
//!
//! | strategy | paper | behaviour |
//! |----------|-------|-----------|
//! | [`DropLatest`](strategies::DropLatest) | §2.2 (Chomicki et al.) | discard the newest context of any fresh inconsistency |
//! | [`DropAll`](strategies::DropAll) | §2.3 (Bu et al.) | discard every context involved in a fresh inconsistency |
//! | [`DropRandom`](strategies::DropRandom) | §2.3 | discard a random involved context |
//! | [`UserPolicy`](strategies::UserPolicy) | §2.3 (Ranganathan et al.) | discard per static user preferences |
//! | [`DropBad`](strategies::DropBad) | **§3 (this paper)** | track inconsistencies in Δ, defer decisions until use, discard largest count value |
//! | [`Oracle`](strategies::Oracle) | §4.1 (OPT-R) | ground-truth oracle; the 100 % baseline |
//!
//! The **drop-bad** strategy keeps a [`TrackedSet`] Δ of detected but
//! unresolved inconsistencies and a per-context **count value** (how many
//! tracked inconsistencies the context participates in). When an
//! application uses a context, the strategy discards it only if it
//! carries the largest count value in one of its inconsistencies,
//! otherwise delivers it and marks the largest-count peers *bad* (paper
//! Fig. 7/8).
//!
//! [`theory`] provides checkable versions of the paper's heuristic Rules
//! 1, 2 and 2′; the crate's property-test suite uses them to validate
//! Theorems 1 and 2 (every context drop-bad discards is corrupted, as
//! long as the rules hold).
//!
//! # Example
//!
//! ```
//! use ctxres_core::{Inconsistency, ResolutionStrategy, strategies::DropBad};
//! use ctxres_context::{Context, ContextKind, ContextPool, ContextState, LogicalTime};
//!
//! let mut pool = ContextPool::new();
//! let kind = ContextKind::new("location");
//! let a = pool.insert(Context::builder(kind.clone(), "p").build());
//! let b = pool.insert(Context::builder(kind.clone(), "p").build());
//! let c = pool.insert(Context::builder(kind.clone(), "p").build());
//!
//! let mut drop_bad = DropBad::new();
//! let now = LogicalTime::new(1);
//! // b conflicts with both a and c: count(b) = 2.
//! drop_bad.on_addition(&mut pool, now, b, &[Inconsistency::pair("velocity", a, b, now)]);
//! drop_bad.on_addition(&mut pool, now, c, &[Inconsistency::pair("velocity", b, c, now)]);
//!
//! // When the application uses b, its count value (2) is the largest:
//! let outcome = drop_bad.on_use(&mut pool, now, b);
//! assert!(!outcome.delivered);
//! assert_eq!(pool.get(b).unwrap().state(), ContextState::Inconsistent);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explain;
pub mod harness;
mod inconsistency;
pub mod strategies;
mod strategy;
pub mod theory;
mod tracked;

pub use explain::{DiscardReason, Explanation, ExplanationLog};
pub use inconsistency::Inconsistency;
pub use strategy::{AdditionOutcome, ResolutionStrategy, TieBreak, TiePolicy, UseOutcome};
pub use tracked::{CountMap, TrackedSet};

//! The concrete resolution strategies.
//!
//! See the crate docs for the mapping to the paper's sections. All
//! strategies implement [`crate::ResolutionStrategy`]; the
//! [`by_name`] factory builds the four the experiments compare.

mod drop_all;
mod drop_bad;
mod drop_latest;
mod drop_random;
mod impact_aware;
mod oracle;
mod user_policy;

pub use drop_all::DropAll;
pub use drop_bad::DropBad;
pub use drop_latest::DropLatest;
pub use drop_random::DropRandom;
pub use impact_aware::{ImpactAwareDropBad, ImpactProfile};
pub use oracle::Oracle;
pub use user_policy::{PolicyRule, UserPolicy};

use crate::strategy::ResolutionStrategy;

/// Builds one of the experiment strategies by its paper name.
///
/// Recognized names (case-insensitive): `opt-r`, `d-bad`, `d-lat`,
/// `d-all`, `d-rand`. Returns `None` for anything else.
///
/// ```
/// use ctxres_core::strategies::by_name;
/// assert_eq!(by_name("D-BAD", 42).unwrap().name(), "d-bad");
/// assert!(by_name("nonsense", 0).is_none());
/// ```
pub fn by_name(name: &str, seed: u64) -> Option<Box<dyn ResolutionStrategy + Send>> {
    match name.to_ascii_lowercase().as_str() {
        "opt-r" => Some(Box::new(Oracle::new())),
        "d-bad" => Some(Box::new(DropBad::new())),
        "d-lat" => Some(Box::new(DropLatest::new())),
        "d-all" => Some(Box::new(DropAll::new())),
        "d-rand" => Some(Box::new(DropRandom::new(seed))),
        _ => None,
    }
}

/// The strategy names compared in the paper's experiments (§4), in
/// presentation order.
pub const EXPERIMENT_STRATEGIES: [&str; 4] = ["opt-r", "d-bad", "d-lat", "d-all"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_covers_all_experiment_strategies() {
        for name in EXPERIMENT_STRATEGIES {
            assert_eq!(by_name(name, 1).unwrap().name(), name);
        }
    }

    #[test]
    fn by_name_rejects_unknown() {
        assert!(by_name("d-what", 1).is_none());
    }
}

//! The drop-bad strategy — the paper's contribution (§3).

use crate::explain::{DiscardReason, Explanation, ExplanationLog};
use crate::inconsistency::Inconsistency;
use crate::strategy::{AdditionOutcome, ResolutionStrategy, TieBreak, TiePolicy, UseOutcome};
use crate::tracked::TrackedSet;
use ctxres_context::{ContextId, ContextPool, ContextState, LogicalTime};
use ctxres_obs::{CauseKind, CounterKind, MetricKind, ShardObs, TraceEvent};

/// Drop-bad (`D-BAD`): heuristics-based deferred resolution driven by
/// count values (paper §3, Figs. 6–8).
///
/// Unlike the eager baselines, drop-bad **tolerates** detected
/// inconsistencies: it records them in the tracked set Δ and defers the
/// discard decision for each context until an application actually uses
/// it. At that point (Fig. 7, Part 2):
///
/// 1. if the context is `Bad`, or carries the **largest count value**
///    within one of its tracked inconsistencies, it is set
///    `Inconsistent` and discarded;
/// 2. otherwise it is set `Consistent` and delivered;
/// 3. in either case, for every tracked inconsistency the context
///    participated in, the member carrying the largest count value (if
///    it is a different context) is marked `Bad` — a deferred discard
///    that lets the middleware keep collecting count evidence;
/// 4. all inconsistencies involving the used context leave Δ.
///
/// The underlying heuristic: *a context that participates more
/// frequently in inconsistencies is likelier to be incorrect* (§3.1).
/// Under heuristic Rules 1+2 (or the relaxed 1+2′, see
/// [`crate::theory`]), every discarded context is indeed corrupted
/// (Theorems 1 and 2) — validated by this crate's property-test suite.
///
/// Two points the paper's Fig. 7 pseudocode leaves open are resolved as
/// follows (rationale in DESIGN.md):
///
/// * **Ties** (§5.1): governed by [`TiePolicy`]. Under the default
///   `DoomUsed`, a context tying for the maximal count value counts as
///   "largest" and is discarded when used; under `BlamePeer` it is
///   delivered and a tied *undecided* rival (picked by [`TieBreak`]) is
///   marked bad instead. Ties against rivals that were already
///   delivered always doom the used context — that is what reduces
///   drop-bad to drop-latest at a zero window (§5.3);
/// * **Bad members**: an inconsistency that already contains a `Bad`
///   context is treated as having its discard decided; it neither dooms
///   nor bad-marks its other members. Without this, marking a context
///   bad could cause a peer's discard that an immediate discard would
///   not have — contradicting §3.3's "no negative effect" argument.
#[derive(Debug, Clone, Default)]
pub struct DropBad {
    delta: TrackedSet,
    tie: TieBreak,
    tie_policy: TiePolicy,
    explain: Option<ExplanationLog>,
    obs: ShardObs,
}

impl DropBad {
    /// Creates the strategy with the default tie handling (`DoomUsed`
    /// policy, `Latest` tie-breaker).
    pub fn new() -> Self {
        DropBad::default()
    }

    /// Creates the strategy with an explicit tie-breaking preference for
    /// choosing which rival to mark bad.
    pub fn with_tie_break(tie: TieBreak) -> Self {
        DropBad {
            tie,
            ..DropBad::default()
        }
    }

    /// Creates the strategy with an explicit §5.1 tie policy.
    pub fn with_tie_policy(tie_policy: TiePolicy) -> Self {
        DropBad {
            tie_policy,
            ..DropBad::default()
        }
    }

    /// Enables the explanation journal: every discard and bad-marking is
    /// recorded with the count-value evidence that justified it.
    pub fn with_explanations(mut self) -> Self {
        self.explain = Some(ExplanationLog::new());
        self
    }

    /// The explanation journal, when enabled.
    pub fn explanations(&self) -> Option<&ExplanationLog> {
        self.explain.as_ref()
    }

    /// Read access to the tracked set Δ (diagnostics, experiments, and
    /// the heuristic-rule monitors in `ctxres-experiments`).
    pub fn tracked(&self) -> &TrackedSet {
        &self.delta
    }

    /// Emits the current |Δ| into the `DeltaSize` histogram.
    fn observe_delta_size(&self) {
        self.obs
            .observe(MetricKind::DeltaSize, self.delta.len() as u64);
    }

    /// Records one provenance cause edge and bumps the edge counter.
    #[allow(clippy::too_many_arguments)]
    fn emit_cause(
        &self,
        now: LogicalTime,
        ctx: ContextId,
        cause: CauseKind,
        constraint: Option<String>,
        partners: Vec<ContextId>,
        count: Option<u64>,
        verdict: Option<ContextState>,
    ) {
        self.obs.record(
            now,
            TraceEvent::Caused {
                ctx,
                cause,
                constraint,
                partners,
                count,
                verdict,
            },
        );
        self.obs.count(CounterKind::ProvEdges, 1);
    }
}

impl ResolutionStrategy for DropBad {
    fn name(&self) -> &'static str {
        "d-bad"
    }

    fn defers_decision(&self) -> bool {
        true
    }

    fn on_addition(
        &mut self,
        _pool: &mut ContextPool,
        now: LogicalTime,
        _id: ContextId,
        fresh: &[Inconsistency],
    ) -> AdditionOutcome {
        // Context addition change (Fig. 6): track the new
        // inconsistencies; the context stays buffered (`Undecided`).
        for inc in fresh {
            let Some(bumped) = self.delta.add_with_counts(inc.clone()) else {
                continue;
            };
            if self.obs.is_enabled() {
                self.obs.record(
                    now,
                    TraceEvent::DeltaInserted {
                        constraint: inc.constraint().to_string(),
                        contexts: inc.contexts().iter().copied().collect(),
                    },
                );
                for &(ctx, count) in &bumped {
                    self.obs.record(
                        now,
                        TraceEvent::CountBumped {
                            ctx,
                            count: count as u64,
                        },
                    );
                }
                if self.obs.provenance_enabled() {
                    let members: Vec<ContextId> = inc.contexts().iter().copied().collect();
                    for &ctx in &members {
                        let partners: Vec<ContextId> =
                            members.iter().copied().filter(|c| *c != ctx).collect();
                        self.emit_cause(
                            now,
                            ctx,
                            CauseKind::JoinedDelta,
                            Some(inc.constraint().to_string()),
                            partners,
                            None,
                            None,
                        );
                    }
                    for &(ctx, count) in &bumped {
                        let partners: Vec<ContextId> =
                            members.iter().copied().filter(|c| *c != ctx).collect();
                        self.emit_cause(
                            now,
                            ctx,
                            CauseKind::CountBumpedBy,
                            Some(inc.constraint().to_string()),
                            partners,
                            Some(count as u64),
                            None,
                        );
                    }
                }
            }
        }
        self.observe_delta_size();
        AdditionOutcome {
            discarded: Vec::new(),
            accepted: true,
        }
    }

    fn on_use(&mut self, pool: &mut ContextPool, now: LogicalTime, id: ContextId) -> UseOutcome {
        let Some(ctx) = pool.get(id) else {
            return UseOutcome::default();
        };
        match ctx.state() {
            // Already decided earlier (e.g. delivered once before).
            ContextState::Consistent => {
                return UseOutcome {
                    delivered: ctx.is_live(now),
                    discarded: Vec::new(),
                    marked_bad: Vec::new(),
                };
            }
            ContextState::Inconsistent => return UseOutcome::default(),
            ContextState::Undecided | ContextState::Bad => {}
        }
        let was_bad = ctx.state() == ContextState::Bad;
        let live = ctx.is_live(now);

        // Snapshot the inconsistencies involving `id` and decide with the
        // *current* count values, before Δ shrinks.
        //
        // An inconsistency that already contains a `Bad` member is
        // destined to be resolved by that member's discard; it must not
        // doom anyone else, or marking a context bad would have the
        // "negative effect" §3.3 argues it cannot have.
        let involving: Vec<Inconsistency> = self.delta.involving(id).cloned().collect();
        let bad_member: Vec<bool> = involving
            .iter()
            .map(|inc| {
                inc.contexts().iter().any(|cid| {
                    *cid != id && pool.get(*cid).map(|c| c.state()) == Some(ContextState::Bad)
                })
            })
            .collect();
        // "Has the largest count value" (Fig. 7): the used context is
        // doomed by an inconsistency when it is the maximum there and no
        // *undecided* rival ties with it — a tied rival that is still
        // buffered can take the blame instead (it gets marked bad below),
        // whereas rivals that were already delivered cannot, so the used
        // context is the only way to resolve that inconsistency. The
        // latter case is what makes a zero window degenerate into
        // drop-latest (§5.3).
        let tied_rival_undecided = |inc: &Inconsistency| {
            let mine = self.delta.counts().get(id);
            inc.contexts().iter().any(|cid| {
                *cid != id
                    && self.delta.counts().get(*cid) == mine
                    && pool.get(*cid).map(|c| c.state()) == Some(ContextState::Undecided)
            })
        };
        let dooming_inc = involving
            .iter()
            .zip(&bad_member)
            .find(|(inc, has_bad)| {
                self.delta.is_max_in(id, inc)
                    && !**has_bad
                    && (self.tie_policy == TiePolicy::DoomUsed || !tied_rival_undecided(inc))
            })
            .map(|(inc, _)| inc.clone());
        let doomed = was_bad || dooming_inc.is_some();
        // Count evidence for the verdict edge, read before Δ shrinks.
        let my_count = self.delta.counts().get(id) as u64;
        if let Some(log) = &mut self.explain {
            if was_bad {
                log.record(Explanation {
                    context: id,
                    at: now,
                    reason: DiscardReason::WasBad,
                });
            } else if let Some(inc) = &dooming_inc {
                log.record(Explanation {
                    context: id,
                    at: now,
                    reason: DiscardReason::LargestCount {
                        inconsistency: inc.clone(),
                        count: self.delta.counts().get(id),
                    },
                });
            }
        }

        // Fig. 7 Part 2, closing loop: for each inconsistency the used
        // context participates in, mark the largest-count member bad
        // (deferring its discard so more count evidence can accumulate).
        let mut marked_bad = Vec::new();
        for (inc, has_bad) in involving.iter().zip(&bad_member) {
            if *has_bad {
                continue; // already has a destined discard
            }
            let mut members = self.delta.max_count_members(inc);
            if members.contains(&id) {
                if doomed {
                    // d' = d: discarding the used context resolves it.
                    continue;
                }
                // The used context ties at the top but was delivered; the
                // blame falls on a tied peer.
                members.retain(|m| *m != id);
            }
            let culprit = self.tie.pick(&members);
            if let Some(culprit) = culprit {
                if pool.get(culprit).map(|c| c.state()) == Some(ContextState::Undecided) {
                    let _ = pool.set_state(culprit, ContextState::Bad);
                    marked_bad.push(culprit);
                    self.obs.record(now, TraceEvent::MarkedBad { ctx: culprit });
                    if self.obs.provenance_enabled() {
                        let partners: Vec<ContextId> = inc
                            .contexts()
                            .iter()
                            .copied()
                            .filter(|c| *c != culprit)
                            .collect();
                        self.emit_cause(
                            now,
                            culprit,
                            CauseKind::SupersededBy,
                            Some(inc.constraint().to_string()),
                            partners,
                            Some(self.delta.counts().get(culprit) as u64),
                            Some(ContextState::Bad),
                        );
                    }
                    if let Some(log) = &mut self.explain {
                        log.record(Explanation {
                            context: culprit,
                            at: now,
                            reason: DiscardReason::MarkedBad {
                                inconsistency: inc.clone(),
                                resolved_for: id,
                                count: self.delta.counts().get(culprit),
                            },
                        });
                    }
                }
            }
        }

        // Context deletion change (Fig. 6): the resolved inconsistencies
        // leave Δ.
        let resolved = self.delta.resolve_involving(id);
        if self.obs.is_enabled() {
            for inc in &resolved {
                self.obs.record(
                    now,
                    TraceEvent::DeltaRemoved {
                        constraint: inc.constraint().to_string(),
                        contexts: inc.contexts().iter().copied().collect(),
                    },
                );
            }
        }
        self.observe_delta_size();

        if doomed {
            let _ = pool.set_state(id, ContextState::Inconsistent);
            if self.obs.provenance_enabled() {
                // The verdict edge cites the dooming inconsistency (or
                // nothing, when the context was already marked bad —
                // its earlier `SupersededBy` edge carries the blame).
                let (constraint, partners) = match &dooming_inc {
                    Some(inc) => (
                        Some(inc.constraint().to_string()),
                        inc.contexts()
                            .iter()
                            .copied()
                            .filter(|c| *c != id)
                            .collect(),
                    ),
                    None => (None, Vec::new()),
                };
                self.emit_cause(
                    now,
                    id,
                    CauseKind::ResolvedBecause,
                    constraint,
                    partners,
                    Some(my_count),
                    Some(ContextState::Inconsistent),
                );
            }
            UseOutcome {
                delivered: false,
                discarded: vec![id],
                marked_bad,
            }
        } else {
            let _ = pool.set_state(id, ContextState::Consistent);
            if self.obs.provenance_enabled() {
                self.emit_cause(
                    now,
                    id,
                    CauseKind::ResolvedBecause,
                    None,
                    Vec::new(),
                    Some(my_count),
                    Some(ContextState::Consistent),
                );
            }
            UseOutcome {
                delivered: live,
                discarded: Vec::new(),
                marked_bad,
            }
        }
    }

    fn emits_provenance(&self) -> bool {
        self.obs.provenance_enabled()
    }

    fn attach_obs(&mut self, obs: ShardObs) {
        self.obs = obs;
    }

    fn reset(&mut self) {
        self.delta.clear();
        if let Some(log) = &mut self.explain {
            log.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_context::{Context, ContextKind};

    /// Builds a pool with `n` location contexts, ids in arrival order.
    fn pool_with(n: usize) -> (ContextPool, Vec<ContextId>) {
        let mut pool = ContextPool::new();
        let ids = (0..n)
            .map(|i| {
                pool.insert(
                    Context::builder(ContextKind::new("location"), "p")
                        .stamp(LogicalTime::new(i as u64))
                        .build(),
                )
            })
            .collect();
        (pool, ids)
    }

    fn pair(a: ContextId, b: ContextId) -> Inconsistency {
        Inconsistency::pair("v", a, b, LogicalTime::ZERO)
    }

    /// Paper Fig. 5, Scenario A: d3 conflicts with d1, d2, d4, d5
    /// (ids 1-based shifted to 0-based: d1..d5 = ids[0..5]).
    fn scenario_a() -> (ContextPool, Vec<ContextId>, DropBad) {
        let (mut pool, ids) = pool_with(5);
        let mut s = DropBad::new();
        let t = LogicalTime::ZERO;
        s.on_addition(
            &mut pool,
            t,
            ids[2],
            &[pair(ids[0], ids[2]), pair(ids[1], ids[2])],
        );
        s.on_addition(&mut pool, t, ids[3], &[pair(ids[2], ids[3])]);
        s.on_addition(&mut pool, t, ids[4], &[pair(ids[2], ids[4])]);
        (pool, ids, s)
    }

    #[test]
    fn addition_only_tracks_never_discards() {
        let (pool, ids, s) = scenario_a();
        assert_eq!(s.tracked().len(), 4);
        assert_eq!(s.tracked().counts().get(ids[2]), 4);
        for &id in &ids {
            assert_eq!(pool.get(id).unwrap().state(), ContextState::Undecided);
        }
    }

    #[test]
    fn hub_context_discarded_when_used() {
        let (mut pool, ids, mut s) = scenario_a();
        let out = s.on_use(&mut pool, LogicalTime::ZERO, ids[2]);
        assert!(!out.delivered);
        assert_eq!(out.discarded, vec![ids[2]]);
        assert_eq!(
            pool.get(ids[2]).unwrap().state(),
            ContextState::Inconsistent
        );
        assert!(s.tracked().is_empty(), "all four inconsistencies resolved");
        // The other contexts then deliver cleanly.
        for &id in &[ids[0], ids[1], ids[3], ids[4]] {
            assert!(s.on_use(&mut pool, LogicalTime::ZERO, id).delivered);
        }
    }

    #[test]
    fn low_count_context_delivered_and_hub_marked_bad() {
        // Paper §3.3 Case 2: using d1 (count 1 < d3's 4) delivers d1 and
        // marks d3 bad.
        let (mut pool, ids, mut s) = scenario_a();
        let out = s.on_use(&mut pool, LogicalTime::ZERO, ids[0]);
        assert!(out.delivered);
        assert_eq!(out.marked_bad, vec![ids[2]]);
        assert_eq!(pool.get(ids[2]).unwrap().state(), ContextState::Bad);
        // (d1,d3) left Δ; the other three remain.
        assert_eq!(s.tracked().len(), 3);
        assert_eq!(s.tracked().counts().get(ids[2]), 3);
        // When d3 is eventually used, bad => inconsistent.
        let out = s.on_use(&mut pool, LogicalTime::ZERO, ids[2]);
        assert!(!out.delivered);
        assert_eq!(
            pool.get(ids[2]).unwrap().state(),
            ContextState::Inconsistent
        );
    }

    #[test]
    fn unconflicted_context_delivers() {
        let (mut pool, ids) = pool_with(1);
        let mut s = DropBad::new();
        s.on_addition(&mut pool, LogicalTime::ZERO, ids[0], &[]);
        let out = s.on_use(&mut pool, LogicalTime::ZERO, ids[0]);
        assert!(out.delivered);
        assert_eq!(pool.get(ids[0]).unwrap().state(), ContextState::Consistent);
    }

    #[test]
    fn tie_case_default_policy_dooms_first_used() {
        // Scenario B before refinement (Fig. 4): single inconsistency
        // (d3,d4), both count 1 — "one cannot dig out more useful
        // information to distinguish" (§3.1). Under the default DoomUsed
        // policy the first context used is discarded.
        let (mut pool, ids) = pool_with(2);
        let mut s = DropBad::new();
        s.on_addition(
            &mut pool,
            LogicalTime::ZERO,
            ids[1],
            &[pair(ids[0], ids[1])],
        );
        let out = s.on_use(&mut pool, LogicalTime::ZERO, ids[0]);
        assert!(!out.delivered);
        assert_eq!(out.discarded, vec![ids[0]]);
        assert!(s.on_use(&mut pool, LogicalTime::ZERO, ids[1]).delivered);
    }

    #[test]
    fn tie_case_blame_peer_policy_delivers_first_used() {
        let (mut pool, ids) = pool_with(2);
        let mut s = DropBad::with_tie_policy(TiePolicy::BlamePeer);
        s.on_addition(
            &mut pool,
            LogicalTime::ZERO,
            ids[1],
            &[pair(ids[0], ids[1])],
        );
        let out = s.on_use(&mut pool, LogicalTime::ZERO, ids[0]);
        assert!(out.delivered);
        assert_eq!(out.marked_bad, vec![ids[1]]);
        assert!(!s.on_use(&mut pool, LogicalTime::ZERO, ids[1]).delivered);
    }

    #[test]
    fn tie_against_delivered_rival_dooms_the_used_context() {
        // §5.3 window-zero shape: the rival was already delivered, so
        // only the used context can resolve the inconsistency — exactly
        // drop-latest's decision.
        let (mut pool, ids) = pool_with(2);
        let mut s = DropBad::new();
        s.on_addition(&mut pool, LogicalTime::ZERO, ids[0], &[]);
        assert!(s.on_use(&mut pool, LogicalTime::ZERO, ids[0]).delivered);
        s.on_addition(
            &mut pool,
            LogicalTime::ZERO,
            ids[1],
            &[pair(ids[0], ids[1])],
        );
        let out = s.on_use(&mut pool, LogicalTime::ZERO, ids[1]);
        assert!(!out.delivered);
        assert_eq!(out.discarded, vec![ids[1]]);
    }

    #[test]
    fn scenario_b_refined_keeps_d4_and_d5() {
        // Fig. 5 Scenario B: Δ = {(d3,d4),(d3,d5)}; count(d3)=2 others 1.
        let (mut pool, ids) = pool_with(5);
        let mut s = DropBad::new();
        s.on_addition(
            &mut pool,
            LogicalTime::ZERO,
            ids[3],
            &[pair(ids[2], ids[3])],
        );
        s.on_addition(
            &mut pool,
            LogicalTime::ZERO,
            ids[4],
            &[pair(ids[2], ids[4])],
        );
        assert!(s.on_use(&mut pool, LogicalTime::ZERO, ids[3]).delivered);
        // d3 was marked bad while resolving (d3,d4).
        assert_eq!(pool.get(ids[2]).unwrap().state(), ContextState::Bad);
        assert!(!s.on_use(&mut pool, LogicalTime::ZERO, ids[2]).delivered);
        assert!(s.on_use(&mut pool, LogicalTime::ZERO, ids[4]).delivered);
    }

    #[test]
    fn reuse_of_delivered_context_stays_delivered() {
        let (mut pool, ids) = pool_with(1);
        let mut s = DropBad::new();
        s.on_addition(&mut pool, LogicalTime::ZERO, ids[0], &[]);
        assert!(s.on_use(&mut pool, LogicalTime::ZERO, ids[0]).delivered);
        assert!(s.on_use(&mut pool, LogicalTime::ZERO, ids[0]).delivered);
    }

    #[test]
    fn expired_context_resolves_but_does_not_deliver() {
        use ctxres_context::{Lifespan, Ticks};
        let mut pool = ContextPool::new();
        let id = pool.insert(
            Context::builder(ContextKind::new("location"), "p")
                .lifespan(Lifespan::with_ttl(LogicalTime::ZERO, Ticks::new(1)))
                .build(),
        );
        let mut s = DropBad::new();
        s.on_addition(&mut pool, LogicalTime::ZERO, id, &[]);
        let out = s.on_use(&mut pool, LogicalTime::new(5), id);
        assert!(!out.delivered, "expired contexts are not delivered");
        assert!(
            out.discarded.is_empty(),
            "but not blamed as inconsistent either"
        );
    }

    #[test]
    fn bad_marking_skips_already_decided_contexts() {
        // A context that was already delivered (Consistent) can appear in
        // later inconsistencies; it must not be re-marked bad.
        let (mut pool, ids) = pool_with(3);
        let mut s = DropBad::new();
        s.on_addition(&mut pool, LogicalTime::ZERO, ids[0], &[]);
        assert!(s.on_use(&mut pool, LogicalTime::ZERO, ids[0]).delivered);
        // New context conflicts with the delivered one twice (two
        // constraints), then a third conflicts with it once.
        s.on_addition(
            &mut pool,
            LogicalTime::ZERO,
            ids[1],
            &[
                Inconsistency::pair("c1", ids[0], ids[1], LogicalTime::ZERO),
                Inconsistency::pair("c2", ids[0], ids[1], LogicalTime::ZERO),
            ],
        );
        s.on_addition(
            &mut pool,
            LogicalTime::ZERO,
            ids[2],
            &[pair(ids[1], ids[2])],
        );
        // Using ids[2]: ids[1] carries the largest count (3) -> bad; the
        // Consistent ids[0] is never touched.
        let out = s.on_use(&mut pool, LogicalTime::ZERO, ids[2]);
        assert!(out.delivered);
        assert_eq!(out.marked_bad, vec![ids[1]]);
        assert_eq!(pool.get(ids[0]).unwrap().state(), ContextState::Consistent);
    }

    #[test]
    fn reset_clears_delta() {
        let (_, _, mut s) = scenario_a();
        assert!(!s.tracked().is_empty());
        s.reset();
        assert!(s.tracked().is_empty());
    }

    #[test]
    fn defers_decision() {
        assert!(DropBad::new().defers_decision());
    }

    #[test]
    fn inconsistency_with_bad_member_dooms_nobody_else() {
        // Star: corrupted hub c (ids[0]) conflicts with leaves e1, e2.
        // Using e1 marks c bad and removes (c,e1); the residual (c,e2)
        // then ties c=1, e2=1 — but c being bad already settles it, so
        // e2 must deliver.
        let (mut pool, ids) = pool_with(3);
        let (c, e1, e2) = (ids[0], ids[1], ids[2]);
        let mut s = DropBad::new();
        s.on_addition(&mut pool, LogicalTime::ZERO, e1, &[pair(c, e1)]);
        s.on_addition(&mut pool, LogicalTime::ZERO, e2, &[pair(c, e2)]);
        assert!(s.on_use(&mut pool, LogicalTime::ZERO, e1).delivered);
        assert_eq!(pool.get(c).unwrap().state(), ContextState::Bad);
        assert!(
            s.on_use(&mut pool, LogicalTime::ZERO, e2).delivered,
            "bad member already resolves the residual inconsistency"
        );
        assert!(!s.on_use(&mut pool, LogicalTime::ZERO, c).delivered);
    }

    #[test]
    fn earliest_tiebreak_changes_bad_marking() {
        // Two contexts tie at max count within an inconsistency resolved
        // by a third, lower-count context... requires a 3-ary
        // inconsistency.
        let (mut pool, ids) = pool_with(3);
        let mut s = DropBad::with_tie_break(TieBreak::Earliest);
        let tri = Inconsistency::new("t", [ids[0], ids[1], ids[2]], LogicalTime::ZERO);
        s.on_addition(&mut pool, LogicalTime::ZERO, ids[2], &[tri]);
        // Give ids[1] and ids[2] an extra count each via another
        // inconsistency pair between them.
        s.on_addition(
            &mut pool,
            LogicalTime::ZERO,
            ids[2],
            &[pair(ids[1], ids[2])],
        );
        // Use ids[0] (count 1 < 2): delivered; culprits tie {1,2} -> earliest = ids[1].
        let out = s.on_use(&mut pool, LogicalTime::ZERO, ids[0]);
        assert!(out.delivered);
        assert_eq!(out.marked_bad, vec![ids[1]]);
    }
}

#[cfg(test)]
mod explanation_tests {
    use super::*;
    use ctxres_context::{Context, ContextKind};

    fn pair(a: ContextId, b: ContextId) -> Inconsistency {
        Inconsistency::pair("v", a, b, LogicalTime::ZERO)
    }

    #[test]
    fn every_discard_is_explained() {
        let mut pool = ContextPool::new();
        let ids: Vec<ContextId> = (0..5)
            .map(|_| pool.insert(Context::builder(ContextKind::new("location"), "p").build()))
            .collect();
        let mut s = DropBad::new().with_explanations();
        let t = LogicalTime::ZERO;
        // Scenario A: hub ids[2].
        s.on_addition(
            &mut pool,
            t,
            ids[2],
            &[pair(ids[0], ids[2]), pair(ids[1], ids[2])],
        );
        s.on_addition(&mut pool, t, ids[3], &[pair(ids[2], ids[3])]);
        s.on_addition(&mut pool, t, ids[4], &[pair(ids[2], ids[4])]);
        // Using a leaf delivers it and marks the hub bad (explained);
        // using the hub then discards it (explained as WasBad).
        assert!(s.on_use(&mut pool, t, ids[0]).delivered);
        assert!(!s.on_use(&mut pool, t, ids[2]).delivered);
        let log = s.explanations().unwrap();
        assert_eq!(
            log.for_context(ids[2]).count(),
            2,
            "marked bad, then discarded"
        );
        let rendered: Vec<String> = log.entries().iter().map(ToString::to_string).collect();
        assert!(
            rendered.iter().any(|e| e.contains("marked bad")),
            "{rendered:?}"
        );
        assert!(
            rendered.iter().any(|e| e.contains("previously marked bad")),
            "{rendered:?}"
        );
    }

    #[test]
    fn direct_discard_cites_the_inconsistency_and_count() {
        let mut pool = ContextPool::new();
        let ids: Vec<ContextId> = (0..3)
            .map(|_| pool.insert(Context::builder(ContextKind::new("location"), "p").build()))
            .collect();
        let mut s = DropBad::new().with_explanations();
        let t = LogicalTime::ZERO;
        s.on_addition(
            &mut pool,
            t,
            ids[2],
            &[pair(ids[0], ids[2]), pair(ids[1], ids[2])],
        );
        assert!(!s.on_use(&mut pool, t, ids[2]).delivered);
        let log = s.explanations().unwrap();
        let e = log.for_context(ids[2]).next().unwrap();
        assert!(matches!(
            &e.reason,
            crate::explain::DiscardReason::LargestCount { count: 2, .. }
        ));
    }

    #[test]
    fn explanations_off_by_default() {
        assert!(DropBad::new().explanations().is_none());
    }
}

//! The drop-latest baseline (paper §2.2, after Chomicki et al.).

use crate::inconsistency::Inconsistency;
use crate::strategy::{AdditionOutcome, ResolutionStrategy, UseOutcome};
use ctxres_context::{ContextId, ContextPool, ContextState, LogicalTime};

/// Drop-latest (`D-LAT`): whenever a new context causes inconsistencies,
/// discard the latest involved context — which, under incremental
/// detection, is the new context itself.
///
/// The strategy "assumes that the collection of existing contexts is
/// consistent, and that any new context is permitted to enter this
/// collection only if \[it\] does not cause any inconsistency" (§2.2).
/// Scenario B of the paper (Fig. 2) shows why this heuristic fails: a
/// corrupted context that slips in without conflicting immediately will
/// cause *correct* successors to be discarded instead.
#[derive(Debug, Clone, Default)]
pub struct DropLatest {
    _private: (),
}

impl DropLatest {
    /// Creates the strategy.
    pub fn new() -> Self {
        DropLatest::default()
    }
}

impl ResolutionStrategy for DropLatest {
    fn name(&self) -> &'static str {
        "d-lat"
    }

    fn on_addition(
        &mut self,
        pool: &mut ContextPool,
        _now: LogicalTime,
        id: ContextId,
        fresh: &[Inconsistency],
    ) -> AdditionOutcome {
        if fresh.is_empty() {
            let _ = pool.set_state(id, ContextState::Consistent);
            return AdditionOutcome {
                discarded: Vec::new(),
                accepted: true,
            };
        }
        let mut discarded = Vec::new();
        for inc in fresh {
            // The latest context of the inconsistency; with incremental
            // detection this is the newly added context.
            if let Some(latest) = inc.contexts().iter().max() {
                if pool.get(*latest).map(|c| c.state()) != Some(ContextState::Inconsistent) {
                    let _ = pool.discard(*latest);
                    discarded.push(*latest);
                }
            }
        }
        let accepted = !discarded.contains(&id);
        if accepted {
            let _ = pool.set_state(id, ContextState::Consistent);
        }
        AdditionOutcome {
            discarded,
            accepted,
        }
    }

    fn on_use(&mut self, pool: &mut ContextPool, now: LogicalTime, id: ContextId) -> UseOutcome {
        let delivered = pool
            .get(id)
            .map(|c| c.state().is_available() && c.is_live(now))
            .unwrap_or(false);
        UseOutcome {
            delivered,
            discarded: Vec::new(),
            marked_bad: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_context::{Context, ContextKind};

    fn pool_with(n: usize) -> (ContextPool, Vec<ContextId>) {
        let mut pool = ContextPool::new();
        let ids = (0..n)
            .map(|i| {
                pool.insert(
                    Context::builder(ContextKind::new("location"), "p")
                        .stamp(LogicalTime::new(i as u64))
                        .build(),
                )
            })
            .collect();
        (pool, ids)
    }

    #[test]
    fn clean_context_is_accepted() {
        let (mut pool, ids) = pool_with(1);
        let mut s = DropLatest::new();
        let out = s.on_addition(&mut pool, LogicalTime::ZERO, ids[0], &[]);
        assert!(out.accepted);
        assert_eq!(pool.get(ids[0]).unwrap().state(), ContextState::Consistent);
    }

    #[test]
    fn conflicting_new_context_is_discarded() {
        let (mut pool, ids) = pool_with(2);
        let mut s = DropLatest::new();
        s.on_addition(&mut pool, LogicalTime::ZERO, ids[0], &[]);
        let inc = Inconsistency::pair("v", ids[0], ids[1], LogicalTime::ZERO);
        let out = s.on_addition(&mut pool, LogicalTime::ZERO, ids[1], &[inc]);
        assert!(!out.accepted);
        assert_eq!(out.discarded, vec![ids[1]]);
        assert_eq!(
            pool.get(ids[1]).unwrap().state(),
            ContextState::Inconsistent
        );
        assert_eq!(pool.get(ids[0]).unwrap().state(), ContextState::Consistent);
    }

    #[test]
    fn scenario_b_discards_the_wrong_context() {
        // Paper Fig. 2, Scenario B: d3 (corrupted) enters cleanly; d4
        // (correct) then conflicts with d3 and is discarded instead.
        let (mut pool, ids) = pool_with(4);
        let mut s = DropLatest::new();
        for &id in &ids[..3] {
            assert!(
                s.on_addition(&mut pool, LogicalTime::ZERO, id, &[])
                    .accepted
            );
        }
        let inc = Inconsistency::pair("v", ids[2], ids[3], LogicalTime::ZERO);
        let out = s.on_addition(&mut pool, LogicalTime::ZERO, ids[3], &[inc]);
        assert_eq!(out.discarded, vec![ids[3]], "the correct d4 is lost");
        assert_eq!(pool.get(ids[2]).unwrap().state(), ContextState::Consistent);
    }

    #[test]
    fn use_delivers_only_available_contexts() {
        let (mut pool, ids) = pool_with(2);
        let mut s = DropLatest::new();
        s.on_addition(&mut pool, LogicalTime::ZERO, ids[0], &[]);
        let inc = Inconsistency::pair("v", ids[0], ids[1], LogicalTime::ZERO);
        s.on_addition(&mut pool, LogicalTime::ZERO, ids[1], &[inc]);
        assert!(s.on_use(&mut pool, LogicalTime::ZERO, ids[0]).delivered);
        assert!(!s.on_use(&mut pool, LogicalTime::ZERO, ids[1]).delivered);
    }

    #[test]
    fn does_not_defer() {
        assert!(!DropLatest::new().defers_decision());
    }
}

//! The artificial optimal strategy OPT-R (paper §4.1).

use crate::inconsistency::Inconsistency;
use crate::strategy::{AdditionOutcome, ResolutionStrategy, UseOutcome};
use ctxres_context::{ContextId, ContextPool, ContextState, LogicalTime};

/// OPT-R: an artificial strategy with "a specially designed oracle to
/// discard precisely each incorrect context" (§4.1).
///
/// It reads the workload generator's ground-truth tag
/// ([`ctxres_context::TruthTag`]) — something no practical strategy can
/// do — and therefore serves as the theoretical upper bound: the
/// experiments normalize every other strategy's metrics against OPT-R's
/// (its context-use and situation-activation rates define 100 %).
#[derive(Debug, Clone, Default)]
pub struct Oracle {
    _private: (),
}

impl Oracle {
    /// Creates the oracle strategy.
    pub fn new() -> Self {
        Oracle::default()
    }
}

impl ResolutionStrategy for Oracle {
    fn name(&self) -> &'static str {
        "opt-r"
    }

    fn on_addition(
        &mut self,
        pool: &mut ContextPool,
        _now: LogicalTime,
        id: ContextId,
        _fresh: &[Inconsistency],
    ) -> AdditionOutcome {
        let corrupted = pool
            .get(id)
            .map(|c| c.truth().is_corrupted())
            .unwrap_or(false);
        if corrupted {
            let _ = pool.set_state(id, ContextState::Inconsistent);
            AdditionOutcome {
                discarded: vec![id],
                accepted: false,
            }
        } else {
            let _ = pool.set_state(id, ContextState::Consistent);
            AdditionOutcome {
                discarded: Vec::new(),
                accepted: true,
            }
        }
    }

    fn on_use(&mut self, pool: &mut ContextPool, now: LogicalTime, id: ContextId) -> UseOutcome {
        let delivered = pool
            .get(id)
            .map(|c| c.state().is_available() && c.is_live(now))
            .unwrap_or(false);
        UseOutcome {
            delivered,
            discarded: Vec::new(),
            marked_bad: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_context::{Context, ContextKind, TruthTag};

    #[test]
    fn discards_exactly_the_corrupted_contexts() {
        let mut pool = ContextPool::new();
        let good = pool.insert(Context::builder(ContextKind::new("l"), "p").build());
        let bad = pool.insert(
            Context::builder(ContextKind::new("l"), "p")
                .truth(TruthTag::Corrupted)
                .build(),
        );
        let mut s = Oracle::new();
        assert!(
            s.on_addition(&mut pool, LogicalTime::ZERO, good, &[])
                .accepted
        );
        let out = s.on_addition(&mut pool, LogicalTime::ZERO, bad, &[]);
        assert!(!out.accepted);
        assert_eq!(out.discarded, vec![bad]);
        assert!(s.on_use(&mut pool, LogicalTime::ZERO, good).delivered);
        assert!(!s.on_use(&mut pool, LogicalTime::ZERO, bad).delivered);
    }

    #[test]
    fn ignores_reported_inconsistencies() {
        // Even amid inconsistencies, expected contexts are kept: the
        // oracle's decisions depend only on ground truth.
        let mut pool = ContextPool::new();
        let a = pool.insert(Context::builder(ContextKind::new("l"), "p").build());
        let b = pool.insert(Context::builder(ContextKind::new("l"), "p").build());
        let mut s = Oracle::new();
        s.on_addition(&mut pool, LogicalTime::ZERO, a, &[]);
        let inc = Inconsistency::pair("v", a, b, LogicalTime::ZERO);
        let out = s.on_addition(&mut pool, LogicalTime::ZERO, b, &[inc]);
        assert!(
            out.accepted,
            "expected context survives despite inconsistency"
        );
    }
}

//! The drop-all baseline (paper §2.3, after Bu et al.).

use crate::inconsistency::Inconsistency;
use crate::strategy::{AdditionOutcome, ResolutionStrategy, UseOutcome};
use ctxres_context::{ContextId, ContextPool, ContextState, LogicalTime};

/// Drop-all (`D-ALL`): discard *every* context involved in any fresh
/// inconsistency, "for safety".
///
/// The paper's experiments show this over-cautious heuristic performs
/// worst: it discards correct contexts wholesale (Fig. 3 — both `d2` and
/// `d3` in Scenario A; both `d3` and `d4` in Scenario B), starving
/// applications of contexts they need.
#[derive(Debug, Clone, Default)]
pub struct DropAll {
    _private: (),
}

impl DropAll {
    /// Creates the strategy.
    pub fn new() -> Self {
        DropAll::default()
    }
}

impl ResolutionStrategy for DropAll {
    fn name(&self) -> &'static str {
        "d-all"
    }

    fn on_addition(
        &mut self,
        pool: &mut ContextPool,
        _now: LogicalTime,
        id: ContextId,
        fresh: &[Inconsistency],
    ) -> AdditionOutcome {
        if fresh.is_empty() {
            let _ = pool.set_state(id, ContextState::Consistent);
            return AdditionOutcome {
                discarded: Vec::new(),
                accepted: true,
            };
        }
        let mut discarded = Vec::new();
        for inc in fresh {
            for cid in inc.contexts() {
                if pool.get(*cid).map(|c| c.state()) != Some(ContextState::Inconsistent) {
                    let _ = pool.discard(*cid);
                    discarded.push(*cid);
                }
            }
        }
        discarded.sort_unstable();
        discarded.dedup();
        let accepted = !discarded.contains(&id);
        if accepted {
            let _ = pool.set_state(id, ContextState::Consistent);
        }
        AdditionOutcome {
            discarded,
            accepted,
        }
    }

    fn on_use(&mut self, pool: &mut ContextPool, now: LogicalTime, id: ContextId) -> UseOutcome {
        let delivered = pool
            .get(id)
            .map(|c| c.state().is_available() && c.is_live(now))
            .unwrap_or(false);
        UseOutcome {
            delivered,
            discarded: Vec::new(),
            marked_bad: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_context::{Context, ContextKind};

    fn pool_with(n: usize) -> (ContextPool, Vec<ContextId>) {
        let mut pool = ContextPool::new();
        let ids = (0..n)
            .map(|i| {
                pool.insert(
                    Context::builder(ContextKind::new("location"), "p")
                        .stamp(LogicalTime::new(i as u64))
                        .build(),
                )
            })
            .collect();
        (pool, ids)
    }

    #[test]
    fn discards_every_involved_context() {
        // Paper Fig. 3, Scenario A: inconsistency (d2, d3) discards both,
        // losing the correct d2.
        let (mut pool, ids) = pool_with(3);
        let mut s = DropAll::new();
        s.on_addition(&mut pool, LogicalTime::ZERO, ids[0], &[]);
        s.on_addition(&mut pool, LogicalTime::ZERO, ids[1], &[]);
        let inc = Inconsistency::pair("v", ids[1], ids[2], LogicalTime::ZERO);
        let out = s.on_addition(&mut pool, LogicalTime::ZERO, ids[2], &[inc]);
        assert!(!out.accepted);
        assert_eq!(out.discarded, vec![ids[1], ids[2]]);
        assert_eq!(
            pool.get(ids[1]).unwrap().state(),
            ContextState::Inconsistent
        );
        assert_eq!(
            pool.get(ids[2]).unwrap().state(),
            ContextState::Inconsistent
        );
        assert_eq!(pool.get(ids[0]).unwrap().state(), ContextState::Consistent);
    }

    #[test]
    fn overlapping_inconsistencies_discard_union_once() {
        let (mut pool, ids) = pool_with(3);
        let mut s = DropAll::new();
        s.on_addition(&mut pool, LogicalTime::ZERO, ids[0], &[]);
        s.on_addition(&mut pool, LogicalTime::ZERO, ids[1], &[]);
        let fresh = vec![
            Inconsistency::pair("v", ids[0], ids[2], LogicalTime::ZERO),
            Inconsistency::pair("v", ids[1], ids[2], LogicalTime::ZERO),
        ];
        let out = s.on_addition(&mut pool, LogicalTime::ZERO, ids[2], &fresh);
        assert_eq!(out.discarded.len(), 3);
    }

    #[test]
    fn clean_context_is_accepted() {
        let (mut pool, ids) = pool_with(1);
        let mut s = DropAll::new();
        assert!(
            s.on_addition(&mut pool, LogicalTime::ZERO, ids[0], &[])
                .accepted
        );
    }

    #[test]
    fn discarded_contexts_not_delivered_on_use() {
        let (mut pool, ids) = pool_with(2);
        let mut s = DropAll::new();
        s.on_addition(&mut pool, LogicalTime::ZERO, ids[0], &[]);
        let inc = Inconsistency::pair("v", ids[0], ids[1], LogicalTime::ZERO);
        s.on_addition(&mut pool, LogicalTime::ZERO, ids[1], &[inc]);
        assert!(!s.on_use(&mut pool, LogicalTime::ZERO, ids[0]).delivered);
        assert!(!s.on_use(&mut pool, LogicalTime::ZERO, ids[1]).delivered);
    }
}

//! The drop-random baseline (paper §2.3, after Chomicki et al.'s
//! "randomly discarding some actions").

use crate::inconsistency::Inconsistency;
use crate::strategy::{AdditionOutcome, ResolutionStrategy, UseOutcome};
use ctxres_context::{ContextId, ContextPool, ContextState, LogicalTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Drop-random (`D-RAND`): resolve each fresh inconsistency by
/// discarding one uniformly chosen involved context.
///
/// The paper notes this strategy "has unreliable results (depending on
/// random choices)" (§2.3); it is included for completeness and for the
/// ablation benches. Deterministic given its seed.
#[derive(Debug, Clone)]
pub struct DropRandom {
    rng: StdRng,
}

impl DropRandom {
    /// Creates the strategy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        DropRandom {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl ResolutionStrategy for DropRandom {
    fn name(&self) -> &'static str {
        "d-rand"
    }

    fn on_addition(
        &mut self,
        pool: &mut ContextPool,
        _now: LogicalTime,
        id: ContextId,
        fresh: &[Inconsistency],
    ) -> AdditionOutcome {
        let mut discarded = Vec::new();
        for inc in fresh {
            // Consider only members still standing; a previous pick may
            // already have resolved this inconsistency.
            let standing: Vec<ContextId> = inc
                .contexts()
                .iter()
                .copied()
                .filter(|cid| pool.get(*cid).map(|c| c.state()) != Some(ContextState::Inconsistent))
                .collect();
            if standing.len() < inc.arity() {
                // A previous pick already discarded a member, which
                // resolved this inconsistency too.
                continue;
            }
            let victim = standing[self.rng.gen_range(0..standing.len())];
            let _ = pool.discard(victim);
            discarded.push(victim);
        }
        discarded.sort_unstable();
        discarded.dedup();
        let accepted = !discarded.contains(&id);
        if accepted && pool.get(id).map(|c| c.state()) == Some(ContextState::Undecided) {
            let _ = pool.set_state(id, ContextState::Consistent);
        }
        AdditionOutcome {
            discarded,
            accepted,
        }
    }

    fn on_use(&mut self, pool: &mut ContextPool, now: LogicalTime, id: ContextId) -> UseOutcome {
        let delivered = pool
            .get(id)
            .map(|c| c.state().is_available() && c.is_live(now))
            .unwrap_or(false);
        UseOutcome {
            delivered,
            discarded: Vec::new(),
            marked_bad: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_context::{Context, ContextKind};

    fn pool_with(n: usize) -> (ContextPool, Vec<ContextId>) {
        let mut pool = ContextPool::new();
        let ids = (0..n)
            .map(|i| {
                pool.insert(
                    Context::builder(ContextKind::new("location"), "p")
                        .stamp(LogicalTime::new(i as u64))
                        .build(),
                )
            })
            .collect();
        (pool, ids)
    }

    #[test]
    fn discards_exactly_one_per_inconsistency() {
        let (mut pool, ids) = pool_with(2);
        let mut s = DropRandom::new(7);
        s.on_addition(&mut pool, LogicalTime::ZERO, ids[0], &[]);
        let inc = Inconsistency::pair("v", ids[0], ids[1], LogicalTime::ZERO);
        let out = s.on_addition(&mut pool, LogicalTime::ZERO, ids[1], &[inc]);
        assert_eq!(out.discarded.len(), 1);
        let survivor = if out.discarded[0] == ids[0] {
            ids[1]
        } else {
            ids[0]
        };
        assert_ne!(
            pool.get(survivor).unwrap().state(),
            ContextState::Inconsistent
        );
    }

    #[test]
    fn same_seed_same_choices() {
        let run = |seed: u64| {
            let (mut pool, ids) = pool_with(2);
            let mut s = DropRandom::new(seed);
            s.on_addition(&mut pool, LogicalTime::ZERO, ids[0], &[]);
            let inc = Inconsistency::pair("v", ids[0], ids[1], LogicalTime::ZERO);
            s.on_addition(&mut pool, LogicalTime::ZERO, ids[1], &[inc])
                .discarded
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn resolved_inconsistency_not_double_punished() {
        // Two inconsistencies sharing a context: if the shared context is
        // discarded first, the second inconsistency may already be gone.
        let (mut pool, ids) = pool_with(3);
        let mut s = DropRandom::new(1);
        s.on_addition(&mut pool, LogicalTime::ZERO, ids[0], &[]);
        s.on_addition(&mut pool, LogicalTime::ZERO, ids[1], &[]);
        let fresh = vec![
            Inconsistency::pair("v", ids[0], ids[2], LogicalTime::ZERO),
            Inconsistency::pair("v", ids[1], ids[2], LogicalTime::ZERO),
        ];
        let out = s.on_addition(&mut pool, LogicalTime::ZERO, ids[2], &fresh);
        assert!(out.discarded.len() <= 2);
        // Never all three.
        assert!(out.discarded.len() < 3);
    }
}

//! Impact-aware drop-bad — the paper's named future work (§5.1, §7).
//!
//! §5.1: "when the tie case comes … one needs to carefully examine
//! discarding which particular context among them would cause less
//! impact on context-aware applications. Such examination would
//! potentially bring additional benefits to this strategy." §7 repeats
//! the call: resolution "should be enhanced with the effort of
//! estimating the impact of a certain resolution strategy on
//! applications". (The authors' own follow-up is their ESEC/FSE'07
//! impact-oriented resolution poster.)
//!
//! This module implements that enhancement: an [`ImpactProfile`] derived
//! statically from the application's situations scores how much a
//! context matters to them, and [`ImpactAwareDropBad`] uses the score to
//! break count-value ties — among equally suspicious contexts, discard
//! the one applications will miss least.

use crate::inconsistency::Inconsistency;
use crate::strategies::DropBad;
use crate::strategy::{AdditionOutcome, ResolutionStrategy, TieBreak, UseOutcome};
use ctxres_context::{Context, ContextId, ContextKind, ContextPool, ContextState, LogicalTime};
use std::collections::BTreeSet;
use std::fmt;

/// A static profile of what the application's situations care about:
/// which context kinds they quantify over and which specific subjects
/// they name.
///
/// Built once from the deployed situations (any formula source works —
/// the profile only needs `(kind, subjects)` facts, so it does not
/// depend on the constraint crate).
#[derive(Debug, Clone, Default)]
pub struct ImpactProfile {
    kinds: BTreeSet<ContextKind>,
    subjects: BTreeSet<(ContextKind, String)>,
}

impl ImpactProfile {
    /// Creates an empty profile (everything scores zero).
    pub fn new() -> Self {
        ImpactProfile::default()
    }

    /// Records that some situation quantifies over `kind`.
    pub fn watch_kind(&mut self, kind: ContextKind) -> &mut Self {
        self.kinds.insert(kind);
        self
    }

    /// Records that some situation names `subject` of `kind`
    /// specifically (e.g. `subject_eq(b, "peter")`).
    pub fn watch_subject(&mut self, kind: ContextKind, subject: &str) -> &mut Self {
        self.subjects.insert((kind.clone(), subject.to_owned()));
        self.kinds.insert(kind);
        self
    }

    /// How much the application would miss this context: 0 = no
    /// situation can see it, 1 = its kind feeds situations, 2 = a
    /// situation names its subject explicitly.
    pub fn impact_of(&self, ctx: &Context) -> u32 {
        if self
            .subjects
            .contains(&(ctx.kind().clone(), ctx.subject().to_owned()))
        {
            2
        } else if self.kinds.contains(ctx.kind()) {
            1
        } else {
            0
        }
    }
}

/// Drop-bad with impact-aware tie resolution.
///
/// Delegates the count-value machinery to the inner [`DropBad`] (with
/// the `BlamePeer` tie policy so ties surface as a *choice* of which
/// rival to mark bad), but picks the rival with the **lowest impact
/// score**; ties on impact fall back to [`TieBreak`].
pub struct ImpactAwareDropBad {
    inner: DropBad,
    profile: ImpactProfile,
    tie: TieBreak,
}

impl fmt::Debug for ImpactAwareDropBad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ImpactAwareDropBad")
            .field("profile", &self.profile)
            .finish()
    }
}

impl ImpactAwareDropBad {
    /// Creates the strategy with the given application profile.
    pub fn new(profile: ImpactProfile) -> Self {
        ImpactAwareDropBad {
            inner: DropBad::with_tie_policy(crate::strategy::TiePolicy::DoomUsed),
            profile,
            tie: TieBreak::Latest,
        }
    }

    /// The profile in use.
    pub fn profile(&self) -> &ImpactProfile {
        &self.profile
    }

    /// Among the contexts of a resolved inconsistency tied at the
    /// maximal count value, the one whose discard hurts least.
    fn cheapest(&self, pool: &ContextPool, tied: &[ContextId]) -> Option<ContextId> {
        let min_impact = tied
            .iter()
            .filter_map(|id| pool.get(*id).map(|c| self.profile.impact_of(c)))
            .min()?;
        let cheapest: Vec<ContextId> = tied
            .iter()
            .copied()
            .filter(|id| pool.get(*id).map(|c| self.profile.impact_of(c)) == Some(min_impact))
            .collect();
        self.tie.pick(&cheapest)
    }
}

impl ResolutionStrategy for ImpactAwareDropBad {
    fn name(&self) -> &'static str {
        "d-bad-impact"
    }

    fn defers_decision(&self) -> bool {
        true
    }

    fn on_addition(
        &mut self,
        pool: &mut ContextPool,
        now: LogicalTime,
        id: ContextId,
        fresh: &[Inconsistency],
    ) -> AdditionOutcome {
        self.inner.on_addition(pool, now, id, fresh)
    }

    fn on_use(&mut self, pool: &mut ContextPool, now: LogicalTime, id: ContextId) -> UseOutcome {
        // Identify the tie candidates *before* delegating: the ties the
        // inner strategy would resolve by dooming `id` are the ones we
        // can re-route toward a cheaper victim.
        let candidates: Vec<(Inconsistency, Vec<ContextId>)> = self
            .inner
            .tracked()
            .involving(id)
            .map(|inc| (inc.clone(), self.inner.tracked().max_count_members(inc)))
            .filter(|(_, members)| members.len() > 1 && members.contains(&id))
            .collect();

        if candidates.is_empty() {
            return self.inner.on_use(pool, now, id);
        }

        // For each tied inconsistency, check whether some rival is
        // strictly cheaper to lose than `id`.
        let my_impact = pool.get(id).map(|c| self.profile.impact_of(c)).unwrap_or(0);
        let mut sacrifices: Vec<ContextId> = Vec::new();
        for (_, members) in &candidates {
            let rivals: Vec<ContextId> = members
                .iter()
                .copied()
                .filter(|m| {
                    *m != id && pool.get(*m).map(|c| c.state()) == Some(ContextState::Undecided)
                })
                .collect();
            if let Some(cheap) = self.cheapest(pool, &rivals) {
                let cheap_impact = pool
                    .get(cheap)
                    .map(|c| self.profile.impact_of(c))
                    .unwrap_or(0);
                if cheap_impact < my_impact {
                    sacrifices.push(cheap);
                }
            }
        }
        sacrifices.sort_unstable();
        sacrifices.dedup();

        // Mark the cheaper victims bad *first*: the inner strategy then
        // sees their inconsistencies as already-resolved and delivers
        // `id` (its bad-member rule), exactly the impact-aware outcome.
        let mut pre_marked = Vec::new();
        for victim in sacrifices {
            if pool.get(victim).map(|c| c.state()) == Some(ContextState::Undecided)
                && pool.set_state(victim, ContextState::Bad).is_ok()
            {
                pre_marked.push(victim);
            }
        }
        let mut outcome = self.inner.on_use(pool, now, id);
        outcome.marked_bad.extend(pre_marked);
        outcome.marked_bad.sort_unstable();
        outcome.marked_bad.dedup();
        outcome
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_pool() -> (ContextPool, ContextId, ContextId) {
        let mut pool = ContextPool::new();
        // `badge` contexts feed situations; `aux` contexts do not.
        let watched = pool.insert(Context::builder(ContextKind::new("badge"), "peter").build());
        let unwatched = pool.insert(Context::builder(ContextKind::new("aux"), "x").build());
        (pool, watched, unwatched)
    }

    fn profile() -> ImpactProfile {
        let mut p = ImpactProfile::new();
        p.watch_subject(ContextKind::new("badge"), "peter");
        p
    }

    #[test]
    fn impact_scores_rank_subject_kind_other() {
        let p = profile();
        let peter = Context::builder(ContextKind::new("badge"), "peter").build();
        let mary = Context::builder(ContextKind::new("badge"), "mary").build();
        let aux = Context::builder(ContextKind::new("aux"), "x").build();
        assert_eq!(p.impact_of(&peter), 2);
        assert_eq!(p.impact_of(&mary), 1);
        assert_eq!(p.impact_of(&aux), 0);
    }

    #[test]
    fn tie_sacrifices_the_unwatched_context() {
        // (watched, unwatched) tie at count 1. Plain drop-bad would doom
        // whichever is used first; impact-aware dooms the unwatched one
        // even when the watched context is used first.
        let (mut pool, watched, unwatched) = ctx_pool();
        let mut s = ImpactAwareDropBad::new(profile());
        let now = LogicalTime::ZERO;
        s.on_addition(
            &mut pool,
            now,
            unwatched,
            &[Inconsistency::pair("c", watched, unwatched, now)],
        );
        let out = s.on_use(&mut pool, now, watched);
        assert!(out.delivered, "the situation-relevant context survives");
        assert_eq!(out.marked_bad, vec![unwatched]);
        assert!(!s.on_use(&mut pool, now, unwatched).delivered);
    }

    #[test]
    fn equal_impact_behaves_like_plain_drop_bad() {
        let mut pool = ContextPool::new();
        let a = pool.insert(Context::builder(ContextKind::new("badge"), "mary").build());
        let b = pool.insert(Context::builder(ContextKind::new("badge"), "john").build());
        let mut s = ImpactAwareDropBad::new(profile());
        let now = LogicalTime::ZERO;
        s.on_addition(&mut pool, now, b, &[Inconsistency::pair("c", a, b, now)]);
        // Both impact 1: no sacrifice, the inner DoomUsed policy rules.
        let out = s.on_use(&mut pool, now, a);
        assert!(!out.delivered);
        assert_eq!(out.discarded, vec![a]);
    }

    #[test]
    fn strict_max_still_doomed_regardless_of_impact() {
        // A watched context that clearly dominates the counts is still
        // discarded: impact only arbitrates ties.
        let (mut pool, watched, unwatched) = ctx_pool();
        let extra = pool.insert(Context::builder(ContextKind::new("aux"), "y").build());
        let mut s = ImpactAwareDropBad::new(profile());
        let now = LogicalTime::ZERO;
        s.on_addition(
            &mut pool,
            now,
            watched,
            &[Inconsistency::pair("c", watched, unwatched, now)],
        );
        s.on_addition(
            &mut pool,
            now,
            extra,
            &[Inconsistency::pair("c2", watched, extra, now)],
        );
        let out = s.on_use(&mut pool, now, watched);
        assert!(!out.delivered);
        assert_eq!(out.discarded, vec![watched]);
    }

    #[test]
    fn defers_and_resets() {
        let mut s = ImpactAwareDropBad::new(ImpactProfile::new());
        assert!(s.defers_decision());
        assert_eq!(s.name(), "d-bad-impact");
        s.reset();
    }
}

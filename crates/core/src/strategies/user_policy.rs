//! The user-specified policy baseline (paper §2.3, after Ranganathan et
//! al. and Insuk et al.).

use crate::inconsistency::Inconsistency;
use crate::strategy::{AdditionOutcome, ResolutionStrategy, TieBreak, UseOutcome};
use ctxres_context::{ContextId, ContextKind, ContextPool, ContextState, LogicalTime};
use std::collections::HashMap;

/// A user preference: contexts of `kind` have trust `priority` (higher
/// is more trusted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyRule {
    /// The context kind the rule applies to.
    pub kind: ContextKind,
    /// Trust level; inconsistencies discard their least-trusted member.
    pub priority: i32,
}

/// User-policy resolution (`D-POL`): each fresh inconsistency discards
/// its *least trusted* member according to static, user-authored
/// priorities ("rule priorities to follow human preferences",
/// Ranganathan et al.). Ties break by [`TieBreak`].
///
/// The paper classifies this with the unreliable baselines: static
/// preferences cannot know which particular context is corrupted.
#[derive(Debug, Clone)]
pub struct UserPolicy {
    priorities: HashMap<ContextKind, i32>,
    tie: TieBreak,
}

impl UserPolicy {
    /// Creates a policy from rules; unlisted kinds get priority 0.
    pub fn new(rules: impl IntoIterator<Item = PolicyRule>, tie: TieBreak) -> Self {
        UserPolicy {
            priorities: rules.into_iter().map(|r| (r.kind, r.priority)).collect(),
            tie,
        }
    }

    fn priority_of(&self, pool: &ContextPool, id: ContextId) -> i32 {
        pool.get(id)
            .and_then(|c| self.priorities.get(c.kind()).copied())
            .unwrap_or(0)
    }
}

impl Default for UserPolicy {
    fn default() -> Self {
        UserPolicy::new([], TieBreak::Latest)
    }
}

impl ResolutionStrategy for UserPolicy {
    fn name(&self) -> &'static str {
        "d-pol"
    }

    fn on_addition(
        &mut self,
        pool: &mut ContextPool,
        _now: LogicalTime,
        id: ContextId,
        fresh: &[Inconsistency],
    ) -> AdditionOutcome {
        let mut discarded = Vec::new();
        for inc in fresh {
            let standing: Vec<ContextId> = inc
                .contexts()
                .iter()
                .copied()
                .filter(|cid| pool.get(*cid).map(|c| c.state()) != Some(ContextState::Inconsistent))
                .collect();
            if standing.len() < inc.arity() {
                continue; // already resolved by an earlier discard
            }
            let min_priority = standing
                .iter()
                .map(|cid| self.priority_of(pool, *cid))
                .min()
                .unwrap_or(0);
            let tied: Vec<ContextId> = standing
                .into_iter()
                .filter(|cid| self.priority_of(pool, *cid) == min_priority)
                .collect();
            if let Some(victim) = self.tie.pick(&tied) {
                let _ = pool.discard(victim);
                discarded.push(victim);
            }
        }
        discarded.sort_unstable();
        discarded.dedup();
        let accepted = !discarded.contains(&id);
        if accepted && pool.get(id).map(|c| c.state()) == Some(ContextState::Undecided) {
            let _ = pool.set_state(id, ContextState::Consistent);
        }
        AdditionOutcome {
            discarded,
            accepted,
        }
    }

    fn on_use(&mut self, pool: &mut ContextPool, now: LogicalTime, id: ContextId) -> UseOutcome {
        let delivered = pool
            .get(id)
            .map(|c| c.state().is_available() && c.is_live(now))
            .unwrap_or(false);
        UseOutcome {
            delivered,
            discarded: Vec::new(),
            marked_bad: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_context::Context;

    fn ctx(pool: &mut ContextPool, kind: &str, t: u64) -> ContextId {
        pool.insert(
            Context::builder(ContextKind::new(kind), "p")
                .stamp(LogicalTime::new(t))
                .build(),
        )
    }

    #[test]
    fn lower_priority_kind_is_sacrificed() {
        let mut pool = ContextPool::new();
        let loc = ctx(&mut pool, "location", 0);
        let rfid = ctx(&mut pool, "rfid", 1);
        let mut s = UserPolicy::new(
            [
                PolicyRule {
                    kind: ContextKind::new("location"),
                    priority: 10,
                },
                PolicyRule {
                    kind: ContextKind::new("rfid"),
                    priority: 1,
                },
            ],
            TieBreak::Latest,
        );
        s.on_addition(&mut pool, LogicalTime::ZERO, loc, &[]);
        let inc = Inconsistency::pair("x", loc, rfid, LogicalTime::ZERO);
        let out = s.on_addition(
            &mut pool,
            LogicalTime::ZERO,
            rfid,
            &inc.clone().into_iter_vec(),
        );
        assert_eq!(out.discarded, vec![rfid]);
        assert_ne!(pool.get(loc).unwrap().state(), ContextState::Inconsistent);
    }

    // Small helper so the test above reads naturally.
    trait IntoIterVec {
        fn into_iter_vec(self) -> Vec<Inconsistency>;
    }
    impl IntoIterVec for Inconsistency {
        fn into_iter_vec(self) -> Vec<Inconsistency> {
            vec![self]
        }
    }

    #[test]
    fn equal_priority_falls_back_to_tiebreak() {
        let mut pool = ContextPool::new();
        let a = ctx(&mut pool, "location", 0);
        let b = ctx(&mut pool, "location", 1);
        let mut latest = UserPolicy::new([], TieBreak::Latest);
        latest.on_addition(&mut pool, LogicalTime::ZERO, a, &[]);
        let inc = Inconsistency::pair("x", a, b, LogicalTime::ZERO);
        let out = latest.on_addition(&mut pool, LogicalTime::ZERO, b, &[inc]);
        assert_eq!(out.discarded, vec![b]);
    }

    #[test]
    fn earliest_tiebreak_discards_oldest() {
        let mut pool = ContextPool::new();
        let a = ctx(&mut pool, "location", 0);
        let b = ctx(&mut pool, "location", 1);
        let mut s = UserPolicy::new([], TieBreak::Earliest);
        s.on_addition(&mut pool, LogicalTime::ZERO, a, &[]);
        let inc = Inconsistency::pair("x", a, b, LogicalTime::ZERO);
        let out = s.on_addition(&mut pool, LogicalTime::ZERO, b, &[inc]);
        assert_eq!(out.discarded, vec![a]);
        assert!(out.accepted);
    }
}

//! A deterministic head-to-head harness for strategies.
//!
//! Given one *script* — an interleaving of addition changes (with their
//! detected inconsistencies) and use requests — the harness replays it
//! against two strategies on independent pools and reports the first
//! step where their externally visible behaviour diverges. Exactly the
//! tool one reaches for when asking "where does drop-bad start doing
//! something drop-latest would not?" (and what this repository's own
//! calibration debugging was done with, mechanized).

use crate::inconsistency::Inconsistency;
use crate::strategy::ResolutionStrategy;
use ctxres_context::{Context, ContextId, ContextKind, ContextPool, LogicalTime};
use std::collections::BTreeSet;
use std::fmt;

/// One scripted event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptStep {
    /// A context is added; detection reported these inconsistencies
    /// (indices refer to previously added contexts; the new context is
    /// implicitly a member).
    Add {
        /// Indices of earlier contexts this one conflicts with.
        conflicts: Vec<usize>,
    },
    /// The application uses the `index`-th added context.
    Use(usize),
}

/// What a strategy visibly did at one step.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StepOutcome {
    /// Contexts discarded at this step.
    pub discarded: BTreeSet<ContextId>,
    /// Whether a `Use` step delivered its context.
    pub delivered: Option<bool>,
}

/// The first step where two strategies disagreed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Zero-based script position.
    pub step: usize,
    /// The step that diverged.
    pub at: ScriptStep,
    /// First strategy's outcome.
    pub left: StepOutcome,
    /// Second strategy's outcome.
    pub right: StepOutcome,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "step {} ({:?}): left {:?} vs right {:?}",
            self.step, self.at, self.left, self.right
        )
    }
}

fn replay(strategy: &mut dyn ResolutionStrategy, script: &[ScriptStep]) -> Vec<StepOutcome> {
    let mut pool = ContextPool::new();
    let mut ids: Vec<ContextId> = Vec::new();
    let now = LogicalTime::ZERO;
    let mut outcomes = Vec::with_capacity(script.len());
    for step in script {
        let outcome = match step {
            ScriptStep::Add { conflicts } => {
                let id = pool.insert(Context::builder(ContextKind::new("k"), "s").build());
                let fresh: Vec<Inconsistency> = conflicts
                    .iter()
                    .filter_map(|j| ids.get(*j))
                    .map(|earlier| Inconsistency::pair("c", *earlier, id, now))
                    .collect();
                let out = strategy.on_addition(&mut pool, now, id, &fresh);
                ids.push(id);
                StepOutcome {
                    discarded: out.discarded.into_iter().collect(),
                    delivered: None,
                }
            }
            ScriptStep::Use(index) => match ids.get(*index) {
                Some(id) => {
                    let out = strategy.on_use(&mut pool, now, *id);
                    StepOutcome {
                        discarded: out.discarded.into_iter().collect(),
                        delivered: Some(out.delivered),
                    }
                }
                None => StepOutcome::default(),
            },
        };
        outcomes.push(outcome);
    }
    outcomes
}

/// Replays `script` against both strategies and returns the first
/// divergence, or `None` when they behave identically throughout.
pub fn first_divergence(
    left: &mut dyn ResolutionStrategy,
    right: &mut dyn ResolutionStrategy,
    script: &[ScriptStep],
) -> Option<Divergence> {
    let a = replay(left, script);
    let b = replay(right, script);
    a.into_iter()
        .zip(b)
        .enumerate()
        .find(|(_, (l, r))| l != r)
        .map(|(step, (left, right))| Divergence {
            step,
            at: script[step].clone(),
            left,
            right,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{DropAll, DropBad, DropLatest};

    /// The paper's Scenario B as a script: d3 (index 2) slips in
    /// cleanly, d4 (index 3) conflicts with it, d5 (index 4) conflicts
    /// with it too (gap-2 refinement); contexts are then used in order.
    fn scenario_b() -> Vec<ScriptStep> {
        vec![
            ScriptStep::Add { conflicts: vec![] },  // d1
            ScriptStep::Add { conflicts: vec![] },  // d2
            ScriptStep::Add { conflicts: vec![] },  // d3 (corrupted, undetected)
            ScriptStep::Add { conflicts: vec![2] }, // d4 vs d3
            ScriptStep::Add { conflicts: vec![2] }, // d5 vs d3
            ScriptStep::Use(0),
            ScriptStep::Use(1),
            ScriptStep::Use(2),
            ScriptStep::Use(3),
            ScriptStep::Use(4),
        ]
    }

    #[test]
    fn identical_strategies_never_diverge() {
        let mut a = DropBad::new();
        let mut b = DropBad::new();
        assert_eq!(first_divergence(&mut a, &mut b, &scenario_b()), None);
    }

    #[test]
    fn drop_bad_and_drop_latest_diverge_where_the_paper_says() {
        let mut bad = DropBad::new();
        let mut lat = DropLatest::new();
        let d = first_divergence(&mut bad, &mut lat, &scenario_b()).expect("must diverge");
        // Drop-latest acts at d4's addition (discards d4); drop-bad
        // defers — the divergence is exactly that addition step.
        assert_eq!(d.step, 3);
        assert!(d.left.discarded.is_empty(), "drop-bad defers");
        assert_eq!(d.right.discarded.len(), 1, "drop-latest discards d4");
    }

    #[test]
    fn drop_all_diverges_from_drop_latest_on_the_same_step() {
        let mut all = DropAll::new();
        let mut lat = DropLatest::new();
        let d = first_divergence(&mut all, &mut lat, &scenario_b()).expect("must diverge");
        assert_eq!(d.step, 3);
        assert_eq!(d.left.discarded.len(), 2, "drop-all discards both");
        assert!(d.to_string().contains("step 3"));
    }

    #[test]
    fn use_of_unknown_index_is_a_noop() {
        let mut a = DropBad::new();
        let mut b = DropLatest::new();
        let script = vec![ScriptStep::Use(7)];
        assert_eq!(first_divergence(&mut a, &mut b, &script), None);
    }
}

//! Checkable forms of the paper's heuristic rules (§3.4).
//!
//! The drop-bad strategy's reliability rests on two heuristic rules over
//! a set of inconsistencies and the (unknowable in practice) ground
//! truth partition of contexts into *corrupted* and *expected*:
//!
//! * **Rule 1** — a set of expected contexts does not form any
//!   inconsistency (consistency constraints never raise false reports);
//! * **Rule 2** — in every inconsistency, *every* corrupted context has a
//!   larger count value than *any* expected context in that set;
//! * **Rule 2′** (relaxed) — in every inconsistency, *at least one*
//!   corrupted context has a larger count value than any expected one.
//!
//! Theorems 1 and 2: with Rules 1+2 (resp. 1+2′) holding, every context
//! drop-bad discards is corrupted. The property tests in
//! `tests/theorems.rs` machine-check this; the §5.2 case study measures
//! how often the rules hold on Landmarc traces (paper: Rule 1 always,
//! Rule 2′ in 91.7 % of cases).

use crate::inconsistency::Inconsistency;
use crate::tracked::CountMap;
use ctxres_context::ContextId;
use std::collections::BTreeMap;

/// Computes count values over an arbitrary inconsistency collection
/// (outside any [`crate::TrackedSet`] bookkeeping).
pub fn counts_of(incs: &[Inconsistency]) -> CountMap {
    let mut tracked = crate::tracked::TrackedSet::new();
    for inc in incs {
        tracked.add(inc.clone());
    }
    tracked.counts().clone()
}

/// Rule 1: no inconsistency consists purely of expected contexts.
///
/// `is_corrupted` is the ground-truth oracle.
///
/// ```
/// use ctxres_core::theory::rule1_holds;
/// use ctxres_core::Inconsistency;
/// use ctxres_context::{ContextId, LogicalTime};
///
/// let d2 = ContextId::from_raw(2);
/// let d3 = ContextId::from_raw(3); // corrupted
/// let incs = vec![Inconsistency::pair("v", d2, d3, LogicalTime::ZERO)];
/// assert!(rule1_holds(&incs, |id| id == d3));
/// assert!(!rule1_holds(&incs, |_| false), "no corrupted member anywhere");
/// ```
pub fn rule1_holds(incs: &[Inconsistency], is_corrupted: impl Fn(ContextId) -> bool) -> bool {
    incs.iter()
        .all(|inc| inc.contexts().iter().any(|id| is_corrupted(*id)))
}

/// Rule 2: in every inconsistency, every corrupted context's count
/// exceeds every expected context's count.
pub fn rule2_holds(incs: &[Inconsistency], is_corrupted: impl Fn(ContextId) -> bool) -> bool {
    let counts = counts_of(incs);
    incs.iter().all(|inc| {
        let max_expected = inc
            .contexts()
            .iter()
            .filter(|id| !is_corrupted(**id))
            .map(|id| counts.get(*id))
            .max();
        match max_expected {
            None => true, // all corrupted: vacuously fine
            Some(me) => inc
                .contexts()
                .iter()
                .filter(|id| is_corrupted(**id))
                .all(|id| counts.get(*id) > me),
        }
    })
}

/// Rule 2′ (relaxed): in every inconsistency, at least one corrupted
/// context's count exceeds every expected context's count.
pub fn rule2_relaxed_holds(
    incs: &[Inconsistency],
    is_corrupted: impl Fn(ContextId) -> bool,
) -> bool {
    let counts = counts_of(incs);
    incs.iter().all(|inc| {
        let max_expected = inc
            .contexts()
            .iter()
            .filter(|id| !is_corrupted(**id))
            .map(|id| counts.get(*id))
            .max();
        match max_expected {
            None => true,
            Some(me) => inc
                .contexts()
                .iter()
                .filter(|id| is_corrupted(**id))
                .any(|id| counts.get(*id) > me),
        }
    })
}

/// Per-inconsistency rule evaluation for the §5.2 case-study monitor:
/// returns, for each inconsistency, whether Rule 2 and Rule 2′ hold on
/// it (Rule 1 is a property of the detection, reported separately).
pub fn rule_report(
    incs: &[Inconsistency],
    is_corrupted: impl Fn(ContextId) -> bool,
) -> Vec<RuleVerdict> {
    let counts = counts_of(incs);
    incs.iter()
        .map(|inc| {
            let max_expected = inc
                .contexts()
                .iter()
                .filter(|id| !is_corrupted(**id))
                .map(|id| counts.get(*id))
                .max();
            let (rule2, rule2_relaxed) = match max_expected {
                None => (true, true),
                Some(me) => {
                    let corrupted_counts: Vec<usize> = inc
                        .contexts()
                        .iter()
                        .filter(|id| is_corrupted(**id))
                        .map(|id| counts.get(*id))
                        .collect();
                    (
                        !corrupted_counts.is_empty() && corrupted_counts.iter().all(|c| *c > me),
                        corrupted_counts.iter().any(|c| *c > me),
                    )
                }
            };
            RuleVerdict {
                rule1: inc.contexts().iter().any(|id| is_corrupted(*id)),
                rule2,
                rule2_relaxed,
            }
        })
        .collect()
}

/// Whether the heuristic rules held for one inconsistency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleVerdict {
    /// The inconsistency contains at least one corrupted context.
    pub rule1: bool,
    /// Every corrupted member out-counts every expected member.
    pub rule2: bool,
    /// Some corrupted member out-counts every expected member.
    pub rule2_relaxed: bool,
}

/// Aggregates rule verdicts into hold rates (fractions in `[0, 1]`).
pub fn hold_rates(verdicts: &[RuleVerdict]) -> (f64, f64, f64) {
    if verdicts.is_empty() {
        return (1.0, 1.0, 1.0);
    }
    let n = verdicts.len() as f64;
    let frac =
        |sel: fn(&RuleVerdict) -> bool| verdicts.iter().filter(|v| sel(v)).count() as f64 / n;
    (
        frac(|v| v.rule1),
        frac(|v| v.rule2),
        frac(|v| v.rule2_relaxed),
    )
}

/// Ground-truth table mapping context ids to corruption flags, the shape
/// property tests and workload ledgers use.
pub type TruthTable = BTreeMap<ContextId, bool>;

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_context::LogicalTime;

    fn id(n: u64) -> ContextId {
        ContextId::from_raw(n)
    }

    fn pair(a: u64, b: u64) -> Inconsistency {
        Inconsistency::pair("v", id(a), id(b), LogicalTime::ZERO)
    }

    /// Scenario A of Fig. 5: d3 (id 3) corrupted, conflicting with four
    /// expected neighbours.
    fn scenario_a() -> Vec<Inconsistency> {
        vec![pair(1, 3), pair(2, 3), pair(3, 4), pair(3, 5)]
    }

    fn corrupted_is_3(cid: ContextId) -> bool {
        cid == id(3)
    }

    #[test]
    fn scenario_a_satisfies_all_rules() {
        let incs = scenario_a();
        assert!(rule1_holds(&incs, corrupted_is_3));
        assert!(rule2_holds(&incs, corrupted_is_3));
        assert!(rule2_relaxed_holds(&incs, corrupted_is_3));
    }

    #[test]
    fn rule1_fails_on_expected_only_inconsistency() {
        let incs = vec![pair(1, 2)];
        assert!(!rule1_holds(&incs, corrupted_is_3));
    }

    #[test]
    fn rule2_fails_when_corrupted_does_not_dominate() {
        // Single inconsistency (3,4): both count 1, so the corrupted d3
        // does not strictly exceed the expected d4.
        let incs = vec![pair(3, 4)];
        assert!(rule1_holds(&incs, corrupted_is_3));
        assert!(!rule2_holds(&incs, corrupted_is_3));
        assert!(!rule2_relaxed_holds(&incs, corrupted_is_3));
    }

    #[test]
    fn relaxed_rule_is_weaker_than_rule2() {
        // Two corrupted contexts 3 and 6; 3 dominates, 6 does not.
        let corrupted = |cid: ContextId| cid == id(3) || cid == id(6);
        let incs = vec![
            pair(1, 3),
            pair(2, 3),
            Inconsistency::new("t", [id(3), id(6), id(4)], LogicalTime::ZERO),
        ];
        // counts: 3 -> 3, 6 -> 1, 4 -> 1, 1 -> 1, 2 -> 1.
        assert!(!rule2_holds(&incs, corrupted), "6 ties with expected 4");
        assert!(rule2_relaxed_holds(&incs, corrupted), "3 dominates");
    }

    #[test]
    fn all_corrupted_inconsistency_is_vacuous() {
        let corrupted = |_: ContextId| true;
        let incs = vec![pair(1, 2)];
        assert!(rule2_holds(&incs, corrupted));
        assert!(rule2_relaxed_holds(&incs, corrupted));
    }

    #[test]
    fn rule_report_and_hold_rates() {
        let incs = vec![pair(1, 3), pair(2, 3), pair(4, 5)];
        let verdicts = rule_report(&incs, corrupted_is_3);
        assert_eq!(verdicts.len(), 3);
        assert!(verdicts[0].rule1 && verdicts[0].rule2);
        assert!(!verdicts[2].rule1, "(4,5) has no corrupted member");
        let (r1, _r2, r2p) = hold_rates(&verdicts);
        assert!((r1 - 2.0 / 3.0).abs() < 1e-12);
        assert!(r2p < 1.0);
    }

    #[test]
    fn empty_verdicts_hold_trivially() {
        assert_eq!(hold_rates(&[]), (1.0, 1.0, 1.0));
    }

    #[test]
    fn counts_of_matches_tracked_set() {
        let counts = counts_of(&scenario_a());
        assert_eq!(counts.get(id(3)), 4);
        assert_eq!(counts.get(id(1)), 1);
    }
}

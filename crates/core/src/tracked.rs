//! The set Δ of tracked context inconsistencies and the count function.

use crate::inconsistency::Inconsistency;
use ctxres_context::ContextId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The paper's `count` function: for every context participating in a
/// tracked inconsistency, how many tracked inconsistencies it
/// participates in (§3.2: `count: Δ → ℘(C × N)`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CountMap {
    counts: BTreeMap<ContextId, usize>,
}

impl CountMap {
    /// The count value of `id` (zero when untracked).
    pub fn get(&self, id: ContextId) -> usize {
        self.counts.get(&id).copied().unwrap_or(0)
    }

    /// Iterates over `(context, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (ContextId, usize)> + '_ {
        self.counts.iter().map(|(id, n)| (*id, *n))
    }

    /// Number of contexts with non-zero counts.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no context is tracked.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    fn bump(&mut self, id: ContextId) {
        *self.counts.entry(id).or_insert(0) += 1;
    }

    fn drop_one(&mut self, id: ContextId) {
        if let Some(n) = self.counts.get_mut(&id) {
            *n -= 1;
            if *n == 0 {
                self.counts.remove(&id);
            }
        }
    }
}

impl fmt::Display for CountMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (id, n)) in self.counts.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "({id}, {n})")?;
        }
        f.write_str("}")
    }
}

/// The dynamic set Δ of context inconsistencies that have been detected
/// but not resolved yet (paper §3.2, Fig. 6), maintained together with
/// its [`CountMap`].
///
/// * **Context addition change**: newly detected inconsistencies enter Δ
///   via [`TrackedSet::add`].
/// * **Context deletion change**: when a context is used by an
///   application, every tracked inconsistency involving it is resolved
///   and leaves Δ via [`TrackedSet::resolve_involving`].
///
/// ```
/// use ctxres_core::{Inconsistency, TrackedSet};
/// use ctxres_context::{ContextId, LogicalTime};
///
/// let d3 = ContextId::from_raw(3);
/// let d4 = ContextId::from_raw(4);
/// let d5 = ContextId::from_raw(5);
/// let mut delta = TrackedSet::new();
/// delta.add(Inconsistency::pair("v", d3, d4, LogicalTime::ZERO));
/// delta.add(Inconsistency::pair("v", d3, d5, LogicalTime::ZERO));
/// // Scenario B of paper Fig. 5: count = {(d3, 2), (d4, 1), (d5, 1)}.
/// assert_eq!(delta.counts().get(d3), 2);
/// assert_eq!(delta.counts().get(d4), 1);
/// assert_eq!(delta.counts().get(d5), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TrackedSet {
    items: BTreeSet<Inconsistency>,
    counts: CountMap,
}

impl TrackedSet {
    /// Creates an empty Δ.
    pub fn new() -> Self {
        TrackedSet::default()
    }

    /// Adds a detected inconsistency; duplicates (same constraint and
    /// context set) are ignored. Returns whether Δ changed.
    pub fn add(&mut self, inc: Inconsistency) -> bool {
        self.add_with_counts(inc).is_some()
    }

    /// [`TrackedSet::add`], additionally reporting every count value the
    /// insertion bumped as `(context, new count)` pairs — the
    /// observability layer traces these as `CountBumped` events. Returns
    /// `None` when the inconsistency was a duplicate and Δ is unchanged.
    pub fn add_with_counts(&mut self, inc: Inconsistency) -> Option<Vec<(ContextId, usize)>> {
        if self
            .items
            .iter()
            .any(|i| i.constraint() == inc.constraint() && i.contexts() == inc.contexts())
        {
            return None;
        }
        let mut bumped = Vec::with_capacity(inc.contexts().len());
        for id in inc.contexts() {
            self.counts.bump(*id);
            bumped.push((*id, self.counts.get(*id)));
        }
        self.items.insert(inc);
        Some(bumped)
    }

    /// Resolves (removes and returns) every tracked inconsistency
    /// involving `id` — the context-deletion change of Fig. 6.
    pub fn resolve_involving(&mut self, id: ContextId) -> Vec<Inconsistency> {
        let resolved: Vec<Inconsistency> = self
            .items
            .iter()
            .filter(|i| i.involves(id))
            .cloned()
            .collect();
        for inc in &resolved {
            self.items.remove(inc);
            for cid in inc.contexts() {
                self.counts.drop_one(*cid);
            }
        }
        resolved
    }

    /// The tracked inconsistencies involving `id`.
    pub fn involving(&self, id: ContextId) -> impl Iterator<Item = &Inconsistency> + '_ {
        self.items.iter().filter(move |i| i.involves(id))
    }

    /// The current count function.
    pub fn counts(&self) -> &CountMap {
        &self.counts
    }

    /// The contexts of `inc` carrying its largest count value.
    pub fn max_count_members(&self, inc: &Inconsistency) -> Vec<ContextId> {
        let max = inc
            .contexts()
            .iter()
            .map(|id| self.counts.get(*id))
            .max()
            .unwrap_or(0);
        inc.contexts()
            .iter()
            .copied()
            .filter(|id| self.counts.get(*id) == max)
            .collect()
    }

    /// Whether `id` carries the largest count value within `inc`
    /// (ties count as largest).
    pub fn is_max_in(&self, id: ContextId, inc: &Inconsistency) -> bool {
        let mine = self.counts.get(id);
        inc.contexts()
            .iter()
            .all(|other| self.counts.get(*other) <= mine)
    }

    /// Number of tracked inconsistencies.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether Δ is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over the tracked inconsistencies.
    pub fn iter(&self) -> impl Iterator<Item = &Inconsistency> + '_ {
        self.items.iter()
    }

    /// Clears Δ (used when an experiment run resets the middleware).
    pub fn clear(&mut self) {
        self.items.clear();
        self.counts = CountMap::default();
    }

    /// Renders Δ as a Graphviz `dot` graph: contexts are nodes labelled
    /// with their count values, inconsistencies are hyperedge nodes
    /// (boxes) connected to their members. Paste into any dot viewer to
    /// see the structures drop-bad reasons about (the Fig. 5 pictures,
    /// mechanically).
    ///
    /// ```
    /// use ctxres_core::{Inconsistency, TrackedSet};
    /// use ctxres_context::{ContextId, LogicalTime};
    ///
    /// let mut delta = TrackedSet::new();
    /// delta.add(Inconsistency::pair(
    ///     "v",
    ///     ContextId::from_raw(3),
    ///     ContextId::from_raw(4),
    ///     LogicalTime::ZERO,
    /// ));
    /// let dot = delta.to_dot();
    /// assert!(dot.starts_with("graph delta {"));
    /// assert!(dot.contains("ctx3") && dot.contains("count 1"));
    /// ```
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("graph delta {\n");
        for (id, count) in self.counts.iter() {
            let _ = writeln!(
                out,
                "  ctx{} [label=\"{}\\ncount {}\"];",
                id.raw(),
                id,
                count
            );
        }
        for (i, inc) in self.items.iter().enumerate() {
            let _ = writeln!(
                out,
                "  inc{} [shape=box, label=\"{}\"];",
                i,
                inc.constraint()
            );
            for member in inc.contexts() {
                let _ = writeln!(out, "  inc{} -- ctx{};", i, member.raw());
            }
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for TrackedSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Δ ({} tracked):", self.items.len())?;
        for inc in &self.items {
            writeln!(f, "  {inc}")?;
        }
        write!(f, "count = {}", self.counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_context::LogicalTime;

    fn id(n: u64) -> ContextId {
        ContextId::from_raw(n)
    }

    fn pair(a: u64, b: u64) -> Inconsistency {
        Inconsistency::pair("v", id(a), id(b), LogicalTime::ZERO)
    }

    /// Paper Fig. 5, Scenario A: Δ = {(d1,d3),(d2,d3),(d3,d4),(d3,d5)}.
    fn scenario_a() -> TrackedSet {
        let mut delta = TrackedSet::new();
        delta.add(pair(1, 3));
        delta.add(pair(2, 3));
        delta.add(pair(3, 4));
        delta.add(pair(3, 5));
        delta
    }

    #[test]
    fn counts_match_paper_scenario_a() {
        let delta = scenario_a();
        assert_eq!(delta.counts().get(id(3)), 4);
        for other in [1, 2, 4, 5] {
            assert_eq!(delta.counts().get(id(other)), 1, "d{other}");
        }
        assert_eq!(delta.counts().get(id(9)), 0);
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut delta = TrackedSet::new();
        assert!(delta.add(pair(1, 2)));
        assert!(!delta.add(pair(1, 2)));
        assert!(!delta.add(pair(2, 1)), "unordered duplicate");
        assert_eq!(delta.len(), 1);
        assert_eq!(delta.counts().get(id(1)), 1);
    }

    #[test]
    fn same_contexts_different_constraint_are_distinct() {
        let mut delta = TrackedSet::new();
        delta.add(Inconsistency::pair("gap1", id(1), id(2), LogicalTime::ZERO));
        delta.add(Inconsistency::pair("gap2", id(1), id(2), LogicalTime::ZERO));
        assert_eq!(delta.len(), 2);
        assert_eq!(delta.counts().get(id(1)), 2);
    }

    #[test]
    fn resolve_involving_removes_and_recounts() {
        let mut delta = scenario_a();
        let resolved = delta.resolve_involving(id(1));
        assert_eq!(resolved.len(), 1);
        assert_eq!(delta.len(), 3);
        assert_eq!(delta.counts().get(id(3)), 3);
        assert_eq!(delta.counts().get(id(1)), 0);
    }

    #[test]
    fn resolve_involving_hub_empties_delta() {
        let mut delta = scenario_a();
        let resolved = delta.resolve_involving(id(3));
        assert_eq!(resolved.len(), 4);
        assert!(delta.is_empty());
        assert!(delta.counts().is_empty());
    }

    #[test]
    fn max_count_members_identifies_hub() {
        let delta = scenario_a();
        let inc = pair(3, 4);
        assert_eq!(delta.max_count_members(&inc), vec![id(3)]);
        assert!(delta.is_max_in(id(3), &inc));
        assert!(!delta.is_max_in(id(4), &inc));
    }

    #[test]
    fn is_max_in_treats_ties_as_largest() {
        let mut delta = TrackedSet::new();
        delta.add(pair(3, 4));
        // Scenario B before refinement: both carry count 1.
        assert!(delta.is_max_in(id(3), &pair(3, 4)));
        assert!(delta.is_max_in(id(4), &pair(3, 4)));
        assert_eq!(delta.max_count_members(&pair(3, 4)).len(), 2);
    }

    #[test]
    fn involving_filters() {
        let delta = scenario_a();
        assert_eq!(delta.involving(id(3)).count(), 4);
        assert_eq!(delta.involving(id(4)).count(), 1);
        assert_eq!(delta.involving(id(9)).count(), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut delta = scenario_a();
        delta.clear();
        assert!(delta.is_empty());
        assert!(delta.counts().is_empty());
    }

    #[test]
    fn display_shows_counts() {
        let s = scenario_a().to_string();
        assert!(s.contains("4 tracked"));
        assert!(s.contains("(ctx#3, 4)"));
    }
}

//! Detected context inconsistencies.

use ctxres_context::{ContextId, LogicalTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// One detected context inconsistency: a set of contexts that together
/// violate a named consistency constraint (paper §3.2: Δ ⊆ ℘(C)).
///
/// Most inconsistencies in the paper's applications are pairs, but the
/// type supports any arity ("generic context inconsistencies", §3.4).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Inconsistency {
    constraint: String,
    contexts: BTreeSet<ContextId>,
    detected_at: LogicalTime,
}

impl Inconsistency {
    /// Creates an inconsistency over an arbitrary context set.
    pub fn new(
        constraint: &str,
        contexts: impl IntoIterator<Item = ContextId>,
        detected_at: LogicalTime,
    ) -> Self {
        Inconsistency {
            constraint: constraint.to_owned(),
            contexts: contexts.into_iter().collect(),
            detected_at,
        }
    }

    /// Convenience constructor for the common binary case.
    pub fn pair(constraint: &str, a: ContextId, b: ContextId, detected_at: LogicalTime) -> Self {
        Inconsistency::new(constraint, [a, b], detected_at)
    }

    /// The violated constraint's name.
    pub fn constraint(&self) -> &str {
        &self.constraint
    }

    /// The contexts forming the inconsistency.
    pub fn contexts(&self) -> &BTreeSet<ContextId> {
        &self.contexts
    }

    /// Whether `id` participates in this inconsistency.
    pub fn involves(&self, id: ContextId) -> bool {
        self.contexts.contains(&id)
    }

    /// When the inconsistency was detected.
    pub fn detected_at(&self) -> LogicalTime {
        self.detected_at
    }

    /// Number of involved contexts.
    pub fn arity(&self) -> usize {
        self.contexts.len()
    }
}

impl fmt::Display for Inconsistency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.constraint)?;
        for (i, id) in self.contexts.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "}}@{}", self.detected_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ContextId {
        ContextId::from_raw(n)
    }

    #[test]
    fn pair_builds_binary_inconsistency() {
        let inc = Inconsistency::pair("velocity", id(2), id(3), LogicalTime::new(5));
        assert_eq!(inc.arity(), 2);
        assert!(inc.involves(id(2)));
        assert!(inc.involves(id(3)));
        assert!(!inc.involves(id(4)));
        assert_eq!(inc.constraint(), "velocity");
        assert_eq!(inc.detected_at(), LogicalTime::new(5));
    }

    #[test]
    fn duplicate_contexts_collapse() {
        let inc = Inconsistency::new("c", [id(1), id(1), id(2)], LogicalTime::ZERO);
        assert_eq!(inc.arity(), 2);
    }

    #[test]
    fn equality_ignores_context_order() {
        let a = Inconsistency::new("c", [id(1), id(2)], LogicalTime::ZERO);
        let b = Inconsistency::new("c", [id(2), id(1)], LogicalTime::ZERO);
        assert_eq!(a, b);
    }

    #[test]
    fn display_names_constraint_and_members() {
        let inc = Inconsistency::pair("velocity", id(2), id(3), LogicalTime::new(1));
        let s = inc.to_string();
        assert!(s.contains("velocity"));
        assert!(s.contains("ctx#2"));
        assert!(s.contains("ctx#3"));
    }
}

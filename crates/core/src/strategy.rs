//! The resolution-strategy abstraction.

use crate::inconsistency::Inconsistency;
use ctxres_context::{ContextId, ContextPool, LogicalTime};

/// What happened when a strategy processed a context-addition change.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AdditionOutcome {
    /// Contexts the strategy discarded (now `Inconsistent`).
    pub discarded: Vec<ContextId>,
    /// Whether the added context itself survived (was not discarded).
    pub accepted: bool,
}

/// What happened when a strategy processed a context-use request (a
/// context-deletion change in the paper's terminology).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UseOutcome {
    /// Whether the used context was delivered to the application.
    pub delivered: bool,
    /// Contexts discarded during this resolution (now `Inconsistent`).
    pub discarded: Vec<ContextId>,
    /// Contexts newly marked `Bad` (deferred discard).
    pub marked_bad: Vec<ContextId>,
}

/// Tie-breaking policy when several contexts carry the same maximal
/// count value (the open issue of paper §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// Prefer discarding the most recently produced context (largest id).
    #[default]
    Latest,
    /// Prefer discarding the oldest context (smallest id).
    Earliest,
}

/// What drop-bad does when the context being used ties for the maximal
/// count value with a still-undecided rival (paper §5.1's open "tie
/// case"; `ctxres-experiments` ships an ablation comparing the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TiePolicy {
    /// A tie counts as "largest": the used context is discarded. Right
    /// whenever the corrupted context reaches its use instant first
    /// (it usually arrived first).
    #[default]
    DoomUsed,
    /// Deliver the used context and mark a tied undecided rival bad.
    /// Right whenever the corrupted context is the later one.
    BlamePeer,
}

impl TieBreak {
    /// Picks one context out of a non-empty tied set.
    pub fn pick(self, tied: &[ContextId]) -> Option<ContextId> {
        match self {
            TieBreak::Latest => tied.iter().max().copied(),
            TieBreak::Earliest => tied.iter().min().copied(),
        }
    }
}

/// An automated context inconsistency resolution strategy, pluggable
/// into the middleware (paper §1: "a management service in the
/// middleware").
///
/// The middleware calls [`on_addition`](ResolutionStrategy::on_addition)
/// after detection runs for a newly added *relevant* context (contexts
/// of kinds no constraint mentions never reach the strategy — they are
/// made `Consistent` immediately, Fig. 7 Part 1), and
/// [`on_use`](ResolutionStrategy::on_use) when an application requests a
/// buffered context.
///
/// Immediate strategies (drop-latest, drop-all, …) decide everything in
/// `on_addition` and report `defers_decision() == false`; the drop-bad
/// strategy buffers contexts and decides in `on_use`.
pub trait ResolutionStrategy {
    /// The strategy's display name (e.g. `"d-bad"`).
    fn name(&self) -> &'static str;

    /// Whether decisions are deferred until use (drop-bad) rather than
    /// taken at addition time.
    fn defers_decision(&self) -> bool {
        false
    }

    /// Handles a context-addition change: `id` was inserted into `pool`
    /// and detection found the `fresh` inconsistencies (all involving
    /// `id`, possibly empty).
    ///
    /// Implementations transition context states through `pool` and
    /// report what they did.
    fn on_addition(
        &mut self,
        pool: &mut ContextPool,
        now: LogicalTime,
        id: ContextId,
        fresh: &[Inconsistency],
    ) -> AdditionOutcome;

    /// Handles a context-deletion change: an application wants to use
    /// context `id`.
    fn on_use(&mut self, pool: &mut ContextPool, now: LogicalTime, id: ContextId) -> UseOutcome;

    /// Attaches an observability handle. Strategies with internal
    /// decision state worth tracing (drop-bad's Δ-set and count values)
    /// override this; the default ignores the handle. The middleware
    /// builder calls it with its own shard handle, so strategy events
    /// land in the same per-shard ring as the engine's.
    fn attach_obs(&mut self, _obs: ctxres_obs::ShardObs) {}

    /// Whether this strategy emits its own provenance verdict edges
    /// (`TraceEvent::Caused` with `ResolvedBecause`/`SupersededBy`)
    /// for the decisions it takes. Drop-bad does, citing the dooming
    /// inconsistency and the count evidence; for strategies that answer
    /// `false` the middleware synthesizes generic verdict edges on
    /// their behalf, so every decision still closes its causal chain.
    fn emits_provenance(&self) -> bool {
        false
    }

    /// Clears per-run state (tracked sets, RNG position is kept).
    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiebreak_latest_picks_largest_id() {
        let tied = vec![
            ContextId::from_raw(3),
            ContextId::from_raw(7),
            ContextId::from_raw(5),
        ];
        assert_eq!(TieBreak::Latest.pick(&tied), Some(ContextId::from_raw(7)));
        assert_eq!(TieBreak::Earliest.pick(&tied), Some(ContextId::from_raw(3)));
    }

    #[test]
    fn tiebreak_empty_returns_none() {
        assert_eq!(TieBreak::Latest.pick(&[]), None);
    }
}

//! Property-based tests for the context pool and life cycle.

use ctxres_context::{
    Context, ContextId, ContextKind, ContextPool, ContextState, Lifespan, LogicalTime, Ticks,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert {
        kind: u8,
        subject: u8,
        ttl: Option<u8>,
    },
    SetState {
        target: u8,
        state: ContextState,
    },
    Discard {
        target: u8,
    },
    Remove {
        target: u8,
    },
    Sweep {
        at: u8,
    },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..3, 0u8..3, proptest::option::of(0u8..10))
            .prop_map(|(kind, subject, ttl)| Op::Insert { kind, subject, ttl }),
        (
            any::<u8>(),
            prop_oneof![
                Just(ContextState::Consistent),
                Just(ContextState::Bad),
                Just(ContextState::Inconsistent),
            ]
        )
            .prop_map(|(target, state)| Op::SetState { target, state }),
        any::<u8>().prop_map(|target| Op::Discard { target }),
        any::<u8>().prop_map(|target| Op::Remove { target }),
        (0u8..30).prop_map(|at| Op::Sweep { at }),
    ]
}

fn kind_name(k: u8) -> ContextKind {
    ContextKind::new(&format!("kind{k}"))
}

proptest! {
    /// Pool invariants hold under arbitrary operation sequences:
    /// index views agree with a straight scan, discarded contexts leave
    /// live views, available contexts are exactly the consistent live
    /// ones, and state transitions never corrupt storage.
    #[test]
    fn pool_invariants_under_random_ops(ops in proptest::collection::vec(op(), 1..60)) {
        let mut pool = ContextPool::new();
        let mut clock = LogicalTime::ZERO;
        let mut inserted: Vec<ContextId> = Vec::new();
        for op in ops {
            match op {
                Op::Insert { kind, subject, ttl } => {
                    clock.advance();
                    let mut builder = Context::builder(kind_name(kind), &format!("s{subject}"))
                        .stamp(clock);
                    if let Some(t) = ttl {
                        builder = builder.lifespan(Lifespan::with_ttl(clock, Ticks::new(u64::from(t))));
                    }
                    let id = pool.insert(builder.build());
                    prop_assert!(inserted.last().map(|last| *last < id).unwrap_or(true),
                        "ids must be monotonic");
                    inserted.push(id);
                }
                Op::SetState { target, state } => {
                    if let Some(id) = inserted.get(usize::from(target) % inserted.len().max(1)) {
                        let before = pool.get(*id).map(|c| c.state());
                        let result = pool.set_state(*id, state);
                        if let Some(before) = before {
                            // Result agrees with the life-cycle table.
                            prop_assert_eq!(result.is_ok(), before.transition(state).is_ok());
                        }
                    }
                }
                Op::Discard { target } => {
                    if let Some(id) = inserted.get(usize::from(target) % inserted.len().max(1)) {
                        if pool.contains(*id) {
                            pool.discard(*id).unwrap();
                            prop_assert_eq!(pool.get(*id).unwrap().state(), ContextState::Inconsistent);
                        }
                    }
                }
                Op::Remove { target } => {
                    if let Some(id) = inserted.get(usize::from(target) % inserted.len().max(1)) {
                        pool.remove(*id);
                        prop_assert!(pool.get(*id).is_none());
                    }
                }
                Op::Sweep { at } => {
                    let now = LogicalTime::new(u64::from(at));
                    pool.sweep_expired(now);
                    // After a sweep at `now >= clock`, no live-at-now view
                    // may contain expired contexts (trivially true since
                    // they were removed).
                    for k in 0..3u8 {
                        for (_, c) in pool.of_kind_live_at(&kind_name(k), now) {
                            prop_assert!(c.is_live(now));
                        }
                    }
                }
            }

            // Global invariants after every operation.
            let scan: Vec<ContextId> = pool.iter().map(|(id, _)| id).collect();
            prop_assert_eq!(scan.len(), pool.len());
            for k in 0..3u8 {
                let kind = kind_name(k);
                for (id, c) in pool.of_kind(&kind) {
                    prop_assert_eq!(c.kind(), &kind);
                    prop_assert!(c.state() != ContextState::Inconsistent);
                    prop_assert!(pool.contains(id));
                }
            }
            for (id, c) in pool.available_at(clock) {
                prop_assert_eq!(c.state(), ContextState::Consistent);
                prop_assert!(c.is_live(clock));
                prop_assert!(pool.contains(id));
            }
            let stats = pool.stats();
            prop_assert_eq!(
                stats.consistent + stats.undecided + stats.bad + stats.inconsistent,
                stats.stored
            );
        }
    }

    /// The four-state machine: any sequence of transitions keeps every
    /// context on a legal Fig. 8 path (at most one bad detour, ending in
    /// a terminal state or still undecided).
    #[test]
    fn life_cycle_paths_are_legal(
        steps in proptest::collection::vec(
            prop_oneof![
                Just(ContextState::Consistent),
                Just(ContextState::Bad),
                Just(ContextState::Inconsistent),
            ],
            0..6,
        )
    ) {
        let mut ctx = Context::builder(ContextKind::new("k"), "s").build();
        let mut path = vec![ctx.state()];
        for next in steps {
            if ctx.set_state(next).is_ok() {
                path.push(next);
            }
        }
        // Legal paths: U, U-C, U-B, U-I, U-B-I.
        let rendered: Vec<String> = path.iter().map(|s| s.to_string()).collect();
        let p = rendered.join("-");
        prop_assert!(
            matches!(
                p.as_str(),
                "undecided"
                    | "undecided-consistent"
                    | "undecided-bad"
                    | "undecided-inconsistent"
                    | "undecided-bad-inconsistent"
            ),
            "illegal path {p}"
        );
    }
}

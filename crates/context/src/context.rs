//! The `Context` type: a single piece of environmental information.

use crate::state::ContextState;
use crate::time::{Lifespan, LogicalTime};
use crate::value::ContextValue;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Unique identifier of a context within a pool.
///
/// Ids are assigned by [`crate::ContextPool::insert`] in arrival order, so
/// a larger id means a later context — the ordering the drop-latest
/// strategy relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ContextId(u64);

impl ContextId {
    /// Creates an id from a raw index. Mostly useful in tests; pools
    /// assign ids themselves.
    pub const fn from_raw(raw: u64) -> Self {
        ContextId(raw)
    }

    /// The raw index.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ContextId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctx#{}", self.0)
    }
}

/// The kind (type) of a context: `"location"`, `"rfid_read"`, ….
///
/// Kinds name the quantification domains of consistency constraints:
/// `forall x : location . …` ranges over the pool's live contexts of kind
/// `location`. Kinds are cheap to clone (shared string).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContextKind(Arc<str>);

impl ContextKind {
    /// Creates a kind with the given name.
    pub fn new(name: &str) -> Self {
        ContextKind(Arc::from(name))
    }

    /// The kind's name.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// Shared handle to the kind's name, so observers can intern it
    /// into events without re-allocating per context.
    pub fn name_arc(&self) -> &Arc<str> {
        &self.0
    }
}

impl fmt::Display for ContextKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ContextKind {
    fn from(name: &str) -> Self {
        ContextKind::new(name)
    }
}

impl Serialize for ContextKind {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.0)
    }
}

impl<'de> Deserialize<'de> for ContextKind {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(ContextKind::new(&s))
    }
}

/// Identifier of the context source that produced a context (a sensor, an
/// RFID reader, a reasoning program).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SourceId(pub u32);

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "src#{}", self.0)
    }
}

/// Ground-truth tag attached by workload generators (paper §3.4).
///
/// Whether a context is *corrupted* or *expected* "is unknown to any
/// practical resolution strategy in advance" — only the artificial OPT-R
/// oracle and the metrics pipeline may look at this tag. Practical
/// strategies must not read it; keeping it on the context (rather than in
/// a side table) makes the oracle and the ground-truth ledger trivial
/// while the type system cannot enforce the discipline, reviews can.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TruthTag {
    /// The context reflects the real environment.
    #[default]
    Expected,
    /// The context is incorrect and should ideally be identified as
    /// inconsistent.
    Corrupted,
}

impl TruthTag {
    /// Whether this tag marks a corrupted context.
    pub fn is_corrupted(self) -> bool {
        matches!(self, TruthTag::Corrupted)
    }
}

/// A single context: one piece of information about the environment.
///
/// Construct with [`Context::builder`]. Attribute storage is an ordered
/// map so the `Debug`/serialized forms are deterministic.
///
/// ```
/// use ctxres_context::{Context, ContextKind, LogicalTime, Point};
///
/// let c = Context::builder(ContextKind::new("location"), "peter")
///     .attr("pos", Point::new(3.0, 4.0))
///     .stamp(LogicalTime::new(7))
///     .build();
/// assert_eq!(c.subject(), "peter");
/// assert_eq!(c.point("pos"), Some(Point::new(3.0, 4.0)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Context {
    kind: ContextKind,
    subject: Arc<str>,
    attrs: BTreeMap<String, ContextValue>,
    stamp: LogicalTime,
    lifespan: Lifespan,
    source: SourceId,
    truth: TruthTag,
    state: ContextState,
}

impl Context {
    /// Starts building a context of the given kind about `subject`.
    pub fn builder(kind: ContextKind, subject: &str) -> ContextBuilder {
        ContextBuilder {
            kind,
            subject: Arc::from(subject),
            attrs: BTreeMap::new(),
            stamp: LogicalTime::ZERO,
            lifespan: None,
            source: SourceId::default(),
            truth: TruthTag::Expected,
        }
    }

    /// The context's kind.
    pub fn kind(&self) -> &ContextKind {
        &self.kind
    }

    /// The entity the context is about (a person, a tag, a room).
    pub fn subject(&self) -> &str {
        &self.subject
    }

    /// Shared handle to the subject string, so indexes, batch grouping,
    /// and event fields can key on it without re-allocating.
    pub fn subject_arc(&self) -> &Arc<str> {
        &self.subject
    }

    /// Looks up an attribute value.
    pub fn attr(&self, name: &str) -> Option<&ContextValue> {
        self.attrs.get(name)
    }

    /// All attributes, in name order.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &ContextValue)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Convenience accessor for a numeric attribute.
    pub fn number(&self, name: &str) -> Option<f64> {
        self.attr(name).and_then(ContextValue::as_f64)
    }

    /// Convenience accessor for a text attribute.
    pub fn text(&self, name: &str) -> Option<&str> {
        self.attr(name).and_then(ContextValue::as_text)
    }

    /// Convenience accessor for a point attribute.
    pub fn point(&self, name: &str) -> Option<crate::value::Point> {
        self.attr(name).and_then(ContextValue::as_point)
    }

    /// The logical instant the context was produced.
    pub fn stamp(&self) -> LogicalTime {
        self.stamp
    }

    /// The context's available period.
    pub fn lifespan(&self) -> Lifespan {
        self.lifespan
    }

    /// Whether the context is still live at `now`.
    pub fn is_live(&self, now: LogicalTime) -> bool {
        self.lifespan.is_live(now)
    }

    /// The source that produced the context.
    pub fn source(&self) -> SourceId {
        self.source
    }

    /// Ground-truth tag — for oracles and metrics only; see [`TruthTag`].
    pub fn truth(&self) -> TruthTag {
        self.truth
    }

    /// Current life-cycle state.
    pub fn state(&self) -> ContextState {
        self.state
    }

    /// Moves the context to `next`, enforcing the Fig. 8 life cycle.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ContextError::IllegalTransition`] when the
    /// transition is not allowed.
    pub fn set_state(&mut self, next: ContextState) -> Result<(), crate::ContextError> {
        self.state = self.state.transition(next)?;
        Ok(())
    }

    pub(crate) fn force_state(&mut self, next: ContextState) {
        self.state = next;
    }
}

impl fmt::Display for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]@{} ({})",
            self.kind, self.subject, self.stamp, self.state
        )
    }
}

/// Builder for [`Context`] values (non-consuming terminal `build`).
#[derive(Debug, Clone)]
pub struct ContextBuilder {
    kind: ContextKind,
    subject: Arc<str>,
    attrs: BTreeMap<String, ContextValue>,
    stamp: LogicalTime,
    lifespan: Option<Lifespan>,
    source: SourceId,
    truth: TruthTag,
}

impl ContextBuilder {
    /// Adds an attribute.
    pub fn attr(mut self, name: &str, value: impl Into<ContextValue>) -> Self {
        self.attrs.insert(name.to_owned(), value.into());
        self
    }

    /// Sets the production instant. Also anchors the default lifespan.
    pub fn stamp(mut self, stamp: LogicalTime) -> Self {
        self.stamp = stamp;
        self
    }

    /// Sets an explicit lifespan (default: forever, anchored at `stamp`).
    pub fn lifespan(mut self, lifespan: Lifespan) -> Self {
        self.lifespan = Some(lifespan);
        self
    }

    /// Sets the producing source.
    pub fn source(mut self, source: SourceId) -> Self {
        self.source = source;
        self
    }

    /// Sets the ground-truth tag (workload generators only).
    pub fn truth(mut self, truth: TruthTag) -> Self {
        self.truth = truth;
        self
    }

    /// Finishes the context in the `Undecided` state.
    pub fn build(self) -> Context {
        let lifespan = self.lifespan.unwrap_or(Lifespan::forever(self.stamp));
        Context {
            kind: self.kind,
            subject: self.subject,
            attrs: self.attrs,
            stamp: self.stamp,
            lifespan,
            source: self.source,
            truth: self.truth,
            state: ContextState::Undecided,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Ticks;
    use crate::value::Point;

    fn sample() -> Context {
        Context::builder(ContextKind::new("location"), "peter")
            .attr("pos", Point::new(1.0, 2.0))
            .attr("floor", 3i64)
            .stamp(LogicalTime::new(5))
            .source(SourceId(7))
            .build()
    }

    #[test]
    fn builder_sets_fields() {
        let c = sample();
        assert_eq!(c.kind().name(), "location");
        assert_eq!(c.subject(), "peter");
        assert_eq!(c.stamp(), LogicalTime::new(5));
        assert_eq!(c.source(), SourceId(7));
        assert_eq!(c.truth(), TruthTag::Expected);
        assert_eq!(c.state(), ContextState::Undecided);
        assert_eq!(c.number("floor"), Some(3.0));
    }

    #[test]
    fn default_lifespan_anchors_at_stamp_and_never_expires() {
        let c = sample();
        assert_eq!(c.lifespan().created(), LogicalTime::new(5));
        assert!(c.is_live(LogicalTime::new(1_000_000)));
    }

    #[test]
    fn explicit_lifespan_expires() {
        let c = Context::builder(ContextKind::new("temp"), "room-a")
            .stamp(LogicalTime::new(2))
            .lifespan(Lifespan::with_ttl(LogicalTime::new(2), Ticks::new(3)))
            .build();
        assert!(c.is_live(LogicalTime::new(4)));
        assert!(!c.is_live(LogicalTime::new(5)));
    }

    #[test]
    fn state_transition_enforced_on_context() {
        let mut c = sample();
        c.set_state(ContextState::Bad).unwrap();
        assert_eq!(c.state(), ContextState::Bad);
        assert!(c.set_state(ContextState::Consistent).is_err());
        c.set_state(ContextState::Inconsistent).unwrap();
        assert_eq!(c.state(), ContextState::Inconsistent);
    }

    #[test]
    fn corrupted_tag_round_trips() {
        let c = Context::builder(ContextKind::new("rfid"), "tag-1")
            .truth(TruthTag::Corrupted)
            .build();
        assert!(c.truth().is_corrupted());
    }

    #[test]
    fn kinds_compare_by_name() {
        assert_eq!(ContextKind::new("a"), ContextKind::from("a"));
        assert_ne!(ContextKind::new("a"), ContextKind::new("b"));
    }

    #[test]
    fn context_id_orders_by_arrival() {
        assert!(ContextId::from_raw(1) < ContextId::from_raw(2));
        assert_eq!(ContextId::from_raw(9).raw(), 9);
    }

    #[test]
    fn attrs_iterate_in_name_order() {
        let c = sample();
        let names: Vec<&str> = c.attrs().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["floor", "pos"]);
    }

    #[test]
    fn display_mentions_kind_subject_state() {
        let s = sample().to_string();
        assert!(s.contains("location"));
        assert!(s.contains("peter"));
        assert!(s.contains("undecided"));
    }

    #[test]
    fn builder_overwrites_duplicate_attr() {
        let c = Context::builder(ContextKind::new("t"), "s")
            .attr("v", 1i64)
            .attr("v", 2i64)
            .build();
        assert_eq!(c.number("v"), Some(2.0));
    }
}

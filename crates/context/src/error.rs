//! Error types for the context model.

use crate::context::ContextId;
use crate::state::ContextState;
use std::error::Error;
use std::fmt;

/// Errors produced by the context model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ContextError {
    /// A life-cycle transition not allowed by Fig. 8 was attempted.
    IllegalTransition {
        /// The state the context was in.
        from: ContextState,
        /// The state the transition attempted to reach.
        to: ContextState,
    },
    /// The referenced context is not (or no longer) in the pool.
    UnknownContext(ContextId),
    /// The referenced context exists but has expired.
    Expired(ContextId),
}

impl fmt::Display for ContextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContextError::IllegalTransition { from, to } => {
                write!(f, "illegal context state transition from {from} to {to}")
            }
            ContextError::UnknownContext(id) => write!(f, "unknown context {id}"),
            ContextError::Expired(id) => write!(f, "context {id} has expired"),
        }
    }
}

impl Error for ContextError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_punctuation() {
        let e = ContextError::IllegalTransition {
            from: ContextState::Consistent,
            to: ContextState::Bad,
        };
        let s = e.to_string();
        assert!(s.starts_with("illegal"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ContextError>();
    }
}

//! The context pool: arena-backed, indexed storage of managed contexts.

use crate::context::{Context, ContextId, ContextKind};
use crate::error::ContextError;
use crate::state::ContextState;
use crate::time::LogicalTime;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Counters describing a pool's contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Total contexts ever inserted.
    pub inserted: u64,
    /// Contexts currently stored (any state).
    pub stored: usize,
    /// Contexts in the `Consistent` state.
    pub consistent: usize,
    /// Contexts in the `Undecided` state.
    pub undecided: usize,
    /// Contexts in the `Bad` state.
    pub bad: usize,
    /// Contexts in the `Inconsistent` (discarded) state.
    pub inconsistent: usize,
}

/// Per-kind occupancy watermark: how many live contexts a kind bucket
/// holds and how old the oldest of them is — the raw material for the
/// staleness estimators in the observability layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KindWatermark {
    /// The kind the watermark describes.
    pub kind: ContextKind,
    /// Live (not `Inconsistent`) contexts of the kind.
    pub live: usize,
    /// Stamp of the oldest live context, when one exists.
    pub oldest_stamp: Option<LogicalTime>,
    /// Time-to-live of the oldest live context, in ticks
    /// (`expires_at - stamp`); `None` when it never expires.
    pub oldest_ttl: Option<u64>,
}

/// Sentinel in the id → slot table for a removed context.
const NO_SLOT: u32 = u32::MAX;

/// A generational reference into the slot arena. A handle is live only
/// while the slot's generation still matches: removing a context bumps
/// its slot's generation, instantly invalidating every outstanding
/// handle to it, and slot reuse hands the new occupant a fresh
/// generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SlotHandle {
    slot: u32,
    generation: u32,
}

/// Secondary index for one context kind: every stored context of the
/// kind, plus a per-subject sub-index. Both vectors hold generational
/// slot handles ordered by `(stamp, id)` — for in-order arrivals that
/// is plain append, out-of-order stamps pay one binary-searched insert.
#[derive(Debug, Default, Clone)]
struct KindBucket {
    all: Vec<SlotHandle>,
    /// Keyed by the contexts' shared subject `Arc` so lookups can borrow
    /// the caller's `&str` — a flat `(ContextKind, String)` key would
    /// force a key clone per lookup.
    by_subject: HashMap<Arc<str>, Vec<SlotHandle>>,
}

/// Indexed storage for the contexts a middleware manages.
///
/// The pool assigns [`ContextId`]s in arrival order and stores contexts
/// in a slot **arena** with parallel columns (payload, id, stamp,
/// generation) — a struct-of-arrays layout in which an id lookup is one
/// dense-table index instead of a tree walk, and the kind /
/// `(kind, subject)` secondary indexes hold generational slot handles,
/// so `of_kind` / `of_subject` iteration touches exactly the bucket, in
/// deterministic `(stamp, id)` order, with zero allocation. Discarded
/// (`Inconsistent`) contexts stay stored for post-mortem metrics but are
/// excluded from the live views that constraints quantify over.
///
/// ```
/// use ctxres_context::{Context, ContextKind, ContextPool, LogicalTime};
///
/// let mut pool = ContextPool::new();
/// let kind = ContextKind::new("location");
/// let id = pool.insert(Context::builder(kind.clone(), "peter").stamp(LogicalTime::new(1)).build());
/// assert_eq!(pool.of_kind(&kind).count(), 1);
/// assert_eq!(pool.get(id).unwrap().subject(), "peter");
/// ```
#[derive(Debug, Default, Clone)]
pub struct ContextPool {
    /// Payload column; `None` marks a free slot awaiting reuse.
    payloads: Vec<Option<Context>>,
    /// Id column, parallel to `payloads` (stale for free slots).
    slot_ids: Vec<ContextId>,
    /// Stamp column, parallel to `payloads` — index ordering reads it
    /// without touching the payload (stale for free slots).
    slot_stamps: Vec<LogicalTime>,
    /// Generation column, parallel to `payloads`; bumped on removal.
    generations: Vec<u32>,
    /// Free slots available for reuse.
    free: Vec<u32>,
    /// Dense id → slot table, indexed by raw id ([`NO_SLOT`] once
    /// removed). Ids are pool-assigned and never reused, so the table
    /// only grows with `next_id`.
    id_slots: Vec<u32>,
    by_kind: HashMap<ContextKind, KindBucket>,
    next_id: u64,
    inserted: u64,
    stored: usize,
    /// Lifetime count of slot generation bumps (slot recycles): every
    /// removal invalidates a slot and returns it to the free list.
    recycles: u64,
}

/// Inserts `handle` into `index`, keeping it ordered by `(stamp, id)`.
/// In-order arrivals (the overwhelmingly common case) append; an
/// out-of-order stamp binary-searches its position.
fn index_insert(
    index: &mut Vec<SlotHandle>,
    stamps: &[LogicalTime],
    ids: &[ContextId],
    handle: SlotHandle,
) {
    let key = |h: SlotHandle| (stamps[h.slot as usize], ids[h.slot as usize]);
    match index.last() {
        Some(&last) if key(last) > key(handle) => {
            let at = index.partition_point(|&h| key(h) <= key(handle));
            index.insert(at, handle);
        }
        _ => index.push(handle),
    }
}

/// Restores `(stamp, id)` order after a batch appended its handles
/// unsorted past `split`: sorts the tail (keys are unique, so unstable
/// is fine), then merges it with the sorted head — one sort-merge per
/// touched bucket per batch instead of a binary-searched memmove per
/// insert. In-order arrivals (the overwhelmingly common case) take the
/// boundary-comparison fast path and touch nothing.
fn repair_tail(
    index: &mut Vec<SlotHandle>,
    stamps: &[LogicalTime],
    ids: &[ContextId],
    split: usize,
) {
    let key = |h: SlotHandle| (stamps[h.slot as usize], ids[h.slot as usize]);
    if index.len() - split > 1 {
        let tail = &index[split..];
        if tail.windows(2).any(|w| key(w[0]) > key(w[1])) {
            index[split..].sort_unstable_by_key(|&h| key(h));
        }
    }
    if split == 0 || index.len() == split || key(index[split - 1]) <= key(index[split]) {
        return;
    }
    let tail = index.split_off(split);
    let head = std::mem::take(index);
    index.reserve(head.len() + tail.len());
    let mut head = head.into_iter().peekable();
    let mut tail = tail.into_iter().peekable();
    loop {
        match (head.peek(), tail.peek()) {
            (Some(&a), Some(&b)) => {
                if key(a) <= key(b) {
                    index.push(a);
                    head.next();
                } else {
                    index.push(b);
                    tail.next();
                }
            }
            (Some(_), None) => {
                index.extend(head);
                break;
            }
            (None, _) => {
                index.extend(tail);
                break;
            }
        }
    }
}

impl ContextPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        ContextPool::default()
    }

    /// Inserts a context, assigning it the next arrival-ordered id.
    pub fn insert(&mut self, ctx: Context) -> ContextId {
        let kind = ctx.kind().clone();
        let subject = Arc::clone(ctx.subject_arc());
        let (id, handle) = self.arena_insert(ctx);
        let bucket = self.by_kind.entry(kind).or_default();
        index_insert(&mut bucket.all, &self.slot_stamps, &self.slot_ids, handle);
        index_insert(
            bucket.by_subject.entry(subject).or_default(),
            &self.slot_stamps,
            &self.slot_ids,
            handle,
        );
        id
    }

    /// The arena half of an insertion: id assignment, slot placement
    /// (free-list reuse or growth), and the id → slot table append.
    /// Shared by [`ContextPool::insert`] (which then orders the index
    /// entries immediately) and [`ContextPool::insert_batch`] (which
    /// defers ordering to one repair per touched bucket).
    fn arena_insert(&mut self, ctx: Context) -> (ContextId, SlotHandle) {
        let id = ContextId::from_raw(self.next_id);
        self.next_id += 1;
        self.inserted += 1;
        self.stored += 1;
        let stamp = ctx.stamp();
        let slot = match self.free.pop() {
            Some(slot) => {
                let i = slot as usize;
                self.payloads[i] = Some(ctx);
                self.slot_ids[i] = id;
                self.slot_stamps[i] = stamp;
                slot
            }
            None => {
                let slot = u32::try_from(self.payloads.len()).expect("pool slot count overflow");
                self.payloads.push(Some(ctx));
                self.slot_ids.push(id);
                self.slot_stamps.push(stamp);
                self.generations.push(0);
                slot
            }
        };
        self.id_slots.push(slot);
        let handle = SlotHandle {
            slot,
            generation: self.generations[slot as usize],
        };
        (id, handle)
    }

    /// Inserts a whole batch with deferred index maintenance: every
    /// context takes the same arena path as [`ContextPool::insert`] (so
    /// ids, slots, and generations come out identical), but its index
    /// handles are appended **unsorted**, and each touched kind /
    /// kind×subject bucket's `(stamp, id)` order is restored by one
    /// sort-merge per bucket per batch ([`repair_tail`]) instead of a
    /// binary-searched memmove per insert. The final pool state is
    /// byte-identical to inserting the contexts one by one.
    pub fn insert_batch(&mut self, batch: impl IntoIterator<Item = Context>) -> Vec<ContextId> {
        // Each touched vector's pre-batch length is its repair split
        // point: everything past it is this batch's unsorted tail.
        let mut all_splits: HashMap<ContextKind, usize> = HashMap::new();
        let mut subject_splits: HashMap<(ContextKind, Arc<str>), usize> = HashMap::new();
        let batch = batch.into_iter();
        let mut ids = Vec::with_capacity(batch.size_hint().0);
        for ctx in batch {
            let kind = ctx.kind().clone();
            let subject = Arc::clone(ctx.subject_arc());
            let (id, handle) = self.arena_insert(ctx);
            ids.push(id);
            let bucket = self.by_kind.entry(kind.clone()).or_default();
            all_splits.entry(kind.clone()).or_insert(bucket.all.len());
            let handles = bucket.by_subject.entry(Arc::clone(&subject)).or_default();
            subject_splits
                .entry((kind, subject))
                .or_insert(handles.len());
            handles.push(handle);
            bucket.all.push(handle);
        }
        for (kind, split) in all_splits {
            if let Some(bucket) = self.by_kind.get_mut(&kind) {
                repair_tail(&mut bucket.all, &self.slot_stamps, &self.slot_ids, split);
            }
        }
        for ((kind, subject), split) in subject_splits {
            if let Some(handles) = self
                .by_kind
                .get_mut(&kind)
                .and_then(|b| b.by_subject.get_mut(&subject))
            {
                repair_tail(handles, &self.slot_stamps, &self.slot_ids, split);
            }
        }
        ids
    }

    fn slot_of(&self, id: ContextId) -> Option<usize> {
        let raw = usize::try_from(id.raw()).ok()?;
        let slot = *self.id_slots.get(raw)?;
        (slot != NO_SLOT).then_some(slot as usize)
    }

    /// Resolves a handle to its slot index if the generation still
    /// matches (i.e. the context it was issued for is still stored).
    fn resolve(&self, handle: SlotHandle) -> Option<usize> {
        let i = handle.slot as usize;
        (self.generations[i] == handle.generation).then_some(i)
    }

    /// Looks up a context by id.
    pub fn get(&self, id: ContextId) -> Option<&Context> {
        self.payloads[self.slot_of(id)?].as_ref()
    }

    /// Looks up a context mutably by id.
    pub fn get_mut(&mut self, id: ContextId) -> Option<&mut Context> {
        let slot = self.slot_of(id)?;
        self.payloads[slot].as_mut()
    }

    /// Whether `id` refers to a stored context.
    pub fn contains(&self, id: ContextId) -> bool {
        self.slot_of(id).is_some()
    }

    /// Number of stored contexts (any state).
    pub fn len(&self) -> usize {
        self.stored
    }

    /// Whether the pool stores no contexts.
    pub fn is_empty(&self) -> bool {
        self.stored == 0
    }

    /// Iterates over all stored contexts in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = (ContextId, &Context)> {
        self.id_slots
            .iter()
            .filter(|&&slot| slot != NO_SLOT)
            .map(move |&slot| {
                let i = slot as usize;
                (
                    self.slot_ids[i],
                    self.payloads[i].as_ref().expect("occupied slot"),
                )
            })
    }

    /// Iterates a handle index, yielding live (not `Inconsistent`)
    /// contexts in the index's `(stamp, id)` order.
    fn iter_index<'a>(
        &'a self,
        index: Option<&'a [SlotHandle]>,
    ) -> impl Iterator<Item = (ContextId, &'a Context)> + 'a {
        index.into_iter().flatten().filter_map(move |&h| {
            let i = self.resolve(h)?;
            let c = self.payloads[i].as_ref()?;
            (c.state() != ContextState::Inconsistent).then_some((self.slot_ids[i], c))
        })
    }

    /// Iterates over *live* contexts of `kind` in `(stamp, id)` order.
    ///
    /// Live means: not discarded (`Inconsistent`). Constraints quantify
    /// over this view. Expired contexts are skipped by
    /// [`ContextPool::of_kind_live_at`]; this method ignores expiry.
    pub fn of_kind<'a>(
        &'a self,
        kind: &ContextKind,
    ) -> impl Iterator<Item = (ContextId, &'a Context)> + 'a {
        self.iter_index(self.by_kind.get(kind).map(|b| b.all.as_slice()))
    }

    /// Iterates over live, unexpired contexts of `kind` at instant `now`.
    pub fn of_kind_live_at<'a>(
        &'a self,
        kind: &ContextKind,
        now: LogicalTime,
    ) -> impl Iterator<Item = (ContextId, &'a Context)> + 'a {
        self.of_kind(kind).filter(move |(_, c)| c.is_live(now))
    }

    /// Iterates over live contexts of `kind` about `subject`, in
    /// `(stamp, id)` order.
    pub fn of_subject<'a>(
        &'a self,
        kind: &ContextKind,
        subject: &str,
    ) -> impl Iterator<Item = (ContextId, &'a Context)> + 'a {
        self.iter_index(
            self.by_kind
                .get(kind)
                .and_then(|b| b.by_subject.get(subject))
                .map(Vec::as_slice),
        )
    }

    /// Iterates over live, unexpired contexts of `kind` about `subject`
    /// at instant `now` — the domain a subject-scoped constraint check
    /// quantifies over instead of the whole kind.
    pub fn of_subject_live_at<'a>(
        &'a self,
        kind: &ContextKind,
        subject: &str,
        now: LogicalTime,
    ) -> impl Iterator<Item = (ContextId, &'a Context)> + 'a {
        self.of_subject(kind, subject)
            .filter(move |(_, c)| c.is_live(now))
    }

    /// Live (non-discarded) context count per subject, across all kinds
    /// — the per-shard load histogram hot-shard rebalancing consumes.
    pub fn subject_counts(&self) -> BTreeMap<String, usize> {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for bucket in self.by_kind.values() {
            for (subject, handles) in &bucket.by_subject {
                let live = handles
                    .iter()
                    .filter(|&&h| {
                        self.resolve(h)
                            .and_then(|i| self.payloads[i].as_ref())
                            .is_some_and(|c| c.state() != ContextState::Inconsistent)
                    })
                    .count();
                if live > 0 {
                    *counts.entry(subject.to_string()).or_default() += live;
                }
            }
        }
        counts
    }

    /// Iterates over the contexts currently *available* to applications
    /// (`Consistent` and unexpired), in arrival order.
    pub fn available_at<'a>(
        &'a self,
        now: LogicalTime,
    ) -> impl Iterator<Item = (ContextId, &'a Context)> + 'a {
        self.iter()
            .filter(move |(_, c)| c.state().is_available() && c.is_live(now))
    }

    /// The most recent available context of `kind` about `subject`.
    pub fn latest_available(
        &self,
        kind: &ContextKind,
        subject: &str,
        now: LogicalTime,
    ) -> Option<(ContextId, &Context)> {
        self.of_subject(kind, subject)
            .filter(|(_, c)| c.state().is_available() && c.is_live(now))
            .last()
    }

    /// Transitions a context's state, enforcing the life cycle.
    ///
    /// # Errors
    ///
    /// [`ContextError::UnknownContext`] when `id` is absent;
    /// [`ContextError::IllegalTransition`] when the life cycle forbids it.
    pub fn set_state(&mut self, id: ContextId, next: ContextState) -> Result<(), ContextError> {
        self.get_mut(id)
            .ok_or(ContextError::UnknownContext(id))?
            .set_state(next)
    }

    /// Discards a context unconditionally, setting it `Inconsistent`
    /// regardless of its current state.
    ///
    /// The four-state life cycle of Fig. 8 belongs to the drop-bad
    /// strategy; the eager baseline strategies (drop-all in particular)
    /// discard contexts that were already delivered (`Consistent`), a
    /// transition the strict [`ContextPool::set_state`] rejects. This
    /// method is their escape hatch. Idempotent on already-discarded
    /// contexts.
    ///
    /// # Errors
    ///
    /// [`ContextError::UnknownContext`] when `id` is absent.
    pub fn discard(&mut self, id: ContextId) -> Result<(), ContextError> {
        self.get_mut(id)
            .ok_or(ContextError::UnknownContext(id))?
            .force_state(ContextState::Inconsistent);
        Ok(())
    }

    /// Frees a context's arena slot without touching the kind indexes;
    /// the caller purges the affected buckets afterwards (individually
    /// for one-off removals, once per bucket for bulk sweeps).
    fn release_slot(&mut self, id: ContextId) -> Option<Context> {
        let slot = self.slot_of(id)?;
        let ctx = self.payloads[slot].take()?;
        self.id_slots[id.raw() as usize] = NO_SLOT;
        self.generations[slot] = self.generations[slot].wrapping_add(1);
        self.free.push(slot as u32);
        self.stored -= 1;
        self.recycles += 1;
        Some(ctx)
    }

    /// Drops every dead handle from the kind/subject indexes of `kind`,
    /// and the bucket entries that become empty with them.
    fn purge_kind_index(&mut self, kind: &ContextKind) {
        let Some(bucket) = self.by_kind.get_mut(kind) else {
            return;
        };
        let generations = &self.generations;
        bucket
            .all
            .retain(|h| generations[h.slot as usize] == h.generation);
        bucket.by_subject.retain(|_, handles| {
            handles.retain(|h| generations[h.slot as usize] == h.generation);
            !handles.is_empty()
        });
        if bucket.all.is_empty() {
            self.by_kind.remove(kind);
        }
    }

    /// Physically removes the contexts selected by `doom`, purging each
    /// affected kind index once rather than per removal.
    ///
    /// Scans occupied slots directly rather than going through
    /// [`Self::iter`]: the id table grows monotonically with every
    /// insertion ever made, so an id-ordered walk would make each
    /// sweep O(total inserts) — ruinous for the per-submit retention
    /// compaction on long runs — while the slot arrays stay sized to
    /// the stored population. Removal needs no particular order.
    fn remove_where(&mut self, doom: impl Fn(&Context) -> bool) -> usize {
        let doomed: Vec<(ContextId, ContextKind)> = self
            .payloads
            .iter()
            .zip(&self.slot_ids)
            .filter_map(|(payload, &id)| payload.as_ref().map(|c| (id, c)))
            .filter(|(_, c)| doom(c))
            .map(|(id, c)| (id, c.kind().clone()))
            .collect();
        let mut kinds: Vec<ContextKind> = Vec::new();
        for (id, kind) in &doomed {
            self.release_slot(*id);
            if !kinds.contains(kind) {
                kinds.push(kind.clone());
            }
        }
        for kind in &kinds {
            self.purge_kind_index(kind);
        }
        doomed.len()
    }

    /// Compacts the pool for long-running deployments: physically
    /// removes contexts stamped before `horizon` that are no longer
    /// useful — discarded (`Inconsistent`) ones and expired ones. Live
    /// and undecided recent contexts are untouched. Returns how many
    /// were removed.
    pub fn compact(&mut self, horizon: LogicalTime) -> usize {
        self.remove_where(|c| {
            c.stamp() < horizon && (c.state() == ContextState::Inconsistent || !c.is_live(horizon))
        })
    }

    /// Removes expired contexts from the pool and returns how many were
    /// dropped. Discarded contexts are kept regardless (for metrics).
    pub fn sweep_expired(&mut self, now: LogicalTime) -> usize {
        self.remove_where(|c| !c.is_live(now) && c.state() != ContextState::Inconsistent)
    }

    /// Physically removes a context and its index entries.
    pub fn remove(&mut self, id: ContextId) -> Option<Context> {
        let ctx = self.release_slot(id)?;
        let kind = ctx.kind().clone();
        self.purge_kind_index(&kind);
        Some(ctx)
    }

    /// Consumes the pool, yielding its contexts in arrival order.
    fn drain_arrival_order(mut self) -> impl Iterator<Item = Context> {
        let id_slots = std::mem::take(&mut self.id_slots);
        id_slots
            .into_iter()
            .filter(|&slot| slot != NO_SLOT)
            .map(move |slot| self.payloads[slot as usize].take().expect("occupied slot"))
    }

    /// Splits the pool into `n` pools by a routing function over the
    /// contexts (e.g. a subject hash for a sharded middleware). Context
    /// ids are reassigned per target pool, preserving arrival order
    /// within each; states and attributes are kept.
    ///
    /// Routing indices are taken modulo `n`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn split_by(self, n: usize, mut route: impl FnMut(&Context) -> usize) -> Vec<ContextPool> {
        assert!(n > 0, "cannot split into zero pools");
        let mut out: Vec<ContextPool> = (0..n).map(|_| ContextPool::new()).collect();
        for ctx in self.drain_arrival_order() {
            let slot = route(&ctx) % n;
            out[slot].insert(ctx);
        }
        out
    }

    /// Merges another pool into this one, re-inserting its contexts in
    /// their arrival order (their ids are reassigned; states are kept).
    /// The inverse of [`ContextPool::split_by`] up to id renumbering.
    pub fn absorb(&mut self, other: ContextPool) {
        for ctx in other.drain_arrival_order() {
            self.insert(ctx);
        }
    }

    /// An id-free content fingerprint: one `(kind, subject, stamp,
    /// state)` entry per stored context, sorted. Two pools with equal
    /// signatures hold the same contexts in the same states, regardless
    /// of insertion order or id assignment — the determinism oracle the
    /// sharded-middleware tests compare against a single-threaded run.
    pub fn signature(&self) -> Vec<(ContextKind, String, LogicalTime, ContextState)> {
        let mut sig: Vec<_> = self
            .payloads
            .iter()
            .flatten()
            .map(|c| {
                (
                    c.kind().clone(),
                    c.subject().to_owned(),
                    c.stamp(),
                    c.state(),
                )
            })
            .collect();
        sig.sort_by(|a, b| (&a.0, &a.1, a.2, a.3 as u8).cmp(&(&b.0, &b.1, b.2, b.3 as u8)));
        sig
    }

    /// Current statistics.
    pub fn stats(&self) -> PoolStats {
        let mut s = PoolStats {
            inserted: self.inserted,
            stored: self.stored,
            ..PoolStats::default()
        };
        for c in self.payloads.iter().flatten() {
            match c.state() {
                ContextState::Undecided => s.undecided += 1,
                ContextState::Consistent => s.consistent += 1,
                ContextState::Bad => s.bad += 1,
                ContextState::Inconsistent => s.inconsistent += 1,
            }
        }
        s
    }

    /// Occupied arena slots (== [`ContextPool::len`]): contexts
    /// currently stored, whatever their state.
    pub fn live_slots(&self) -> usize {
        self.stored
    }

    /// Arena slots on the free list, ready for reuse. `live + free`
    /// is the arena's high-water footprint.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Lifetime count of slot recycles (generation bumps). A recycle
    /// happens on every removal; a count that grows while `live_slots`
    /// stays flat means the arena is turning slots over rather than
    /// growing — the healthy steady state.
    pub fn slot_recycles(&self) -> u64 {
        self.recycles
    }

    /// Per-kind occupancy watermarks: for each kind with a bucket, the
    /// live context count plus the stamp and TTL of the oldest live
    /// context (the bucket is `(stamp, id)`-sorted, so the first live
    /// handle is the oldest). Feeds the staleness estimators in the
    /// observability layer.
    pub fn kind_watermarks(&self) -> Vec<KindWatermark> {
        let mut marks: Vec<KindWatermark> = self
            .by_kind
            .iter()
            .map(|(kind, bucket)| {
                let mut live = 0usize;
                let mut oldest: Option<&Context> = None;
                for &h in &bucket.all {
                    let Some(i) = self.resolve(h) else { continue };
                    let Some(c) = self.payloads[i].as_ref() else {
                        continue;
                    };
                    if c.state() == ContextState::Inconsistent {
                        continue;
                    }
                    live += 1;
                    if oldest.is_none() {
                        oldest = Some(c);
                    }
                }
                KindWatermark {
                    kind: kind.clone(),
                    live,
                    oldest_stamp: oldest.map(|c| c.stamp()),
                    oldest_ttl: oldest.and_then(|c| {
                        let exp = c.lifespan().expires_at()?;
                        Some((exp - c.stamp()).count())
                    }),
                }
            })
            .collect();
        marks.sort_by(|a, b| a.kind.cmp(&b.kind));
        marks
    }
}

impl Extend<Context> for ContextPool {
    fn extend<T: IntoIterator<Item = Context>>(&mut self, iter: T) {
        for c in iter {
            self.insert(c);
        }
    }
}

impl FromIterator<Context> for ContextPool {
    fn from_iter<T: IntoIterator<Item = Context>>(iter: T) -> Self {
        let mut pool = ContextPool::new();
        pool.extend(iter);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{Lifespan, Ticks};

    fn loc(subject: &str, t: u64) -> Context {
        Context::builder(ContextKind::new("location"), subject)
            .stamp(LogicalTime::new(t))
            .build()
    }

    #[test]
    fn insert_assigns_monotonic_ids() {
        let mut pool = ContextPool::new();
        let a = pool.insert(loc("p", 1));
        let b = pool.insert(loc("p", 2));
        assert!(a < b);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn kind_index_filters_by_kind() {
        let mut pool = ContextPool::new();
        pool.insert(loc("p", 1));
        pool.insert(Context::builder(ContextKind::new("rfid"), "tag").build());
        assert_eq!(pool.of_kind(&ContextKind::new("location")).count(), 1);
        assert_eq!(pool.of_kind(&ContextKind::new("rfid")).count(), 1);
        assert_eq!(pool.of_kind(&ContextKind::new("nope")).count(), 0);
    }

    #[test]
    fn subject_index_filters_by_subject() {
        let mut pool = ContextPool::new();
        pool.insert(loc("peter", 1));
        pool.insert(loc("mary", 2));
        pool.insert(loc("peter", 3));
        let kind = ContextKind::new("location");
        assert_eq!(pool.of_subject(&kind, "peter").count(), 2);
        assert_eq!(pool.of_subject(&kind, "mary").count(), 1);
    }

    #[test]
    fn discarded_contexts_leave_live_views() {
        let mut pool = ContextPool::new();
        let id = pool.insert(loc("p", 1));
        pool.set_state(id, ContextState::Inconsistent).unwrap();
        let kind = ContextKind::new("location");
        assert_eq!(pool.of_kind(&kind).count(), 0);
        assert_eq!(pool.of_subject(&kind, "p").count(), 0);
        assert!(pool.contains(id), "kept for metrics");
    }

    #[test]
    fn available_view_requires_consistent_and_live() {
        let mut pool = ContextPool::new();
        let now = LogicalTime::new(10);
        let fresh = pool.insert(loc("p", 9));
        let stale = pool.insert(
            Context::builder(ContextKind::new("location"), "p")
                .stamp(LogicalTime::new(1))
                .lifespan(Lifespan::with_ttl(LogicalTime::new(1), Ticks::new(2)))
                .build(),
        );
        pool.set_state(fresh, ContextState::Consistent).unwrap();
        pool.set_state(stale, ContextState::Consistent).unwrap();
        let avail: Vec<ContextId> = pool.available_at(now).map(|(id, _)| id).collect();
        assert_eq!(avail, vec![fresh]);
    }

    #[test]
    fn latest_available_picks_newest() {
        let mut pool = ContextPool::new();
        let a = pool.insert(loc("p", 1));
        let b = pool.insert(loc("p", 2));
        pool.set_state(a, ContextState::Consistent).unwrap();
        pool.set_state(b, ContextState::Consistent).unwrap();
        let kind = ContextKind::new("location");
        let (latest, _) = pool
            .latest_available(&kind, "p", LogicalTime::new(5))
            .unwrap();
        assert_eq!(latest, b);
    }

    #[test]
    fn sweep_expired_removes_dead_contexts() {
        let mut pool = ContextPool::new();
        pool.insert(
            Context::builder(ContextKind::new("location"), "p")
                .stamp(LogicalTime::new(0))
                .lifespan(Lifespan::with_ttl(LogicalTime::new(0), Ticks::new(3)))
                .build(),
        );
        pool.insert(loc("p", 1));
        assert_eq!(pool.sweep_expired(LogicalTime::new(10)), 1);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn set_state_unknown_context_errors() {
        let mut pool = ContextPool::new();
        let err = pool.set_state(ContextId::from_raw(99), ContextState::Consistent);
        assert_eq!(
            err,
            Err(ContextError::UnknownContext(ContextId::from_raw(99)))
        );
    }

    #[test]
    fn remove_cleans_indexes() {
        let mut pool = ContextPool::new();
        let id = pool.insert(loc("p", 1));
        assert!(pool.remove(id).is_some());
        assert!(pool.remove(id).is_none());
        assert_eq!(pool.of_kind(&ContextKind::new("location")).count(), 0);
        assert!(pool.is_empty());
    }

    #[test]
    fn stats_count_states() {
        let mut pool = ContextPool::new();
        let a = pool.insert(loc("p", 1));
        let b = pool.insert(loc("p", 2));
        pool.insert(loc("p", 3));
        pool.set_state(a, ContextState::Consistent).unwrap();
        pool.set_state(b, ContextState::Bad).unwrap();
        let s = pool.stats();
        assert_eq!(s.inserted, 3);
        assert_eq!(s.stored, 3);
        assert_eq!(s.consistent, 1);
        assert_eq!(s.bad, 1);
        assert_eq!(s.undecided, 1);
        assert_eq!(s.inconsistent, 0);
    }

    #[test]
    fn from_iterator_collects() {
        let pool: ContextPool = (0..4).map(|t| loc("p", t)).collect();
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn arena_gauges_track_occupancy_and_recycles() {
        let mut pool = ContextPool::new();
        let a = pool.insert(loc("p", 1));
        let b = pool.insert(loc("p", 2));
        assert_eq!(pool.live_slots(), 2);
        assert_eq!(pool.free_slots(), 0);
        assert_eq!(pool.slot_recycles(), 0);
        pool.remove(a).unwrap();
        assert_eq!(pool.live_slots(), 1);
        assert_eq!(pool.free_slots(), 1);
        assert_eq!(pool.slot_recycles(), 1);
        // Reuse the freed slot: occupancy recovers, the recycle count
        // keeps its history.
        let c = pool.insert(loc("p", 3));
        assert_eq!(pool.live_slots(), 2);
        assert_eq!(pool.free_slots(), 0);
        assert_eq!(pool.slot_recycles(), 1);
        pool.remove(b).unwrap();
        pool.remove(c).unwrap();
        assert_eq!(pool.slot_recycles(), 3);
    }

    #[test]
    fn kind_watermarks_report_oldest_live_context() {
        let mut pool = ContextPool::new();
        let oldest = pool.insert(
            Context::builder(ContextKind::new("location"), "p")
                .stamp(LogicalTime::new(2))
                .lifespan(Lifespan::with_ttl(LogicalTime::new(2), Ticks::new(10)))
                .build(),
        );
        pool.insert(loc("p", 7));
        pool.insert(Context::builder(ContextKind::new("rfid"), "tag").build());

        let marks = pool.kind_watermarks();
        assert_eq!(marks.len(), 2);
        let loc_mark = &marks[0];
        assert_eq!(loc_mark.kind, ContextKind::new("location"));
        assert_eq!(loc_mark.live, 2);
        assert_eq!(loc_mark.oldest_stamp, Some(LogicalTime::new(2)));
        assert_eq!(loc_mark.oldest_ttl, Some(10));
        let rfid_mark = &marks[1];
        assert_eq!(rfid_mark.live, 1);
        assert_eq!(rfid_mark.oldest_ttl, None, "forever contexts have no ttl");

        // Discarding the oldest moves the watermark to the next live one.
        pool.discard(oldest).unwrap();
        let marks = pool.kind_watermarks();
        assert_eq!(marks[0].live, 1);
        assert_eq!(marks[0].oldest_stamp, Some(LogicalTime::new(7)));
        assert_eq!(marks[0].oldest_ttl, None);
    }

    #[test]
    fn compact_removes_only_old_dead_contexts() {
        let mut pool = ContextPool::new();
        let discarded_old = pool.insert(loc("p", 1));
        pool.discard(discarded_old).unwrap();
        let expired_old = pool.insert(
            Context::builder(ContextKind::new("location"), "p")
                .stamp(LogicalTime::new(2))
                .lifespan(Lifespan::with_ttl(LogicalTime::new(2), Ticks::new(3)))
                .build(),
        );
        let live_old = pool.insert(loc("p", 3)); // lives forever
        let recent = pool.insert(loc("p", 90));
        let discarded_recent = pool.insert(loc("p", 95));
        pool.discard(discarded_recent).unwrap();

        let removed = pool.compact(LogicalTime::new(50));
        assert_eq!(removed, 2);
        assert!(!pool.contains(discarded_old));
        assert!(!pool.contains(expired_old));
        assert!(pool.contains(live_old), "undiscarded forever-contexts stay");
        assert!(pool.contains(recent));
        assert!(
            pool.contains(discarded_recent),
            "recent discards stay for metrics"
        );
    }

    #[test]
    fn split_by_partitions_and_absorb_reassembles() {
        let mut pool = ContextPool::new();
        for (s, t) in [("peter", 1), ("mary", 2), ("peter", 3), ("john", 4)] {
            pool.insert(loc(s, t));
        }
        let discarded = pool.insert(loc("mary", 5));
        pool.discard(discarded).unwrap();
        let before = pool.signature();

        let shards = pool.split_by(2, |c| c.subject().len());
        assert_eq!(shards.iter().map(ContextPool::len).sum::<usize>(), 5);
        // "mary" and "john" (len 4) land together, apart from "peter".
        assert!(shards.iter().all(|s| {
            let subjects: std::collections::BTreeSet<&str> =
                s.iter().map(|(_, c)| c.subject()).collect();
            !(subjects.contains("peter") && subjects.contains("mary"))
        }));

        let mut merged = ContextPool::new();
        for shard in shards {
            merged.absorb(shard);
        }
        assert_eq!(
            merged.signature(),
            before,
            "states and contents survive the round trip"
        );
        assert_eq!(merged.stats().inconsistent, 1, "discarded state preserved");
    }

    #[test]
    fn signature_ignores_insertion_order() {
        let mut a = ContextPool::new();
        a.insert(loc("p", 1));
        a.insert(loc("q", 2));
        let mut b = ContextPool::new();
        b.insert(loc("q", 2));
        b.insert(loc("p", 1));
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    #[should_panic(expected = "zero pools")]
    fn split_into_zero_pools_panics() {
        ContextPool::new().split_by(0, |_| 0);
    }

    #[test]
    fn of_kind_live_at_skips_expired() {
        let mut pool = ContextPool::new();
        pool.insert(
            Context::builder(ContextKind::new("location"), "p")
                .stamp(LogicalTime::new(0))
                .lifespan(Lifespan::with_ttl(LogicalTime::new(0), Ticks::new(2)))
                .build(),
        );
        pool.insert(loc("p", 1));
        let kind = ContextKind::new("location");
        assert_eq!(pool.of_kind_live_at(&kind, LogicalTime::new(1)).count(), 2);
        assert_eq!(pool.of_kind_live_at(&kind, LogicalTime::new(5)).count(), 1);
    }

    #[test]
    fn slot_reuse_invalidates_stale_ids_and_reorders_nothing() {
        let mut pool = ContextPool::new();
        let a = pool.insert(loc("p", 1));
        let b = pool.insert(loc("p", 2));
        pool.remove(a);
        // The freed slot is reused, but the old id must stay dead.
        let c = pool.insert(loc("q", 3));
        assert!(pool.get(a).is_none());
        assert!(!pool.contains(a));
        assert_eq!(pool.get(c).unwrap().subject(), "q");
        let order: Vec<ContextId> = pool.iter().map(|(id, _)| id).collect();
        assert_eq!(order, vec![b, c], "arrival order survives slot reuse");
        assert_eq!(pool.of_kind(&ContextKind::new("location")).count(), 2);
    }

    #[test]
    fn of_kind_order_is_stamp_then_id_even_for_stale_arrivals() {
        let mut pool = ContextPool::new();
        let late = pool.insert(loc("p", 10));
        let early = pool.insert(loc("p", 2)); // arrives after, stamped before
        let tie = pool.insert(loc("q", 10));
        let kind = ContextKind::new("location");
        let order: Vec<ContextId> = pool.of_kind(&kind).map(|(id, _)| id).collect();
        assert_eq!(order, vec![early, late, tie], "(stamp, id) order");
        let by_subject: Vec<ContextId> = pool.of_subject(&kind, "p").map(|(id, _)| id).collect();
        assert_eq!(by_subject, vec![early, late]);
    }

    #[test]
    fn of_subject_live_at_restricts_domain() {
        let mut pool = ContextPool::new();
        pool.insert(loc("p", 1));
        pool.insert(loc("q", 2));
        pool.insert(
            Context::builder(ContextKind::new("location"), "p")
                .stamp(LogicalTime::new(3))
                .lifespan(Lifespan::with_ttl(LogicalTime::new(3), Ticks::new(2)))
                .build(),
        );
        let kind = ContextKind::new("location");
        assert_eq!(
            pool.of_subject_live_at(&kind, "p", LogicalTime::new(4))
                .count(),
            2
        );
        assert_eq!(
            pool.of_subject_live_at(&kind, "p", LogicalTime::new(9))
                .count(),
            1,
            "expired drops out"
        );
        assert_eq!(
            pool.of_subject_live_at(&kind, "q", LogicalTime::new(4))
                .count(),
            1
        );
    }

    #[test]
    fn subject_counts_track_live_contexts() {
        let mut pool = ContextPool::new();
        pool.insert(loc("p", 1));
        pool.insert(loc("p", 2));
        let doomed = pool.insert(loc("q", 3));
        pool.insert(Context::builder(ContextKind::new("rfid"), "p").build());
        pool.discard(doomed).unwrap();
        let counts = pool.subject_counts();
        assert_eq!(counts.get("p"), Some(&3), "all kinds count");
        assert_eq!(counts.get("q"), None, "discarded contexts do not");
    }

    #[test]
    fn insert_batch_matches_sequential_inserts() {
        // Mixed kinds, duplicate subjects, and out-of-order stamps: the
        // deferred-repair path must produce the same ids and the same
        // index iteration order as one-at-a-time insertion.
        let make = |tag: &str| -> Vec<Context> {
            vec![
                loc("peter", 10),
                loc("mary", 4),
                loc("peter", 2), // out of order within the batch
                Context::builder(ContextKind::new(tag), "peter").build(),
                loc("mary", 7),
                loc("peter", 10), // stamp tie, id breaks it
            ]
        };
        let mut seq = ContextPool::new();
        let seq_ids: Vec<ContextId> = make("rfid").into_iter().map(|c| seq.insert(c)).collect();
        let mut batched = ContextPool::new();
        let batch_ids = batched.insert_batch(make("rfid"));
        assert_eq!(seq_ids, batch_ids);
        assert_eq!(seq.signature(), batched.signature());
        let kind = ContextKind::new("location");
        let seq_order: Vec<ContextId> = seq.of_kind(&kind).map(|(id, _)| id).collect();
        let batch_order: Vec<ContextId> = batched.of_kind(&kind).map(|(id, _)| id).collect();
        assert_eq!(seq_order, batch_order);
        for subject in ["peter", "mary"] {
            let s: Vec<ContextId> = seq.of_subject(&kind, subject).map(|(id, _)| id).collect();
            let b: Vec<ContextId> = batched
                .of_subject(&kind, subject)
                .map(|(id, _)| id)
                .collect();
            assert_eq!(s, b, "subject {subject}");
        }
    }

    #[test]
    fn insert_batch_merges_across_existing_entries() {
        // A batch whose stamps interleave with pre-existing entries
        // exercises the head/tail merge, not just the tail sort.
        let mut seq = ContextPool::new();
        let mut batched = ContextPool::new();
        for c in [loc("p", 5), loc("p", 20), loc("q", 9)] {
            seq.insert(c.clone());
            batched.insert(c);
        }
        let late = vec![loc("p", 1), loc("p", 12), loc("q", 3), loc("p", 30)];
        for c in late.clone() {
            seq.insert(c);
        }
        batched.insert_batch(late);
        let kind = ContextKind::new("location");
        assert_eq!(
            seq.of_kind(&kind).map(|(id, _)| id).collect::<Vec<_>>(),
            batched.of_kind(&kind).map(|(id, _)| id).collect::<Vec<_>>()
        );
        for subject in ["p", "q"] {
            assert_eq!(
                seq.of_subject(&kind, subject)
                    .map(|(id, _)| id)
                    .collect::<Vec<_>>(),
                batched
                    .of_subject(&kind, subject)
                    .map(|(id, _)| id)
                    .collect::<Vec<_>>(),
                "subject {subject}"
            );
        }
    }

    #[test]
    fn bulk_sweep_purges_indexes_once() {
        let mut pool = ContextPool::new();
        for t in 0..50 {
            pool.insert(
                Context::builder(ContextKind::new("location"), "p")
                    .stamp(LogicalTime::new(t))
                    .lifespan(Lifespan::with_ttl(LogicalTime::new(t), Ticks::new(5)))
                    .build(),
            );
        }
        pool.insert(loc("p", 100));
        assert_eq!(pool.sweep_expired(LogicalTime::new(200)), 50);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.of_kind(&ContextKind::new("location")).count(), 1);
        assert_eq!(
            pool.of_subject(&ContextKind::new("location"), "p").count(),
            1
        );
    }
}

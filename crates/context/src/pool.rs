//! The context pool: indexed storage of managed contexts.

use crate::context::{Context, ContextId, ContextKind};
use crate::error::ContextError;
use crate::state::ContextState;
use crate::time::LogicalTime;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Counters describing a pool's contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Total contexts ever inserted.
    pub inserted: u64,
    /// Contexts currently stored (any state).
    pub stored: usize,
    /// Contexts in the `Consistent` state.
    pub consistent: usize,
    /// Contexts in the `Undecided` state.
    pub undecided: usize,
    /// Contexts in the `Bad` state.
    pub bad: usize,
    /// Contexts in the `Inconsistent` (discarded) state.
    pub inconsistent: usize,
}

/// Indexed storage for the contexts a middleware manages.
///
/// The pool assigns [`ContextId`]s in arrival order and maintains
/// secondary indexes by kind and by `(kind, subject)`. Discarded
/// (`Inconsistent`) contexts stay stored for post-mortem metrics but are
/// excluded from the live views that constraints quantify over.
///
/// ```
/// use ctxres_context::{Context, ContextKind, ContextPool, LogicalTime};
///
/// let mut pool = ContextPool::new();
/// let kind = ContextKind::new("location");
/// let id = pool.insert(Context::builder(kind.clone(), "peter").stamp(LogicalTime::new(1)).build());
/// assert_eq!(pool.of_kind(&kind).count(), 1);
/// assert_eq!(pool.get(id).unwrap().subject(), "peter");
/// ```
#[derive(Debug, Default, Clone)]
pub struct ContextPool {
    entries: BTreeMap<ContextId, Context>,
    by_kind: HashMap<ContextKind, Vec<ContextId>>,
    /// Nested so lookups can borrow the caller's `&str` subject — a flat
    /// `(ContextKind, String)` key would force a key clone per lookup.
    by_kind_subject: HashMap<ContextKind, HashMap<Arc<str>, Vec<ContextId>>>,
    next_id: u64,
    inserted: u64,
}

impl ContextPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        ContextPool::default()
    }

    /// Inserts a context, assigning it the next arrival-ordered id.
    pub fn insert(&mut self, ctx: Context) -> ContextId {
        let id = ContextId::from_raw(self.next_id);
        self.next_id += 1;
        self.inserted += 1;
        self.by_kind.entry(ctx.kind().clone()).or_default().push(id);
        self.by_kind_subject
            .entry(ctx.kind().clone())
            .or_default()
            .entry(Arc::clone(ctx.subject_shared()))
            .or_default()
            .push(id);
        self.entries.insert(id, ctx);
        id
    }

    /// Looks up a context by id.
    pub fn get(&self, id: ContextId) -> Option<&Context> {
        self.entries.get(&id)
    }

    /// Looks up a context mutably by id.
    pub fn get_mut(&mut self, id: ContextId) -> Option<&mut Context> {
        self.entries.get_mut(&id)
    }

    /// Whether `id` refers to a stored context.
    pub fn contains(&self, id: ContextId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Number of stored contexts (any state).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool stores no contexts.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all stored contexts in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = (ContextId, &Context)> {
        self.entries.iter().map(|(id, c)| (*id, c))
    }

    /// Iterates over *live* contexts of `kind` in arrival order.
    ///
    /// Live means: not discarded (`Inconsistent`). Constraints quantify
    /// over this view. Expired contexts are skipped by
    /// [`ContextPool::of_kind_live_at`]; this method ignores expiry.
    pub fn of_kind<'a>(
        &'a self,
        kind: &ContextKind,
    ) -> impl Iterator<Item = (ContextId, &'a Context)> + 'a {
        self.by_kind
            .get(kind)
            .into_iter()
            .flatten()
            .filter_map(move |id| {
                let c = &self.entries[id];
                (c.state() != ContextState::Inconsistent).then_some((*id, c))
            })
    }

    /// Iterates over live, unexpired contexts of `kind` at instant `now`.
    pub fn of_kind_live_at<'a>(
        &'a self,
        kind: &ContextKind,
        now: LogicalTime,
    ) -> impl Iterator<Item = (ContextId, &'a Context)> + 'a {
        self.of_kind(kind).filter(move |(_, c)| c.is_live(now))
    }

    /// Iterates over live contexts of `kind` about `subject`, in arrival
    /// order.
    pub fn of_subject<'a>(
        &'a self,
        kind: &ContextKind,
        subject: &str,
    ) -> impl Iterator<Item = (ContextId, &'a Context)> + 'a {
        self.by_kind_subject
            .get(kind)
            .and_then(|subjects| subjects.get(subject))
            .into_iter()
            .flatten()
            .filter_map(move |id| {
                let c = &self.entries[id];
                (c.state() != ContextState::Inconsistent).then_some((*id, c))
            })
    }

    /// Iterates over the contexts currently *available* to applications
    /// (`Consistent` and unexpired).
    pub fn available_at<'a>(
        &'a self,
        now: LogicalTime,
    ) -> impl Iterator<Item = (ContextId, &'a Context)> + 'a {
        self.entries
            .iter()
            .filter(move |(_, c)| c.state().is_available() && c.is_live(now))
            .map(|(id, c)| (*id, c))
    }

    /// The most recent available context of `kind` about `subject`.
    pub fn latest_available(
        &self,
        kind: &ContextKind,
        subject: &str,
        now: LogicalTime,
    ) -> Option<(ContextId, &Context)> {
        self.of_subject(kind, subject)
            .filter(|(_, c)| c.state().is_available() && c.is_live(now))
            .last()
    }

    /// Transitions a context's state, enforcing the life cycle.
    ///
    /// # Errors
    ///
    /// [`ContextError::UnknownContext`] when `id` is absent;
    /// [`ContextError::IllegalTransition`] when the life cycle forbids it.
    pub fn set_state(&mut self, id: ContextId, next: ContextState) -> Result<(), ContextError> {
        let ctx = self
            .entries
            .get_mut(&id)
            .ok_or(ContextError::UnknownContext(id))?;
        ctx.set_state(next)
    }

    /// Discards a context unconditionally, setting it `Inconsistent`
    /// regardless of its current state.
    ///
    /// The four-state life cycle of Fig. 8 belongs to the drop-bad
    /// strategy; the eager baseline strategies (drop-all in particular)
    /// discard contexts that were already delivered (`Consistent`), a
    /// transition the strict [`ContextPool::set_state`] rejects. This
    /// method is their escape hatch. Idempotent on already-discarded
    /// contexts.
    ///
    /// # Errors
    ///
    /// [`ContextError::UnknownContext`] when `id` is absent.
    pub fn discard(&mut self, id: ContextId) -> Result<(), ContextError> {
        let ctx = self
            .entries
            .get_mut(&id)
            .ok_or(ContextError::UnknownContext(id))?;
        ctx.force_state(ContextState::Inconsistent);
        Ok(())
    }

    /// Compacts the pool for long-running deployments: physically
    /// removes contexts stamped before `horizon` that are no longer
    /// useful — discarded (`Inconsistent`) ones and expired ones. Live
    /// and undecided recent contexts are untouched. Returns how many
    /// were removed.
    pub fn compact(&mut self, horizon: LogicalTime) -> usize {
        let doomed: Vec<ContextId> = self
            .entries
            .iter()
            .filter(|(_, c)| {
                c.stamp() < horizon
                    && (c.state() == ContextState::Inconsistent || !c.is_live(horizon))
            })
            .map(|(id, _)| *id)
            .collect();
        for id in &doomed {
            self.remove(*id);
        }
        doomed.len()
    }

    /// Removes expired contexts from the pool and returns how many were
    /// dropped. Discarded contexts are kept regardless (for metrics).
    pub fn sweep_expired(&mut self, now: LogicalTime) -> usize {
        let doomed: Vec<ContextId> = self
            .entries
            .iter()
            .filter(|(_, c)| !c.is_live(now) && c.state() != ContextState::Inconsistent)
            .map(|(id, _)| *id)
            .collect();
        for id in &doomed {
            self.remove(*id);
        }
        doomed.len()
    }

    /// Physically removes a context and its index entries.
    pub fn remove(&mut self, id: ContextId) -> Option<Context> {
        let ctx = self.entries.remove(&id)?;
        if let Some(v) = self.by_kind.get_mut(ctx.kind()) {
            v.retain(|i| *i != id);
        }
        if let Some(v) = self
            .by_kind_subject
            .get_mut(ctx.kind())
            .and_then(|subjects| subjects.get_mut(ctx.subject()))
        {
            v.retain(|i| *i != id);
        }
        Some(ctx)
    }

    /// Splits the pool into `n` pools by a routing function over the
    /// contexts (e.g. a subject hash for a sharded middleware). Context
    /// ids are reassigned per target pool, preserving arrival order
    /// within each; states and attributes are kept.
    ///
    /// Routing indices are taken modulo `n`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn split_by(self, n: usize, mut route: impl FnMut(&Context) -> usize) -> Vec<ContextPool> {
        assert!(n > 0, "cannot split into zero pools");
        let mut out: Vec<ContextPool> = (0..n).map(|_| ContextPool::new()).collect();
        for (_, ctx) in self.entries {
            let slot = route(&ctx) % n;
            let state = ctx.state();
            let id = out[slot].insert(ctx);
            out[slot]
                .get_mut(id)
                .expect("just inserted")
                .force_state(state);
        }
        out
    }

    /// Merges another pool into this one, re-inserting its contexts in
    /// their arrival order (their ids are reassigned; states are kept).
    /// The inverse of [`ContextPool::split_by`] up to id renumbering.
    pub fn absorb(&mut self, other: ContextPool) {
        for (_, ctx) in other.entries {
            let state = ctx.state();
            let id = self.insert(ctx);
            self.get_mut(id).expect("just inserted").force_state(state);
        }
    }

    /// An id-free content fingerprint: one `(kind, subject, stamp,
    /// state)` entry per stored context, sorted. Two pools with equal
    /// signatures hold the same contexts in the same states, regardless
    /// of insertion order or id assignment — the determinism oracle the
    /// sharded-middleware tests compare against a single-threaded run.
    pub fn signature(&self) -> Vec<(ContextKind, String, LogicalTime, ContextState)> {
        let mut sig: Vec<_> = self
            .entries
            .values()
            .map(|c| {
                (
                    c.kind().clone(),
                    c.subject().to_owned(),
                    c.stamp(),
                    c.state(),
                )
            })
            .collect();
        sig.sort_by(|a, b| (&a.0, &a.1, a.2, a.3 as u8).cmp(&(&b.0, &b.1, b.2, b.3 as u8)));
        sig
    }

    /// Current statistics.
    pub fn stats(&self) -> PoolStats {
        let mut s = PoolStats {
            inserted: self.inserted,
            stored: self.entries.len(),
            ..PoolStats::default()
        };
        for c in self.entries.values() {
            match c.state() {
                ContextState::Undecided => s.undecided += 1,
                ContextState::Consistent => s.consistent += 1,
                ContextState::Bad => s.bad += 1,
                ContextState::Inconsistent => s.inconsistent += 1,
            }
        }
        s
    }
}

impl Extend<Context> for ContextPool {
    fn extend<T: IntoIterator<Item = Context>>(&mut self, iter: T) {
        for c in iter {
            self.insert(c);
        }
    }
}

impl FromIterator<Context> for ContextPool {
    fn from_iter<T: IntoIterator<Item = Context>>(iter: T) -> Self {
        let mut pool = ContextPool::new();
        pool.extend(iter);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{Lifespan, Ticks};

    fn loc(subject: &str, t: u64) -> Context {
        Context::builder(ContextKind::new("location"), subject)
            .stamp(LogicalTime::new(t))
            .build()
    }

    #[test]
    fn insert_assigns_monotonic_ids() {
        let mut pool = ContextPool::new();
        let a = pool.insert(loc("p", 1));
        let b = pool.insert(loc("p", 2));
        assert!(a < b);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn kind_index_filters_by_kind() {
        let mut pool = ContextPool::new();
        pool.insert(loc("p", 1));
        pool.insert(Context::builder(ContextKind::new("rfid"), "tag").build());
        assert_eq!(pool.of_kind(&ContextKind::new("location")).count(), 1);
        assert_eq!(pool.of_kind(&ContextKind::new("rfid")).count(), 1);
        assert_eq!(pool.of_kind(&ContextKind::new("nope")).count(), 0);
    }

    #[test]
    fn subject_index_filters_by_subject() {
        let mut pool = ContextPool::new();
        pool.insert(loc("peter", 1));
        pool.insert(loc("mary", 2));
        pool.insert(loc("peter", 3));
        let kind = ContextKind::new("location");
        assert_eq!(pool.of_subject(&kind, "peter").count(), 2);
        assert_eq!(pool.of_subject(&kind, "mary").count(), 1);
    }

    #[test]
    fn discarded_contexts_leave_live_views() {
        let mut pool = ContextPool::new();
        let id = pool.insert(loc("p", 1));
        pool.set_state(id, ContextState::Inconsistent).unwrap();
        let kind = ContextKind::new("location");
        assert_eq!(pool.of_kind(&kind).count(), 0);
        assert_eq!(pool.of_subject(&kind, "p").count(), 0);
        assert!(pool.contains(id), "kept for metrics");
    }

    #[test]
    fn available_view_requires_consistent_and_live() {
        let mut pool = ContextPool::new();
        let now = LogicalTime::new(10);
        let fresh = pool.insert(loc("p", 9));
        let stale = pool.insert(
            Context::builder(ContextKind::new("location"), "p")
                .stamp(LogicalTime::new(1))
                .lifespan(Lifespan::with_ttl(LogicalTime::new(1), Ticks::new(2)))
                .build(),
        );
        pool.set_state(fresh, ContextState::Consistent).unwrap();
        pool.set_state(stale, ContextState::Consistent).unwrap();
        let avail: Vec<ContextId> = pool.available_at(now).map(|(id, _)| id).collect();
        assert_eq!(avail, vec![fresh]);
    }

    #[test]
    fn latest_available_picks_newest() {
        let mut pool = ContextPool::new();
        let a = pool.insert(loc("p", 1));
        let b = pool.insert(loc("p", 2));
        pool.set_state(a, ContextState::Consistent).unwrap();
        pool.set_state(b, ContextState::Consistent).unwrap();
        let kind = ContextKind::new("location");
        let (latest, _) = pool
            .latest_available(&kind, "p", LogicalTime::new(5))
            .unwrap();
        assert_eq!(latest, b);
    }

    #[test]
    fn sweep_expired_removes_dead_contexts() {
        let mut pool = ContextPool::new();
        pool.insert(
            Context::builder(ContextKind::new("location"), "p")
                .stamp(LogicalTime::new(0))
                .lifespan(Lifespan::with_ttl(LogicalTime::new(0), Ticks::new(3)))
                .build(),
        );
        pool.insert(loc("p", 1));
        assert_eq!(pool.sweep_expired(LogicalTime::new(10)), 1);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn set_state_unknown_context_errors() {
        let mut pool = ContextPool::new();
        let err = pool.set_state(ContextId::from_raw(99), ContextState::Consistent);
        assert_eq!(
            err,
            Err(ContextError::UnknownContext(ContextId::from_raw(99)))
        );
    }

    #[test]
    fn remove_cleans_indexes() {
        let mut pool = ContextPool::new();
        let id = pool.insert(loc("p", 1));
        assert!(pool.remove(id).is_some());
        assert!(pool.remove(id).is_none());
        assert_eq!(pool.of_kind(&ContextKind::new("location")).count(), 0);
        assert!(pool.is_empty());
    }

    #[test]
    fn stats_count_states() {
        let mut pool = ContextPool::new();
        let a = pool.insert(loc("p", 1));
        let b = pool.insert(loc("p", 2));
        pool.insert(loc("p", 3));
        pool.set_state(a, ContextState::Consistent).unwrap();
        pool.set_state(b, ContextState::Bad).unwrap();
        let s = pool.stats();
        assert_eq!(s.inserted, 3);
        assert_eq!(s.stored, 3);
        assert_eq!(s.consistent, 1);
        assert_eq!(s.bad, 1);
        assert_eq!(s.undecided, 1);
        assert_eq!(s.inconsistent, 0);
    }

    #[test]
    fn from_iterator_collects() {
        let pool: ContextPool = (0..4).map(|t| loc("p", t)).collect();
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn compact_removes_only_old_dead_contexts() {
        let mut pool = ContextPool::new();
        let discarded_old = pool.insert(loc("p", 1));
        pool.discard(discarded_old).unwrap();
        let expired_old = pool.insert(
            Context::builder(ContextKind::new("location"), "p")
                .stamp(LogicalTime::new(2))
                .lifespan(Lifespan::with_ttl(LogicalTime::new(2), Ticks::new(3)))
                .build(),
        );
        let live_old = pool.insert(loc("p", 3)); // lives forever
        let recent = pool.insert(loc("p", 90));
        let discarded_recent = pool.insert(loc("p", 95));
        pool.discard(discarded_recent).unwrap();

        let removed = pool.compact(LogicalTime::new(50));
        assert_eq!(removed, 2);
        assert!(!pool.contains(discarded_old));
        assert!(!pool.contains(expired_old));
        assert!(pool.contains(live_old), "undiscarded forever-contexts stay");
        assert!(pool.contains(recent));
        assert!(
            pool.contains(discarded_recent),
            "recent discards stay for metrics"
        );
    }

    #[test]
    fn split_by_partitions_and_absorb_reassembles() {
        let mut pool = ContextPool::new();
        for (s, t) in [("peter", 1), ("mary", 2), ("peter", 3), ("john", 4)] {
            pool.insert(loc(s, t));
        }
        let discarded = pool.insert(loc("mary", 5));
        pool.discard(discarded).unwrap();
        let before = pool.signature();

        let shards = pool.split_by(2, |c| c.subject().len());
        assert_eq!(shards.iter().map(ContextPool::len).sum::<usize>(), 5);
        // "mary" and "john" (len 4) land together, apart from "peter".
        assert!(shards.iter().all(|s| {
            let subjects: std::collections::BTreeSet<&str> =
                s.iter().map(|(_, c)| c.subject()).collect();
            !(subjects.contains("peter") && subjects.contains("mary"))
        }));

        let mut merged = ContextPool::new();
        for shard in shards {
            merged.absorb(shard);
        }
        assert_eq!(
            merged.signature(),
            before,
            "states and contents survive the round trip"
        );
        assert_eq!(merged.stats().inconsistent, 1, "discarded state preserved");
    }

    #[test]
    fn signature_ignores_insertion_order() {
        let mut a = ContextPool::new();
        a.insert(loc("p", 1));
        a.insert(loc("q", 2));
        let mut b = ContextPool::new();
        b.insert(loc("q", 2));
        b.insert(loc("p", 1));
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    #[should_panic(expected = "zero pools")]
    fn split_into_zero_pools_panics() {
        ContextPool::new().split_by(0, |_| 0);
    }

    #[test]
    fn of_kind_live_at_skips_expired() {
        let mut pool = ContextPool::new();
        pool.insert(
            Context::builder(ContextKind::new("location"), "p")
                .stamp(LogicalTime::new(0))
                .lifespan(Lifespan::with_ttl(LogicalTime::new(0), Ticks::new(2)))
                .build(),
        );
        pool.insert(loc("p", 1));
        let kind = ContextKind::new("location");
        assert_eq!(pool.of_kind_live_at(&kind, LogicalTime::new(1)).count(), 2);
        assert_eq!(pool.of_kind_live_at(&kind, LogicalTime::new(5)).count(), 1);
    }
}

//! Logical time for deterministic simulation.
//!
//! All `ctxres` components run on a logical clock: experiments are
//! reproducible bit-for-bit from their seed because nothing reads the wall
//! clock. A [`LogicalTime`] is a monotonically increasing tick counter and
//! a [`Lifespan`] bounds how long a context stays usable (the paper's
//! "available period").

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point on the simulation's logical clock.
///
/// Ordered, cheap to copy, and never tied to the wall clock.
///
/// ```
/// use ctxres_context::LogicalTime;
/// let t = LogicalTime::new(3);
/// assert!(t < t + 2);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LogicalTime(u64);

impl LogicalTime {
    /// The origin of logical time.
    pub const ZERO: LogicalTime = LogicalTime(0);

    /// Creates a logical time at tick `tick`.
    pub const fn new(tick: u64) -> Self {
        LogicalTime(tick)
    }

    /// Returns the raw tick counter.
    pub const fn tick(self) -> u64 {
        self.0
    }

    /// Returns the number of ticks elapsed since `earlier`, saturating at
    /// zero when `earlier` is in the future.
    pub fn since(self, earlier: LogicalTime) -> Ticks {
        Ticks(self.0.saturating_sub(earlier.0))
    }

    /// Advances the clock by one tick.
    pub fn advance(&mut self) {
        self.0 += 1;
    }
}

impl fmt::Display for LogicalTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for LogicalTime {
    fn from(tick: u64) -> Self {
        LogicalTime(tick)
    }
}

impl Add<u64> for LogicalTime {
    type Output = LogicalTime;

    fn add(self, rhs: u64) -> LogicalTime {
        LogicalTime(self.0 + rhs)
    }
}

impl Add<Ticks> for LogicalTime {
    type Output = LogicalTime;

    fn add(self, rhs: Ticks) -> LogicalTime {
        LogicalTime(self.0 + rhs.0)
    }
}

impl AddAssign<u64> for LogicalTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<LogicalTime> for LogicalTime {
    type Output = Ticks;

    fn sub(self, rhs: LogicalTime) -> Ticks {
        self.since(rhs)
    }
}

/// A span of logical time, measured in ticks.
///
/// ```
/// use ctxres_context::{LogicalTime, Ticks};
/// assert_eq!(LogicalTime::new(7) - LogicalTime::new(4), Ticks::new(3));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ticks(u64);

impl Ticks {
    /// A zero-length span.
    pub const ZERO: Ticks = Ticks(0);

    /// Creates a span of `n` ticks.
    pub const fn new(n: u64) -> Self {
        Ticks(n)
    }

    /// Returns the raw tick count.
    pub const fn count(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Ticks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ticks", self.0)
    }
}

impl From<u64> for Ticks {
    fn from(n: u64) -> Self {
        Ticks(n)
    }
}

impl Add for Ticks {
    type Output = Ticks;

    fn add(self, rhs: Ticks) -> Ticks {
        Ticks(self.0 + rhs.0)
    }
}

/// The available period of a context (paper §3.2: a context "is still
/// available until it expires according to its own available period").
///
/// A lifespan pairs the creation instant with an optional time-to-live.
/// A `ttl` of `None` means the context never expires on its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Lifespan {
    created: LogicalTime,
    ttl: Option<Ticks>,
}

impl Lifespan {
    /// A lifespan starting at `created` that never expires.
    pub const fn forever(created: LogicalTime) -> Self {
        Lifespan { created, ttl: None }
    }

    /// A lifespan starting at `created` that expires after `ttl` ticks.
    pub const fn with_ttl(created: LogicalTime, ttl: Ticks) -> Self {
        Lifespan {
            created,
            ttl: Some(ttl),
        }
    }

    /// The instant this lifespan began.
    pub const fn created(self) -> LogicalTime {
        self.created
    }

    /// The configured time-to-live, if any.
    pub const fn ttl(self) -> Option<Ticks> {
        self.ttl
    }

    /// The instant at which the context expires, if it ever does.
    pub fn expires_at(self) -> Option<LogicalTime> {
        self.ttl.map(|t| self.created + t)
    }

    /// Whether the context is still live at instant `now`.
    ///
    /// Expiry is exclusive: a context with ttl 5 created at t0 is live at
    /// t4 and expired at t5.
    pub fn is_live(self, now: LogicalTime) -> bool {
        match self.expires_at() {
            Some(deadline) => now < deadline,
            None => true,
        }
    }
}

impl Default for Lifespan {
    fn default() -> Self {
        Lifespan::forever(LogicalTime::ZERO)
    }
}

impl fmt::Display for Lifespan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.ttl {
            Some(t) => write!(f, "[{} +{}]", self.created, t),
            None => write!(f, "[{} +∞]", self.created),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_time_orders_and_adds() {
        let a = LogicalTime::new(5);
        let b = a + 3;
        assert!(b > a);
        assert_eq!(b.tick(), 8);
        assert_eq!(b - a, Ticks::new(3));
    }

    #[test]
    fn since_saturates() {
        let early = LogicalTime::new(2);
        let late = LogicalTime::new(9);
        assert_eq!(late.since(early), Ticks::new(7));
        assert_eq!(early.since(late), Ticks::ZERO);
    }

    #[test]
    fn advance_increments() {
        let mut t = LogicalTime::ZERO;
        t.advance();
        t.advance();
        assert_eq!(t, LogicalTime::new(2));
    }

    #[test]
    fn add_assign_works() {
        let mut t = LogicalTime::new(1);
        t += 4;
        assert_eq!(t.tick(), 5);
    }

    #[test]
    fn forever_lifespan_never_expires() {
        let l = Lifespan::forever(LogicalTime::new(1));
        assert!(l.is_live(LogicalTime::new(u64::MAX)));
        assert_eq!(l.expires_at(), None);
    }

    #[test]
    fn ttl_lifespan_expiry_is_exclusive() {
        let l = Lifespan::with_ttl(LogicalTime::new(10), Ticks::new(5));
        assert!(l.is_live(LogicalTime::new(14)));
        assert!(!l.is_live(LogicalTime::new(15)));
        assert_eq!(l.expires_at(), Some(LogicalTime::new(15)));
    }

    #[test]
    fn ticks_add() {
        assert_eq!(Ticks::new(2) + Ticks::new(3), Ticks::new(5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(LogicalTime::new(4).to_string(), "t4");
        assert_eq!(Ticks::new(2).to_string(), "2 ticks");
        assert_eq!(
            Lifespan::with_ttl(LogicalTime::new(1), Ticks::new(2)).to_string(),
            "[t1 +2 ticks]"
        );
    }
}

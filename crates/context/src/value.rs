//! Attribute values carried by contexts.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A planar point, used for location contexts.
///
/// ```
/// use ctxres_context::Point;
/// let origin = Point::new(0.0, 0.0);
/// assert!((origin.distance(Point::new(3.0, 4.0)) - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate, in metres.
    pub x: f64,
    /// Vertical coordinate, in metres.
    pub y: f64,
}

impl Point {
    /// Creates a point at `(x, y)`.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Midpoint between `self` and `other`.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

/// A typed attribute value of a context.
///
/// Contexts are heterogeneous (locations, RFID reads, user actions), so
/// attributes carry one of a small set of value types. Comparison
/// predicates in the constraint language operate over these.
///
/// ```
/// use ctxres_context::ContextValue;
/// let v = ContextValue::from(42i64);
/// assert_eq!(v.as_f64(), Some(42.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ContextValue {
    /// A boolean flag.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A text value (room names, tag ids, …).
    Text(String),
    /// A planar point (location estimates).
    Point(Point),
}

impl ContextValue {
    /// Returns the value as an `f64` when it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ContextValue::Int(i) => Some(*i as f64),
            ContextValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the value as an `i64` when it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ContextValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the value as a boolean when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ContextValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the value as text when it is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            ContextValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as a point when it is one.
    pub fn as_point(&self) -> Option<Point> {
        match self {
            ContextValue::Point(p) => Some(*p),
            _ => None,
        }
    }

    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            ContextValue::Bool(_) => "bool",
            ContextValue::Int(_) => "int",
            ContextValue::Float(_) => "float",
            ContextValue::Text(_) => "text",
            ContextValue::Point(_) => "point",
        }
    }

    /// Compares two values when they are comparable.
    ///
    /// Numeric values compare numerically across `Int`/`Float`; text
    /// compares lexicographically; booleans compare with `false < true`.
    /// Points and mixed incomparable types return `None`.
    pub fn partial_cmp_value(&self, other: &ContextValue) -> Option<Ordering> {
        use ContextValue::*;
        match (self, other) {
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Text(a), Text(b)) => Some(a.cmp(b)),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.partial_cmp(&y),
                _ => None,
            },
        }
    }
}

impl fmt::Display for ContextValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContextValue::Bool(b) => write!(f, "{b}"),
            ContextValue::Int(i) => write!(f, "{i}"),
            // Debug formatting keeps a decimal point on integral
            // values ("4.0", not "4"), so printing a float never
            // re-parses as an integer.
            ContextValue::Float(x) => write!(f, "{x:?}"),
            ContextValue::Text(s) => write!(f, "{s:?}"),
            ContextValue::Point(p) => write!(f, "{p}"),
        }
    }
}

impl From<bool> for ContextValue {
    fn from(b: bool) -> Self {
        ContextValue::Bool(b)
    }
}

impl From<i64> for ContextValue {
    fn from(i: i64) -> Self {
        ContextValue::Int(i)
    }
}

impl From<i32> for ContextValue {
    fn from(i: i32) -> Self {
        ContextValue::Int(i64::from(i))
    }
}

impl From<u32> for ContextValue {
    fn from(i: u32) -> Self {
        ContextValue::Int(i64::from(i))
    }
}

impl From<f64> for ContextValue {
    fn from(f: f64) -> Self {
        ContextValue::Float(f)
    }
}

impl From<&str> for ContextValue {
    fn from(s: &str) -> Self {
        ContextValue::Text(s.to_owned())
    }
}

impl From<String> for ContextValue {
    fn from(s: String) -> Self {
        ContextValue::Text(s)
    }
}

impl From<Point> for ContextValue {
    fn from(p: Point) -> Self {
        ContextValue::Point(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn midpoint_halves() {
        let m = Point::new(0.0, 0.0).midpoint(Point::new(2.0, 4.0));
        assert_eq!(m, Point::new(1.0, 2.0));
    }

    #[test]
    fn numeric_coercion_crosses_int_float() {
        assert_eq!(ContextValue::Int(3).as_f64(), Some(3.0));
        assert_eq!(ContextValue::Float(3.5).as_f64(), Some(3.5));
        assert_eq!(ContextValue::Text("x".into()).as_f64(), None);
    }

    #[test]
    fn accessors_reject_wrong_types() {
        let v = ContextValue::from("room-a");
        assert_eq!(v.as_text(), Some("room-a"));
        assert_eq!(v.as_bool(), None);
        assert_eq!(v.as_i64(), None);
        assert_eq!(v.as_point(), None);
    }

    #[test]
    fn mixed_numeric_comparison() {
        let a = ContextValue::Int(2);
        let b = ContextValue::Float(2.5);
        assert_eq!(a.partial_cmp_value(&b), Some(Ordering::Less));
        assert_eq!(b.partial_cmp_value(&a), Some(Ordering::Greater));
    }

    #[test]
    fn incomparable_types_return_none() {
        let a = ContextValue::from(Point::new(0.0, 0.0));
        let b = ContextValue::Int(1);
        assert_eq!(a.partial_cmp_value(&b), None);
        assert_eq!(ContextValue::from("a").partial_cmp_value(&b), None);
    }

    #[test]
    fn text_comparison_is_lexicographic() {
        let a = ContextValue::from("alpha");
        let b = ContextValue::from("beta");
        assert_eq!(a.partial_cmp_value(&b), Some(Ordering::Less));
    }

    #[test]
    fn type_names_are_stable() {
        assert_eq!(ContextValue::Bool(true).type_name(), "bool");
        assert_eq!(ContextValue::Int(0).type_name(), "int");
        assert_eq!(ContextValue::Float(0.0).type_name(), "float");
        assert_eq!(ContextValue::Text(String::new()).type_name(), "text");
        assert_eq!(ContextValue::Point(Point::default()).type_name(), "point");
    }

    #[test]
    fn display_is_nonempty() {
        for v in [
            ContextValue::Bool(false),
            ContextValue::Int(1),
            ContextValue::Float(1.5),
            ContextValue::Text("t".into()),
            ContextValue::Point(Point::new(1.0, 2.0)),
        ] {
            assert!(!v.to_string().is_empty());
        }
    }
}

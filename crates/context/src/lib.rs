//! Context model for pervasive computing applications.
//!
//! This crate provides the substrate data model used throughout the
//! `ctxres` workspace, a reproduction of the ICDCS 2008 paper
//! *"Heuristics-Based Strategies for Resolving Context Inconsistencies in
//! Pervasive Computing Applications"* (Xu, Cheung, Chan, Ye).
//!
//! A *context* is a piece of information that captures a characteristic of
//! a computing environment: a tracked location, an RFID read, a badge
//! sighting. Contexts are produced by distributed, noisy sources and are
//! managed by a middleware on behalf of context-aware applications.
//!
//! The model implemented here follows the paper:
//!
//! * every context carries a **logical timestamp** ([`LogicalTime`]) and a
//!   **lifespan** ([`Lifespan`]) after which it expires;
//! * every context is in one of four **life-cycle states**
//!   ([`ContextState`]): `Undecided`, `Consistent`, `Bad`, `Inconsistent`
//!   (paper Fig. 8);
//! * contexts live in a [`ContextPool`] indexed by kind, subject and
//!   arrival order, from which consistency constraints draw their
//!   quantification domains.
//!
//! # Example
//!
//! ```
//! use ctxres_context::{Context, ContextKind, ContextPool, ContextValue, LogicalTime};
//!
//! let mut pool = ContextPool::new();
//! let ctx = Context::builder(ContextKind::new("location"), "peter")
//!     .attr("x", 1.5)
//!     .attr("y", 2.0)
//!     .stamp(LogicalTime::new(1))
//!     .build();
//! let id = pool.insert(ctx);
//! assert_eq!(pool.get(id).unwrap().attr("x"), Some(&ContextValue::from(1.5)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod error;
mod pool;
mod state;
mod time;
mod value;

pub use context::{Context, ContextBuilder, ContextId, ContextKind, SourceId, TruthTag};
pub use error::ContextError;
pub use pool::{ContextPool, KindWatermark, PoolStats};
pub use state::ContextState;
pub use time::{Lifespan, LogicalTime, Ticks};
pub use value::{ContextValue, Point};

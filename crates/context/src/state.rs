//! The four-state context life cycle (paper Fig. 8).

use crate::error::ContextError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Life-cycle state of a context (paper §3.3, Fig. 8).
///
/// * `Undecided` — the initial state: the context is relevant to some
///   consistency constraint and sits in the middleware buffer waiting for
///   a decision.
/// * `Consistent` — decided correct; available to applications.
/// * `Bad` — marked for eventual discard: some inconsistency it
///   participates in was resolved in favour of another context, so this
///   one *will* be set `Inconsistent` when it is eventually used. The
///   deferral lets the middleware keep collecting count-value evidence.
/// * `Inconsistent` — decided corrupted and discarded.
///
/// Legal transitions:
///
/// ```text
/// Undecided ──► Consistent
/// Undecided ──► Bad ──► Inconsistent
/// Undecided ──► Inconsistent
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum ContextState {
    /// Initial state; awaiting a resolution decision.
    #[default]
    Undecided,
    /// Decided correct; usable by applications.
    Consistent,
    /// Scheduled to be discarded when used (deferred `Inconsistent`).
    Bad,
    /// Decided corrupted; discarded.
    Inconsistent,
}

impl ContextState {
    /// Whether a context in this state may be delivered to applications.
    pub fn is_available(self) -> bool {
        matches!(self, ContextState::Consistent)
    }

    /// Whether this state is terminal (no further transitions).
    pub fn is_terminal(self) -> bool {
        matches!(self, ContextState::Consistent | ContextState::Inconsistent)
    }

    /// Checks that a transition from `self` to `next` follows Fig. 8.
    ///
    /// # Errors
    ///
    /// Returns [`ContextError::IllegalTransition`] for any transition not
    /// in the life-cycle diagram (including self-loops from terminal
    /// states).
    pub fn transition(self, next: ContextState) -> Result<ContextState, ContextError> {
        use ContextState::*;
        let ok = matches!(
            (self, next),
            (Undecided, Consistent)
                | (Undecided, Bad)
                | (Undecided, Inconsistent)
                | (Bad, Inconsistent)
        );
        if ok {
            Ok(next)
        } else {
            Err(ContextError::IllegalTransition {
                from: self,
                to: next,
            })
        }
    }
}

impl fmt::Display for ContextState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ContextState::Undecided => "undecided",
            ContextState::Consistent => "consistent",
            ContextState::Bad => "bad",
            ContextState::Inconsistent => "inconsistent",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ContextState::*;

    #[test]
    fn legal_transitions_follow_fig8() {
        assert_eq!(Undecided.transition(Consistent).unwrap(), Consistent);
        assert_eq!(Undecided.transition(Bad).unwrap(), Bad);
        assert_eq!(Undecided.transition(Inconsistent).unwrap(), Inconsistent);
        assert_eq!(Bad.transition(Inconsistent).unwrap(), Inconsistent);
    }

    #[test]
    fn illegal_transitions_rejected() {
        for (from, to) in [
            (Consistent, Bad),
            (Consistent, Inconsistent),
            (Consistent, Undecided),
            (Inconsistent, Consistent),
            (Bad, Consistent),
            (Bad, Undecided),
            (Undecided, Undecided),
            (Bad, Bad),
        ] {
            assert!(
                from.transition(to).is_err(),
                "{from} -> {to} must be illegal"
            );
        }
    }

    #[test]
    fn availability_only_when_consistent() {
        assert!(Consistent.is_available());
        for s in [Undecided, Bad, Inconsistent] {
            assert!(!s.is_available());
        }
    }

    #[test]
    fn terminal_states() {
        assert!(Consistent.is_terminal());
        assert!(Inconsistent.is_terminal());
        assert!(!Undecided.is_terminal());
        assert!(!Bad.is_terminal());
    }

    #[test]
    fn default_is_undecided() {
        assert_eq!(ContextState::default(), Undecided);
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(Undecided.to_string(), "undecided");
        assert_eq!(Bad.to_string(), "bad");
    }
}

//! RSSI trilateration — a second localization technique.
//!
//! The paper's related-work section (§6) contrasts drop-bad with systems
//! that "use multiple context-detectors (e.g., multiple localization
//! techniques) to mask error in one technique by redundancy", and calls
//! the approaches orthogonal. To make that comparison runnable, this
//! module implements the classic alternative to LANDMARC's scene
//! analysis: invert the path-loss model into per-reader range estimates
//! and solve the resulting multilateration system by linear least
//! squares. [`FusedEstimator`] averages both techniques — the redundancy
//! baseline.

use crate::knn::KnnEstimator;
use crate::radio::PathLossModel;
use ctxres_context::Point;
use rand::Rng;

/// Range-based trilateration over the same readers and radio model the
/// k-NN estimator uses.
#[derive(Debug, Clone)]
pub struct TrilaterationEstimator {
    readers: Vec<Point>,
    model: PathLossModel,
}

impl TrilaterationEstimator {
    /// Creates an estimator for the given reader positions.
    ///
    /// # Panics
    ///
    /// Panics with fewer than three readers (the system is
    /// under-determined).
    pub fn new(readers: Vec<Point>, model: PathLossModel) -> Self {
        assert!(
            readers.len() >= 3,
            "trilateration needs at least three readers"
        );
        TrilaterationEstimator { readers, model }
    }

    /// Inverts the mean path-loss curve into a range estimate.
    pub fn range_from_rssi(&self, rssi: f64) -> f64 {
        self.model.d0 * 10f64.powf((self.model.p0 - rssi) / (10.0 * self.model.n))
    }

    /// Estimates a position from one RSSI per reader.
    ///
    /// Uses the standard linearization: subtracting the first circle
    /// equation from the others gives a linear system `A x = b`, solved
    /// via the 2×2 normal equations. Returns the anchor centroid when
    /// the system is degenerate (collinear readers).
    pub fn estimate(&self, rssi: &[f64]) -> Point {
        assert_eq!(rssi.len(), self.readers.len(), "one RSSI per reader");
        let ranges: Vec<f64> = rssi.iter().map(|r| self.range_from_rssi(*r)).collect();
        let p0 = self.readers[0];
        let r0 = ranges[0];
        // Rows: 2(xi - x0) x + 2(yi - y0) y = (xi² - x0²) + (yi² - y0²) + r0² - ri²
        let mut ata = [[0.0f64; 2]; 2];
        let mut atb = [0.0f64; 2];
        for (i, pi) in self.readers.iter().enumerate().skip(1) {
            let a = [2.0 * (pi.x - p0.x), 2.0 * (pi.y - p0.y)];
            let b = (pi.x * pi.x - p0.x * p0.x) + (pi.y * pi.y - p0.y * p0.y) + r0 * r0
                - ranges[i] * ranges[i];
            ata[0][0] += a[0] * a[0];
            ata[0][1] += a[0] * a[1];
            ata[1][0] += a[1] * a[0];
            ata[1][1] += a[1] * a[1];
            atb[0] += a[0] * b;
            atb[1] += a[1] * b;
        }
        let det = ata[0][0] * ata[1][1] - ata[0][1] * ata[1][0];
        if det.abs() < 1e-9 {
            // Degenerate geometry: fall back to the anchor centroid.
            let n = self.readers.len() as f64;
            let (sx, sy) = self
                .readers
                .iter()
                .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
            return Point::new(sx / n, sy / n);
        }
        Point::new(
            (atb[0] * ata[1][1] - atb[1] * ata[0][1]) / det,
            (ata[0][0] * atb[1] - ata[1][0] * atb[0]) / det,
        )
    }

    /// Measures at `pos` and estimates in one step.
    pub fn locate(&self, true_pos: Point, rng: &mut impl Rng) -> Point {
        let rssi: Vec<f64> = self
            .readers
            .iter()
            .map(|r| self.model.sample_rssi(r.distance(true_pos), rng))
            .collect();
        self.estimate(&rssi)
    }
}

/// Averages the k-NN and trilateration estimates — the §6 redundancy
/// baseline (two independent techniques masking each other's noise).
#[derive(Debug, Clone)]
pub struct FusedEstimator {
    knn: KnnEstimator,
    reference_map: Vec<Vec<f64>>,
    trilateration: TrilaterationEstimator,
}

impl FusedEstimator {
    /// Builds the fusion from a k-NN estimator (the trilateration half
    /// reuses its readers and radio model).
    pub fn new(knn: KnnEstimator, model: PathLossModel) -> Self {
        let reference_map = knn.reference_map();
        let trilateration = TrilaterationEstimator::new(knn.plan().readers().to_vec(), model);
        FusedEstimator {
            knn,
            reference_map,
            trilateration,
        }
    }

    /// Locates `true_pos` with both techniques and averages.
    pub fn locate(&self, true_pos: Point, rng: &mut impl Rng) -> Point {
        let a = self.knn.locate(true_pos, &self.reference_map, rng);
        let b = self.trilateration.locate(true_pos, rng);
        a.midpoint(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;
    use crate::geom::Rect;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn readers() -> Vec<Point> {
        Floorplan::grid(Rect::new(0.0, 0.0, 20.0, 20.0), 2.0, 2)
            .readers()
            .to_vec()
    }

    #[test]
    fn range_inversion_matches_the_model() {
        let model = PathLossModel::default();
        let t = TrilaterationEstimator::new(readers(), model);
        for d in [1.0, 3.0, 10.0] {
            let rssi = model.mean_rssi(d);
            assert!((t.range_from_rssi(rssi) - d).abs() < 1e-9, "d={d}");
        }
    }

    #[test]
    fn noise_free_estimate_recovers_the_position() {
        let model = PathLossModel {
            sigma: 0.0,
            ..PathLossModel::default()
        };
        let t = TrilaterationEstimator::new(readers(), model);
        let mut rng = StdRng::seed_from_u64(1);
        let truth = Point::new(7.0, 12.0);
        let p = t.locate(truth, &mut rng);
        assert!(p.distance(truth) < 0.5, "error {}", p.distance(truth));
    }

    #[test]
    fn noisy_estimates_have_bounded_median_error() {
        let model = PathLossModel {
            sigma: 2.0,
            ..PathLossModel::default()
        };
        let t = TrilaterationEstimator::new(readers(), model);
        let mut rng = StdRng::seed_from_u64(3);
        let truth = Point::new(10.0, 10.0);
        let mut errors: Vec<f64> = (0..200)
            .map(|_| t.locate(truth, &mut rng).distance(truth))
            .collect();
        errors.sort_by(f64::total_cmp);
        assert!(
            errors[errors.len() / 2] < 6.0,
            "median {}",
            errors[errors.len() / 2]
        );
    }

    #[test]
    fn fusion_beats_the_worse_technique() {
        let model = PathLossModel {
            sigma: 2.0,
            ..PathLossModel::default()
        };
        let plan = Floorplan::grid(Rect::new(0.0, 0.0, 20.0, 20.0), 2.0, 2);
        let knn = KnnEstimator::new(plan, model, 4);
        let map = knn.reference_map();
        let tril = TrilaterationEstimator::new(knn.plan().readers().to_vec(), model);
        let fused = FusedEstimator::new(knn.clone(), model);
        let mut rng = StdRng::seed_from_u64(9);
        let mut err = (0.0, 0.0, 0.0);
        for _ in 0..300 {
            let truth = Point::new(rng.gen_range(2.0..18.0), rng.gen_range(2.0..18.0));
            err.0 += knn.locate(truth, &map, &mut rng).distance(truth);
            err.1 += tril.locate(truth, &mut rng).distance(truth);
            err.2 += fused.locate(truth, &mut rng).distance(truth);
        }
        let worst = err.0.max(err.1);
        assert!(
            err.2 < worst,
            "fusion {:.1} must beat the worse single technique {:.1}",
            err.2,
            worst
        );
    }

    #[test]
    #[should_panic(expected = "three readers")]
    fn too_few_readers_panics() {
        let _ = TrilaterationEstimator::new(
            vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)],
            PathLossModel::default(),
        );
    }

    #[test]
    #[should_panic(expected = "one RSSI per reader")]
    fn wrong_rssi_count_panics() {
        let t = TrilaterationEstimator::new(readers(), PathLossModel::default());
        let _ = t.estimate(&[-50.0]);
    }
}

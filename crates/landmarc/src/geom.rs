//! Planar geometry helpers.

use ctxres_context::Point;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned rectangle (the floor area).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from corner coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the corners are not ordered (`x0 <= x1 && y0 <= y1`).
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        assert!(x0 <= x1 && y0 <= y1, "rect corners must be ordered");
        Rect {
            min: Point::new(x0, y0),
            max: Point::new(x1, y1),
        }
    }

    /// Width of the rectangle.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height of the rectangle.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Whether `p` lies inside (inclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps `p` into the rectangle.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Samples a uniform point inside the rectangle.
    pub fn sample(&self, rng: &mut impl Rng) -> Point {
        Point::new(
            rng.gen_range(self.min.x..=self.max.x),
            rng.gen_range(self.min.y..=self.max.y),
        )
    }

    /// The rectangle's centre.
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dimensions() {
        let r = Rect::new(0.0, 0.0, 40.0, 30.0);
        assert_eq!(r.width(), 40.0);
        assert_eq!(r.height(), 30.0);
        assert_eq!(r.center(), Point::new(20.0, 15.0));
    }

    #[test]
    fn contains_and_clamp() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(r.contains(Point::new(5.0, 5.0)));
        assert!(r.contains(Point::new(0.0, 10.0)), "boundary inclusive");
        assert!(!r.contains(Point::new(-0.1, 5.0)));
        assert_eq!(r.clamp(Point::new(-5.0, 20.0)), Point::new(0.0, 10.0));
    }

    #[test]
    fn sample_stays_inside() {
        let r = Rect::new(2.0, 3.0, 4.0, 5.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(r.contains(r.sample(&mut rng)));
        }
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn unordered_corners_panic() {
        let _ = Rect::new(10.0, 0.0, 0.0, 10.0);
    }
}

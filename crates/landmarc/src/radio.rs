//! Log-distance path-loss radio model with lognormal shadowing.

use rand::Rng;
use rand_distr_normal::sample_normal;
use serde::{Deserialize, Serialize};

/// RSSI model: `rssi(d) = p0 - 10·n·log10(d/d0) + X`, with `X ~ N(0, σ²)`
/// shadowing noise — the standard indoor propagation model, and the
/// reason LANDMARC works in signal space rather than trusting a single
/// range estimate.
///
/// The original LANDMARC hardware reported one of 8 discrete power
/// levels; [`PathLossModel::power_level`] reproduces that quantization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathLossModel {
    /// Received power at the reference distance, in dBm.
    pub p0: f64,
    /// Path-loss exponent (≈ 2 free space, 2.5–4 indoors).
    pub n: f64,
    /// Shadowing standard deviation, in dB.
    pub sigma: f64,
    /// Reference distance, in metres.
    pub d0: f64,
}

impl Default for PathLossModel {
    fn default() -> Self {
        // Typical 303.8 MHz active-RFID indoor parameters.
        PathLossModel {
            p0: -40.0,
            n: 2.8,
            sigma: 2.0,
            d0: 1.0,
        }
    }
}

impl PathLossModel {
    /// Mean RSSI at distance `d` metres (no noise).
    pub fn mean_rssi(&self, d: f64) -> f64 {
        let d = d.max(0.1); // avoid the log singularity at contact
        self.p0 - 10.0 * self.n * (d / self.d0).log10()
    }

    /// A noisy RSSI sample at distance `d`.
    pub fn sample_rssi(&self, d: f64, rng: &mut impl Rng) -> f64 {
        self.mean_rssi(d) + sample_normal(rng) * self.sigma
    }

    /// Quantizes an RSSI into LANDMARC's 8 power levels (1 = weakest,
    /// 8 = strongest).
    pub fn power_level(&self, rssi: f64) -> u8 {
        // Map [-95, -40] dBm onto 1..=8.
        let lo = -95.0;
        let hi = self.p0;
        let t = ((rssi - lo) / (hi - lo)).clamp(0.0, 1.0);
        1 + (t * 7.0).round() as u8
    }
}

/// Standard-normal sampling via Box–Muller, kept dependency-free (the
/// `rand_distr` crate is not on the approved list).
mod rand_distr_normal {
    use rand::Rng;

    pub fn sample_normal(rng: &mut impl Rng) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rssi_decays_with_distance() {
        let m = PathLossModel::default();
        assert!(m.mean_rssi(1.0) > m.mean_rssi(5.0));
        assert!(m.mean_rssi(5.0) > m.mean_rssi(20.0));
    }

    #[test]
    fn reference_distance_gives_p0() {
        let m = PathLossModel::default();
        assert!((m.mean_rssi(1.0) - m.p0).abs() < 1e-12);
    }

    #[test]
    fn contact_distance_is_clamped() {
        let m = PathLossModel::default();
        assert!(m.mean_rssi(0.0).is_finite());
    }

    #[test]
    fn noise_has_roughly_configured_sigma() {
        let m = PathLossModel {
            sigma: 3.0,
            ..PathLossModel::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let n = 4000;
        let samples: Vec<f64> = (0..n).map(|_| m.sample_rssi(5.0, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - m.mean_rssi(5.0)).abs() < 0.3, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.3, "sd {}", var.sqrt());
    }

    #[test]
    fn power_levels_span_one_to_eight() {
        let m = PathLossModel::default();
        assert_eq!(m.power_level(m.p0), 8);
        assert_eq!(m.power_level(-100.0), 1);
        let mid = m.power_level(-70.0);
        assert!((2..=7).contains(&mid));
    }

    #[test]
    fn power_level_is_monotone_in_rssi() {
        let m = PathLossModel::default();
        let mut prev = 0;
        for rssi in (-100..=-40).step_by(5) {
            let lvl = m.power_level(rssi as f64);
            assert!(lvl >= prev);
            prev = lvl;
        }
    }
}

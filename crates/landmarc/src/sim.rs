//! The end-to-end location simulator with controlled error injection.

use crate::floorplan::Floorplan;
use crate::geom::Rect;
use crate::knn::KnnEstimator;
use crate::locator::{KnnLocator, Locator};
use crate::mobility::RandomWaypoint;
use crate::radio::PathLossModel;
use crate::trilateration::{FusedEstimator, TrilaterationEstimator};
use ctxres_context::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which localization technique the simulator runs (§6's "multiple
/// localization techniques" made selectable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EstimatorKind {
    /// LANDMARC k-NN scene analysis (the paper's technique).
    #[default]
    Knn,
    /// Range-based trilateration.
    Trilateration,
    /// Average of both (redundancy baseline).
    Fused,
}

/// Configuration of a [`LandmarcSim`].
#[derive(Debug, Clone)]
pub struct LandmarcConfig {
    /// Floor area.
    pub area: Rect,
    /// Reference-tag grid spacing, metres.
    pub grid_spacing: f64,
    /// Readers per wall.
    pub readers_per_side: usize,
    /// k for the k-NN estimator.
    pub k: usize,
    /// Radio model.
    pub radio: PathLossModel,
    /// Walking speed (metres per tick) — the paper's `v`.
    pub speed: f64,
    /// Probability that a produced fix is corrupted (the experiments'
    /// `err_rate`: 0.10 – 0.40 in the paper, after real-life RFID error
    /// observations).
    pub err_rate: f64,
    /// Minimum displacement of a corrupted fix from the true position,
    /// metres. Corruption teleports the estimate somewhere implausible,
    /// the way a mis-associated RFID read does.
    pub corruption_min_jump: f64,
    /// The localization technique producing the fixes.
    pub estimator: EstimatorKind,
}

impl Default for LandmarcConfig {
    fn default() -> Self {
        LandmarcConfig {
            area: Rect::new(0.0, 0.0, 40.0, 30.0),
            grid_spacing: 2.0,
            readers_per_side: 2,
            k: 4,
            radio: PathLossModel::default(),
            speed: 1.0,
            err_rate: 0.2,
            corruption_min_jump: 10.0,
            estimator: EstimatorKind::Knn,
        }
    }
}

/// One produced location fix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocationFix {
    /// Stream position (0-based), usable as the `seq` attribute.
    pub seq: u64,
    /// The estimated position (corrupted or not).
    pub pos: Point,
    /// The true position at measurement time (ground truth; hidden from
    /// practical strategies).
    pub true_pos: Point,
    /// Whether this fix was corrupted by error injection.
    pub corrupted: bool,
}

/// Iterator producing an endless stream of location fixes: waypoint
/// mobility → noisy RSSI measurement → k-NN estimation → error
/// injection.
pub struct LandmarcSim {
    estimator: KnnEstimator,
    locator: Box<dyn Locator + Send>,
    walker: RandomWaypoint,
    err_rate: f64,
    corruption_min_jump: f64,
    area: Rect,
    rng: StdRng,
    seq: u64,
}

impl LandmarcSim {
    /// Creates a simulator; all randomness derives from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `err_rate` is outside `[0, 1]` (and propagates the
    /// constructor panics of the component models).
    pub fn new(config: LandmarcConfig, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.err_rate),
            "err_rate must be a probability"
        );
        let plan = Floorplan::grid(config.area, config.grid_spacing, config.readers_per_side);
        let estimator = KnnEstimator::new(plan.clone(), config.radio, config.k);
        let locator: Box<dyn Locator + Send> = match config.estimator {
            EstimatorKind::Knn => Box::new(KnnLocator::new(estimator.clone())),
            EstimatorKind::Trilateration => Box::new(TrilaterationEstimator::new(
                plan.readers().to_vec(),
                config.radio,
            )),
            EstimatorKind::Fused => Box::new(FusedEstimator::new(estimator.clone(), config.radio)),
        };
        LandmarcSim {
            estimator,
            locator,
            walker: RandomWaypoint::new(config.area, config.speed, seed ^ 0x9e37_79b9),
            err_rate: config.err_rate,
            corruption_min_jump: config.corruption_min_jump,
            area: config.area,
            rng: StdRng::seed_from_u64(seed),
            seq: 0,
        }
    }

    /// The estimator in use (for inspection and reuse).
    pub fn estimator(&self) -> &KnnEstimator {
        &self.estimator
    }

    fn corrupt(&mut self, truth: Point) -> Point {
        // Teleport at least `corruption_min_jump` away, staying on-floor.
        for _ in 0..64 {
            let candidate = self.area.sample(&mut self.rng);
            if candidate.distance(truth) >= self.corruption_min_jump {
                return candidate;
            }
        }
        // Tiny floors: push to the farthest corner.
        let corners = [
            self.area.min,
            self.area.max,
            Point::new(self.area.min.x, self.area.max.y),
            Point::new(self.area.max.x, self.area.min.y),
        ];
        corners
            .into_iter()
            .max_by(|a, b| a.distance(truth).total_cmp(&b.distance(truth)))
            .unwrap_or(self.area.max)
    }
}

impl Iterator for LandmarcSim {
    type Item = LocationFix;

    fn next(&mut self) -> Option<LocationFix> {
        let truth = self.walker.step();
        let corrupted = self.rng.gen_bool(self.err_rate);
        let pos = if corrupted {
            self.corrupt(truth)
        } else {
            self.locator.locate_dyn(truth, &mut self.rng)
        };
        let fix = LocationFix {
            seq: self.seq,
            pos,
            true_pos: truth,
            corrupted,
        };
        self.seq += 1;
        Some(fix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_rate_is_respected() {
        let sim = LandmarcSim::new(
            LandmarcConfig {
                err_rate: 0.3,
                ..LandmarcConfig::default()
            },
            17,
        );
        let fixes: Vec<LocationFix> = sim.take(2000).collect();
        let rate = fixes.iter().filter(|f| f.corrupted).count() as f64 / fixes.len() as f64;
        assert!((rate - 0.3).abs() < 0.04, "observed rate {rate}");
    }

    #[test]
    fn corrupted_fixes_jump_far() {
        let sim = LandmarcSim::new(
            LandmarcConfig {
                err_rate: 0.5,
                ..LandmarcConfig::default()
            },
            23,
        );
        for fix in sim.take(500).filter(|f| f.corrupted) {
            assert!(fix.pos.distance(fix.true_pos) >= 10.0);
        }
    }

    #[test]
    fn expected_fixes_are_accurate_in_the_median() {
        let sim = LandmarcSim::new(
            LandmarcConfig {
                err_rate: 0.0,
                ..LandmarcConfig::default()
            },
            29,
        );
        let mut errors: Vec<f64> = sim.take(500).map(|f| f.pos.distance(f.true_pos)).collect();
        errors.sort_by(f64::total_cmp);
        let median = errors[errors.len() / 2];
        assert!(median < 4.0, "median estimation error {median}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            LandmarcSim::new(LandmarcConfig::default(), 99)
                .take(50)
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn every_estimator_kind_produces_sane_fixes() {
        for kind in [
            EstimatorKind::Knn,
            EstimatorKind::Trilateration,
            EstimatorKind::Fused,
        ] {
            let sim = LandmarcSim::new(
                LandmarcConfig {
                    err_rate: 0.0,
                    estimator: kind,
                    ..LandmarcConfig::default()
                },
                41,
            );
            let mut errors: Vec<f64> = sim.take(300).map(|f| f.pos.distance(f.true_pos)).collect();
            errors.sort_by(f64::total_cmp);
            let median = errors[errors.len() / 2];
            assert!(median < 6.0, "{kind:?}: median error {median}");
        }
    }

    #[test]
    fn seq_increments() {
        let sim = LandmarcSim::new(LandmarcConfig::default(), 1);
        let seqs: Vec<u64> = sim.take(5).map(|f| f.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_err_rate_panics() {
        let _ = LandmarcSim::new(
            LandmarcConfig {
                err_rate: 1.5,
                ..LandmarcConfig::default()
            },
            1,
        );
    }
}

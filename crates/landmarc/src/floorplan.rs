//! Reader and reference-tag layout.

use crate::geom::Rect;
use ctxres_context::Point;
use serde::{Deserialize, Serialize};

/// A floor layout: RF readers around the area and a regular grid of
/// reference tags inside it (LANDMARC §3: readers on the perimeter,
/// reference tags one per grid cell).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    area: Rect,
    readers: Vec<Point>,
    reference_tags: Vec<Point>,
}

impl Floorplan {
    /// Builds a floorplan: `readers_per_side` readers evenly spaced on
    /// each of the four walls, and reference tags on a grid with the
    /// given `spacing` (metres).
    ///
    /// # Panics
    ///
    /// Panics if `spacing` is not positive or `readers_per_side` is 0.
    pub fn grid(area: Rect, spacing: f64, readers_per_side: usize) -> Self {
        assert!(spacing > 0.0, "spacing must be positive");
        assert!(readers_per_side > 0, "need at least one reader per side");
        let mut readers = Vec::new();
        for i in 0..readers_per_side {
            let t = (i as f64 + 0.5) / readers_per_side as f64;
            let x = area.min.x + t * area.width();
            let y = area.min.y + t * area.height();
            readers.push(Point::new(x, area.min.y)); // south wall
            readers.push(Point::new(x, area.max.y)); // north wall
            readers.push(Point::new(area.min.x, y)); // west wall
            readers.push(Point::new(area.max.x, y)); // east wall
        }
        let mut reference_tags = Vec::new();
        let mut y = area.min.y + spacing / 2.0;
        while y < area.max.y {
            let mut x = area.min.x + spacing / 2.0;
            while x < area.max.x {
                reference_tags.push(Point::new(x, y));
                x += spacing;
            }
            y += spacing;
        }
        Floorplan {
            area,
            readers,
            reference_tags,
        }
    }

    /// The floor area.
    pub fn area(&self) -> Rect {
        self.area
    }

    /// Reader positions.
    pub fn readers(&self) -> &[Point] {
        &self.readers
    }

    /// Reference-tag positions.
    pub fn reference_tags(&self) -> &[Point] {
        &self.reference_tags
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_places_tags_inside_area() {
        let plan = Floorplan::grid(Rect::new(0.0, 0.0, 10.0, 8.0), 2.0, 1);
        assert!(!plan.reference_tags().is_empty());
        for tag in plan.reference_tags() {
            assert!(plan.area().contains(*tag));
        }
        // 10/2 columns x 8/2 rows.
        assert_eq!(plan.reference_tags().len(), 5 * 4);
    }

    #[test]
    fn readers_sit_on_the_walls() {
        let area = Rect::new(0.0, 0.0, 10.0, 8.0);
        let plan = Floorplan::grid(area, 2.0, 2);
        assert_eq!(plan.readers().len(), 8);
        for r in plan.readers() {
            let on_wall =
                r.x == area.min.x || r.x == area.max.x || r.y == area.min.y || r.y == area.max.y;
            assert!(on_wall, "{r} is not on a wall");
        }
    }

    #[test]
    #[should_panic(expected = "spacing")]
    fn zero_spacing_panics() {
        let _ = Floorplan::grid(Rect::new(0.0, 0.0, 1.0, 1.0), 0.0, 1);
    }

    #[test]
    fn finer_spacing_means_more_tags() {
        let area = Rect::new(0.0, 0.0, 20.0, 20.0);
        let coarse = Floorplan::grid(area, 4.0, 1).reference_tags().len();
        let fine = Floorplan::grid(area, 2.0, 1).reference_tags().len();
        assert!(fine > 2 * coarse);
    }
}

//! The [`Locator`] abstraction: any localization technique that turns a
//! true position into a (noisy) estimate.
//!
//! Unifies the three estimators so simulations and ablations can swap
//! techniques — the §6 "multiple localization techniques" discussion
//! made concrete.

use crate::knn::KnnEstimator;
use crate::trilateration::{FusedEstimator, TrilaterationEstimator};
use ctxres_context::Point;
use rand::RngCore;

/// A localization technique (object-safe; RNG passed as `dyn` so
/// heterogeneous locators can share a driver).
pub trait Locator {
    /// Produces a position estimate for a tag truly at `true_pos`.
    fn locate_dyn(&self, true_pos: Point, rng: &mut dyn RngCore) -> Point;

    /// The technique's display name.
    fn technique(&self) -> &'static str;
}

/// k-NN scene analysis with a precomputed reference map.
#[derive(Debug, Clone)]
pub struct KnnLocator {
    estimator: KnnEstimator,
    reference_map: Vec<Vec<f64>>,
}

impl KnnLocator {
    /// Wraps a [`KnnEstimator`], precomputing its reference map.
    pub fn new(estimator: KnnEstimator) -> Self {
        let reference_map = estimator.reference_map();
        KnnLocator {
            estimator,
            reference_map,
        }
    }
}

impl Locator for KnnLocator {
    fn locate_dyn(&self, true_pos: Point, mut rng: &mut dyn RngCore) -> Point {
        self.estimator
            .locate(true_pos, &self.reference_map, &mut rng)
    }

    fn technique(&self) -> &'static str {
        "knn"
    }
}

impl Locator for TrilaterationEstimator {
    fn locate_dyn(&self, true_pos: Point, mut rng: &mut dyn RngCore) -> Point {
        self.locate(true_pos, &mut rng)
    }

    fn technique(&self) -> &'static str {
        "trilateration"
    }
}

impl Locator for FusedEstimator {
    fn locate_dyn(&self, true_pos: Point, mut rng: &mut dyn RngCore) -> Point {
        self.locate(true_pos, &mut rng)
    }

    fn technique(&self) -> &'static str {
        "fused"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;
    use crate::geom::Rect;
    use crate::radio::PathLossModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn locators() -> Vec<Box<dyn Locator>> {
        let plan = Floorplan::grid(Rect::new(0.0, 0.0, 20.0, 20.0), 2.0, 2);
        let model = PathLossModel::default();
        let knn = KnnEstimator::new(plan.clone(), model, 4);
        vec![
            Box::new(KnnLocator::new(knn.clone())),
            Box::new(TrilaterationEstimator::new(plan.readers().to_vec(), model)),
            Box::new(FusedEstimator::new(knn, model)),
        ]
    }

    #[test]
    fn all_techniques_drive_through_the_trait() {
        let mut rng = StdRng::seed_from_u64(5);
        let truth = Point::new(9.0, 9.0);
        let mut names = Vec::new();
        for locator in locators() {
            let p = locator.locate_dyn(truth, &mut rng);
            assert!(
                p.distance(truth) < 15.0,
                "{}: wild estimate {p}",
                locator.technique()
            );
            names.push(locator.technique());
        }
        assert_eq!(names, vec!["knn", "trilateration", "fused"]);
    }

    #[test]
    fn trait_objects_are_deterministic_per_seed() {
        for locator in locators() {
            let a = locator.locate_dyn(Point::new(5.0, 5.0), &mut StdRng::seed_from_u64(1));
            let b = locator.locate_dyn(Point::new(5.0, 5.0), &mut StdRng::seed_from_u64(1));
            assert_eq!(a, b, "{}", locator.technique());
        }
    }
}

//! LANDMARC indoor-localization simulator.
//!
//! The paper's running example and §5.2 case study track locations with
//! the LANDMARC algorithm (Ni, Liu, Lau, Patil — *LANDMARC: Indoor
//! Location Sensing Using Active RFID*): fixed **reference tags** at
//! known positions serve as calibration landmarks; a tracked tag's
//! position is estimated as the weighted centroid of its *k* nearest
//! reference tags in **signal space** (per-reader RSSI vectors).
//!
//! The original system ran on physical active-RFID hardware we do not
//! have, so this crate simulates the full pipeline (substitution
//! documented in DESIGN.md):
//!
//! * a **log-distance path-loss radio model** with lognormal shadowing
//!   ([`PathLossModel`]) produces per-reader RSSI readings;
//! * [`Floorplan`] lays out readers and a reference-tag grid;
//! * [`KnnEstimator`] implements the published k-NN/weighted-centroid
//!   estimation;
//! * [`RandomWaypoint`] moves the tracked person;
//! * [`LandmarcSim`] ties it together and injects **corrupted** fixes at
//!   a controlled error rate — the experiments' `err_rate` knob (§4.1).
//!
//! Everything is driven by a seeded RNG: a simulation is reproducible
//! bit-for-bit from its configuration.
//!
//! # Example
//!
//! ```
//! use ctxres_landmarc::{LandmarcConfig, LandmarcSim};
//!
//! let sim = LandmarcSim::new(LandmarcConfig::default(), 42);
//! let fixes: Vec<_> = sim.take(100).collect();
//! assert_eq!(fixes.len(), 100);
//! let corrupted = fixes.iter().filter(|f| f.corrupted).count();
//! assert!(corrupted > 0 && corrupted < 60); // ~20 % by default
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod floorplan;
mod geom;
mod knn;
mod locator;
mod mobility;
mod radio;
mod sim;
mod trilateration;

pub use floorplan::Floorplan;
pub use geom::Rect;
pub use knn::KnnEstimator;
pub use locator::{KnnLocator, Locator};
pub use mobility::RandomWaypoint;
pub use radio::PathLossModel;
pub use sim::{EstimatorKind, LandmarcConfig, LandmarcSim, LocationFix};
pub use trilateration::{FusedEstimator, TrilaterationEstimator};

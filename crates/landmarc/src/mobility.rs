//! Random-waypoint mobility for the tracked person.

use crate::geom::Rect;
use ctxres_context::Point;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The random-waypoint model: pick a destination uniformly in the area,
/// walk toward it at the configured speed, pick a new one on arrival.
///
/// The paper's example has Peter "walk steadily at an average velocity
/// of v" (§2.1); a constant-speed waypoint walk gives exactly that while
/// still exploring the floor.
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    area: Rect,
    speed: f64,
    pos: Point,
    target: Point,
    rng: StdRng,
}

impl RandomWaypoint {
    /// Creates a walker with `speed` metres per tick, starting at the
    /// area's centre.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not positive.
    pub fn new(area: Rect, speed: f64, seed: u64) -> Self {
        assert!(speed > 0.0, "speed must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let pos = area.center();
        let target = area.sample(&mut rng);
        RandomWaypoint {
            area,
            speed,
            pos,
            target,
            rng,
        }
    }

    /// Current position.
    pub fn position(&self) -> Point {
        self.pos
    }

    /// The configured walking speed (metres per tick).
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Advances one tick and returns the new position.
    pub fn step(&mut self) -> Point {
        let mut remaining = self.speed;
        while remaining > 0.0 {
            let d = self.pos.distance(self.target);
            if d <= remaining {
                // Arrive and re-target; spend the leftover movement.
                self.pos = self.target;
                remaining -= d;
                self.target = self.area.sample(&mut self.rng);
                if remaining < 1e-12 {
                    break;
                }
            } else {
                let t = remaining / d;
                self.pos = Point::new(
                    self.pos.x + (self.target.x - self.pos.x) * t,
                    self.pos.y + (self.target.y - self.pos.y) * t,
                );
                remaining = 0.0;
            }
        }
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_moves_at_most_speed() {
        let mut w = RandomWaypoint::new(Rect::new(0.0, 0.0, 50.0, 50.0), 1.5, 11);
        let mut prev = w.position();
        for _ in 0..500 {
            let next = w.step();
            assert!(prev.distance(next) <= 1.5 + 1e-9);
            prev = next;
        }
    }

    #[test]
    fn walker_stays_in_area() {
        let area = Rect::new(0.0, 0.0, 20.0, 10.0);
        let mut w = RandomWaypoint::new(area, 2.0, 3);
        for _ in 0..1000 {
            assert!(area.contains(w.step()));
        }
    }

    #[test]
    fn same_seed_same_walk() {
        let area = Rect::new(0.0, 0.0, 20.0, 20.0);
        let mut a = RandomWaypoint::new(area, 1.0, 42);
        let mut b = RandomWaypoint::new(area, 1.0, 42);
        for _ in 0..100 {
            assert_eq!(a.step(), b.step());
        }
    }

    #[test]
    fn walker_actually_covers_ground() {
        let mut w = RandomWaypoint::new(Rect::new(0.0, 0.0, 30.0, 30.0), 1.0, 5);
        let start = w.position();
        let mut max_dist: f64 = 0.0;
        for _ in 0..2000 {
            max_dist = max_dist.max(w.step().distance(start));
        }
        assert!(max_dist > 10.0, "walker never left the centre ({max_dist})");
    }

    #[test]
    #[should_panic(expected = "speed")]
    fn zero_speed_panics() {
        let _ = RandomWaypoint::new(Rect::new(0.0, 0.0, 1.0, 1.0), 0.0, 1);
    }
}

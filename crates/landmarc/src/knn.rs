//! The LANDMARC k-NN / weighted-centroid estimator.

use crate::floorplan::Floorplan;
use crate::radio::PathLossModel;
use ctxres_context::Point;
use rand::Rng;

/// The published LANDMARC estimation pipeline.
///
/// For a tracked tag with per-reader signal vector `S` and reference
/// tags with vectors `θᵢ`, compute the Euclidean signal-space distance
/// `Eᵢ = ‖S − θᵢ‖`, select the `k` smallest, and estimate the position
/// as the centroid of those reference tags weighted by `wᵢ ∝ 1/Eᵢ²`
/// (Ni et al., §3.3; they report `k = 4` as the sweet spot).
#[derive(Debug, Clone)]
pub struct KnnEstimator {
    plan: Floorplan,
    model: PathLossModel,
    k: usize,
}

impl KnnEstimator {
    /// Creates an estimator over a floorplan and radio model.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the number of reference tags.
    pub fn new(plan: Floorplan, model: PathLossModel, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(
            k <= plan.reference_tags().len(),
            "k ({k}) exceeds the number of reference tags ({})",
            plan.reference_tags().len()
        );
        KnnEstimator { plan, model, k }
    }

    /// The floorplan in use.
    pub fn plan(&self) -> &Floorplan {
        &self.plan
    }

    /// Measures the noisy signal vector of a tag at `pos`.
    pub fn measure(&self, pos: Point, rng: &mut impl Rng) -> Vec<f64> {
        self.plan
            .readers()
            .iter()
            .map(|r| self.model.sample_rssi(r.distance(pos), rng))
            .collect()
    }

    /// The *noise-free* signal map of every reference tag.
    ///
    /// LANDMARC continuously re-measures reference tags; over a window
    /// their averaged vectors approach the mean model, which is what we
    /// use (the tracked tag's single-shot vector keeps its noise).
    pub fn reference_map(&self) -> Vec<Vec<f64>> {
        self.plan
            .reference_tags()
            .iter()
            .map(|t| {
                self.plan
                    .readers()
                    .iter()
                    .map(|r| self.model.mean_rssi(r.distance(*t)))
                    .collect()
            })
            .collect()
    }

    /// Estimates a position from a measured signal vector.
    pub fn estimate(&self, signal: &[f64], reference_map: &[Vec<f64>]) -> Point {
        let mut dists: Vec<(f64, usize)> = reference_map
            .iter()
            .enumerate()
            .map(|(i, theta)| {
                let e: f64 = signal
                    .iter()
                    .zip(theta)
                    .map(|(s, t)| (s - t).powi(2))
                    .sum::<f64>()
                    .sqrt();
                (e, i)
            })
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0));
        let nearest = &dists[..self.k];
        let mut wx = 0.0;
        let mut wy = 0.0;
        let mut wsum = 0.0;
        for (e, i) in nearest {
            let w = 1.0 / (e * e).max(1e-9);
            let p = self.plan.reference_tags()[*i];
            wx += w * p.x;
            wy += w * p.y;
            wsum += w;
        }
        Point::new(wx / wsum, wy / wsum)
    }

    /// Convenience: measure at the true position and estimate in one
    /// step, as the simulator does each tick.
    pub fn locate(&self, true_pos: Point, reference_map: &[Vec<f64>], rng: &mut impl Rng) -> Point {
        let signal = self.measure(true_pos, rng);
        self.estimate(&signal, reference_map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Rect;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn estimator() -> KnnEstimator {
        let plan = Floorplan::grid(Rect::new(0.0, 0.0, 20.0, 20.0), 2.0, 2);
        KnnEstimator::new(plan, PathLossModel::default(), 4)
    }

    #[test]
    fn noise_free_estimate_is_close() {
        let est = estimator();
        let map = est.reference_map();
        // Zero-noise model: measure with sigma 0.
        let quiet = KnnEstimator::new(
            est.plan().clone(),
            PathLossModel {
                sigma: 0.0,
                ..PathLossModel::default()
            },
            4,
        );
        let mut rng = StdRng::seed_from_u64(3);
        let truth = Point::new(7.3, 11.2);
        let p = quiet.locate(truth, &map, &mut rng);
        assert!(p.distance(truth) < 2.0, "error {}", p.distance(truth));
    }

    #[test]
    fn noisy_estimates_have_bounded_median_error() {
        let est = estimator();
        let map = est.reference_map();
        let mut rng = StdRng::seed_from_u64(9);
        let truth = Point::new(10.0, 10.0);
        let mut errors: Vec<f64> = (0..200)
            .map(|_| est.locate(truth, &map, &mut rng).distance(truth))
            .collect();
        errors.sort_by(f64::total_cmp);
        let median = errors[errors.len() / 2];
        // LANDMARC reports ~1-2 m median error on a 2 m grid.
        assert!(median < 4.0, "median error {median}");
    }

    #[test]
    fn estimate_stays_in_the_convex_hull_of_tags() {
        let est = estimator();
        let map = est.reference_map();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let truth = est.plan().area().sample(&mut rng);
            let p = est.locate(truth, &map, &mut rng);
            assert!(est.plan().area().contains(p), "{p} outside the floor");
        }
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        let plan = Floorplan::grid(Rect::new(0.0, 0.0, 10.0, 10.0), 2.0, 1);
        let _ = KnnEstimator::new(plan, PathLossModel::default(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn excessive_k_panics() {
        let plan = Floorplan::grid(Rect::new(0.0, 0.0, 4.0, 4.0), 2.0, 1);
        let _ = KnnEstimator::new(plan, PathLossModel::default(), 100);
    }

    #[test]
    fn k1_snaps_to_a_reference_tag() {
        let plan = Floorplan::grid(Rect::new(0.0, 0.0, 10.0, 10.0), 2.0, 1);
        let est = KnnEstimator::new(
            plan,
            PathLossModel {
                sigma: 0.0,
                ..Default::default()
            },
            1,
        );
        let map = est.reference_map();
        let mut rng = StdRng::seed_from_u64(1);
        let p = est.locate(Point::new(3.1, 3.1), &map, &mut rng);
        let snapped = est
            .plan()
            .reference_tags()
            .iter()
            .any(|t| t.distance(p) < 1e-9);
        assert!(snapped, "k=1 estimate must be a reference tag, got {p}");
    }
}

//! Property-based tests of the middleware: random mixed workloads
//! through every strategy, checking accounting identities, life-cycle
//! invariants and determinism.

use ctxres_constraint::parse_constraints;
use ctxres_context::{Context, ContextKind, Lifespan, LogicalTime, Point, Ticks, TruthTag};
use ctxres_core::strategies::by_name;
use ctxres_middleware::{Middleware, MiddlewareConfig, MiddlewareStats};
use proptest::prelude::*;

const SPEED: &str = "constraint gap1:
    forall a: location, b: location .
      (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)
 constraint gap2:
    forall a: location, b: location .
      (same_subject(a, b) and seq_gap(a, b, 2)) implies velocity_le(a, b, 1.5)";

#[derive(Debug, Clone)]
struct Step {
    /// Step along the walk, in 1/128 m units (|step| < 1.5 m: legal).
    step: i8,
    /// Teleport far away (a corrupted fix).
    outlier: bool,
    /// Emit an irrelevant context (different kind) instead.
    irrelevant: bool,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        (
            any::<i8>(),
            proptest::bool::weighted(0.25),
            proptest::bool::weighted(0.1),
        )
            .prop_map(|(step, outlier, irrelevant)| Step {
                step,
                outlier,
                irrelevant,
            }),
        1..50,
    )
}

fn trace(steps: &[Step]) -> Vec<Context> {
    let mut out = Vec::new();
    let mut x = 0.0;
    let mut seq = 0i64;
    for (i, s) in steps.iter().enumerate() {
        let stamp = LogicalTime::new(i as u64);
        if s.irrelevant {
            out.push(
                Context::builder(ContextKind::new("temperature"), "room")
                    .attr("celsius", 21.5)
                    .stamp(stamp)
                    .build(),
            );
            continue;
        }
        x += f64::from(s.step) / 128.0;
        let pos = if s.outlier {
            Point::new(x + 60.0, 60.0)
        } else {
            Point::new(x, 0.0)
        };
        out.push(
            Context::builder(ContextKind::new("location"), "p")
                .attr("pos", pos)
                .attr("seq", seq)
                .stamp(stamp)
                .truth(if s.outlier {
                    TruthTag::Corrupted
                } else {
                    TruthTag::Expected
                })
                .build(),
        );
        seq += 1;
    }
    out
}

fn run(strategy: &str, contexts: Vec<Context>, window: u64) -> MiddlewareStats {
    let mut mw = Middleware::builder()
        .constraints(parse_constraints(SPEED).unwrap())
        .strategy(by_name(strategy, 5).unwrap())
        .config(MiddlewareConfig {
            window: Ticks::new(window),
            track_ground_truth: true,
            retention: None,
        })
        .build();
    for ctx in contexts {
        mw.submit(ctx);
    }
    mw.drain();
    // Life-cycle invariant: after draining, every stored context is
    // decided; only never-expiring contexts exist here, so nothing can
    // dodge its use.
    for (id, c) in mw.pool().iter() {
        assert!(
            c.state().is_terminal(),
            "{strategy}: {id} left in state {} after drain",
            c.state()
        );
    }
    // The use log matches the delivery counters.
    let delivered_in_log = mw.use_log().iter().filter(|r| r.delivered).count() as u64;
    assert_eq!(delivered_in_log, mw.stats().delivered);
    *mw.stats()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Accounting identities hold for every strategy on random traces.
    #[test]
    fn accounting_identities(steps in steps(), window in 0u64..6) {
        for strategy in ["opt-r", "d-bad", "d-lat", "d-all", "d-rand"] {
            let stats = run(strategy, trace(&steps), window);
            prop_assert_eq!(stats.delivered, stats.delivered_expected + stats.delivered_corrupted);
            prop_assert_eq!(stats.discarded, stats.discarded_expected + stats.discarded_corrupted);
            prop_assert_eq!(stats.received, steps.len() as u64);
            // Every context is either delivered, discarded or expired on
            // use — and nothing is both.
            prop_assert!(stats.delivered + stats.discarded + stats.expired_on_use <= stats.received + stats.discarded);
        }
    }

    /// The oracle never touches expected contexts and never delivers
    /// corrupted ones, whatever the workload.
    #[test]
    fn oracle_is_exact(steps in steps(), window in 0u64..6) {
        let stats = run("opt-r", trace(&steps), window);
        prop_assert_eq!(stats.discarded_expected, 0);
        prop_assert_eq!(stats.delivered_corrupted, 0);
        let corrupted = steps.iter().filter(|s| !s.irrelevant && s.outlier).count() as u64;
        prop_assert_eq!(stats.discarded_corrupted, corrupted);
    }

    /// Clean traces sail through every strategy untouched.
    #[test]
    fn clean_traces_are_untouched(
        steps in proptest::collection::vec(
            (any::<i8>(), proptest::bool::weighted(0.1)).prop_map(|(step, irrelevant)| Step {
                step,
                outlier: false,
                irrelevant,
            }),
            1..40,
        ),
        window in 0u64..6,
    ) {
        for strategy in ["opt-r", "d-bad", "d-lat", "d-all"] {
            let stats = run(strategy, trace(&steps), window);
            prop_assert_eq!(stats.discarded, 0, "{} discarded on clean trace", strategy);
            prop_assert_eq!(stats.delivered, steps.len() as u64);
        }
    }

    /// Same workload, same strategy, same window => identical stats.
    #[test]
    fn runs_are_deterministic(steps in steps(), window in 0u64..6) {
        for strategy in ["d-bad", "d-rand"] {
            let a = run(strategy, trace(&steps), window);
            let b = run(strategy, trace(&steps), window);
            prop_assert_eq!(a, b);
        }
    }

    /// Window zero makes drop-bad and drop-latest indistinguishable on
    /// every random workload (§5.3).
    #[test]
    fn window_zero_degeneration(steps in steps()) {
        let bad = run("d-bad", trace(&steps), 0);
        let lat = run("d-lat", trace(&steps), 0);
        prop_assert_eq!(bad.delivered, lat.delivered);
        prop_assert_eq!(bad.discarded, lat.discarded);
        prop_assert_eq!(bad.delivered_expected, lat.delivered_expected);
    }
}

/// A near-door location fix for subject `p`, expiring `ttl` ticks
/// after `at` (the `near_door` situation holds while one is live).
fn door_fix(at: u64, ttl: u64, seq: i64) -> Context {
    Context::builder(ContextKind::new("location"), "p")
        .attr("pos", Point::new(0.0, 0.0))
        .attr("seq", seq)
        .stamp(LogicalTime::new(at))
        .lifespan(Lifespan::with_ttl(LogicalTime::new(at), Ticks::new(ttl)))
        .build()
}

/// An unrelated-kind submission: advances the clock to `at` and forces
/// an evaluation round without touching the `location` view.
fn round_trigger(at: u64) -> Context {
    Context::builder(ContextKind::new("temperature"), "room")
        .attr("celsius", 21.0)
        .stamp(LogicalTime::new(at))
        .build()
}

/// Runs a time-ordered stream through a middleware with the `near_door`
/// situation, dirty-kind cache on or off.
fn run_near_door(cache: bool, contexts: &[Context]) -> (MiddlewareStats, usize) {
    let situations = parse_constraints(
        "constraint near_door: exists a: location . within(a, -1.0, -1.0, 1.0, 1.0)",
    )
    .unwrap();
    let mut m = Middleware::builder()
        .constraints(parse_constraints(SPEED).unwrap())
        .situations(situations)
        .strategy(by_name("d-bad", 5).unwrap())
        .situation_cache(cache)
        .config(MiddlewareConfig {
            window: Ticks::new(0),
            track_ground_truth: false,
            retention: None,
        })
        .build();
    for ctx in contexts {
        m.submit(ctx.clone());
    }
    m.drain();
    (*m.stats(), m.use_log().len())
}

#[test]
fn expiry_exactly_on_a_round_boundary_deactivates_the_situation() {
    // The PR-4 cache edge case: a fix expires at exactly t5, and the
    // round at t5 is triggered by an *unrelated* kind — nothing else
    // dirties `location`, so only the queued expiry can. If the cache
    // replayed the memoized verdict, `near_door` would stay active and
    // the t8 fix's rising edge would be lost (1 activation, not 2).
    let stream = [
        door_fix(0, 5, 0), // active from t0, expires at exactly t5
        round_trigger(5),  // round lands on the expiry instant
        door_fix(8, 5, 1), // must re-activate: a second rising edge
        round_trigger(20), // drain the second expiry too
    ];
    let (cached, cached_uses) = run_near_door(true, &stream);
    let (plain, plain_uses) = run_near_door(false, &stream);
    assert_eq!(cached.situation_activations, 2);
    assert_eq!((cached, cached_uses), (plain, plain_uses));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lifespans expiring exactly on a round boundary dirty their kind
    /// before that round evaluates: every fix gets a round trigger
    /// pinned to its exact expiry instant, and the dirty-kind cache
    /// must stay indistinguishable from evaluating everything.
    #[test]
    fn boundary_expiries_keep_the_situation_cache_equivalent(
        fixes in proptest::collection::vec((0u64..20, 1u64..8), 1..6),
        extra_triggers in proptest::collection::vec(0u64..30, 0..6),
    ) {
        let mut plan: Vec<(u64, Context)> = Vec::new();
        for (seq, &(at, ttl)) in fixes.iter().enumerate() {
            plan.push((at, door_fix(at, ttl, seq as i64)));
            // A round exactly on this fix's expiry boundary.
            plan.push((at + ttl, round_trigger(at + ttl)));
        }
        for &t in &extra_triggers {
            plan.push((t, round_trigger(t)));
        }
        plan.sort_by_key(|(t, _)| *t);
        let stream: Vec<Context> = plan.into_iter().map(|(_, c)| c).collect();
        prop_assert_eq!(run_near_door(true, &stream), run_near_door(false, &stream));
    }
}

/// Builds a stats record from 14 raw field values (field order matches
/// the struct declaration).
fn stats_from(f: &[u64]) -> MiddlewareStats {
    MiddlewareStats {
        received: f[0],
        irrelevant: f[1],
        inconsistencies: f[2],
        delivered: f[3],
        delivered_expected: f[4],
        delivered_corrupted: f[5],
        discarded: f[6],
        discarded_expected: f[7],
        discarded_corrupted: f[8],
        marked_bad: f[9],
        expired_on_use: f[10],
        situation_activations: f[11],
        eval_errors: f[12],
        compacted: f[13],
    }
}

proptest! {
    /// Stats survive a JSON round trip bit-exactly — the experiment
    /// runner persists them, so drift here would corrupt BENCH files.
    #[test]
    fn stats_serde_round_trip(fields in proptest::collection::vec(0u64..1_000_000, 14)) {
        let stats = stats_from(&fields);
        let json = serde_json::to_string(&stats).unwrap();
        let back: MiddlewareStats = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, stats);
    }

    /// Absorbing per-shard records one by one equals summing the raw
    /// fields first — the cross-shard aggregation the sharded middleware
    /// relies on is plain field-wise addition (commutative, no global
    /// lock needed).
    #[test]
    fn absorb_aggregation_matches_fieldwise_sum(
        shards in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000, 14),
            1..6,
        ),
    ) {
        let mut aggregated = MiddlewareStats::default();
        for fields in &shards {
            aggregated.absorb(&stats_from(fields));
        }
        let mut totals = vec![0u64; 14];
        for fields in &shards {
            for (total, v) in totals.iter_mut().zip(fields) {
                *total += *v;
            }
        }
        prop_assert_eq!(aggregated, stats_from(&totals));
    }
}

//! Situation evaluation — the application-facing half of
//! context-awareness.
//!
//! A *situation* ("Peter is in his office", "shelf 3 needs restocking")
//! is a formula over the contexts currently *available* to applications.
//! The paper's second metric counts how many situations were actually
//! activated after inconsistency resolution (§4): a strategy that
//! discards the wrong contexts starves situations of the contexts they
//! need.

use ctxres_constraint::{Constraint, DomainMode, Evaluator, PredicateRegistry};
use ctxres_context::{ContextPool, LogicalTime};

/// The status of one situation after an evaluation round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SituationStatus {
    /// The situation's name.
    pub name: String,
    /// Whether the situation currently holds.
    pub active: bool,
    /// Whether this round turned it from inactive to active (a
    /// rising-edge *activation*, the unit the paper counts).
    pub activated: bool,
}

/// Evaluates a fixed set of situations over the available context view,
/// tracking rising edges.
///
/// Situations reuse the constraint [`Constraint`] machinery: a situation
/// is simply a named formula; `active` means *satisfied* over the
/// `Consistent`, live contexts.
#[derive(Debug)]
pub struct SituationEngine {
    situations: Vec<Constraint>,
    active: Vec<bool>,
    activations: u64,
}

impl SituationEngine {
    /// Creates an engine for the given situations.
    pub fn new(situations: Vec<Constraint>) -> Self {
        let n = situations.len();
        SituationEngine {
            situations,
            active: vec![false; n],
            activations: 0,
        }
    }

    /// Number of situations.
    pub fn len(&self) -> usize {
        self.situations.len()
    }

    /// Whether the engine has no situations.
    pub fn is_empty(&self) -> bool {
        self.situations.is_empty()
    }

    /// Total rising-edge activations since construction.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Current activity flags, in situation order.
    pub fn active_flags(&self) -> &[bool] {
        &self.active
    }

    /// Re-evaluates every situation over the available view of `pool`.
    ///
    /// Evaluation errors (e.g. a missing attribute) deactivate the
    /// situation for the round rather than aborting: applications keep
    /// running when one situation's data is absent.
    pub fn evaluate(
        &mut self,
        registry: &PredicateRegistry,
        pool: &ContextPool,
        now: LogicalTime,
    ) -> Vec<SituationStatus> {
        let evaluator = Evaluator::with_domain(registry, DomainMode::AvailableOnly);
        let mut out = Vec::with_capacity(self.situations.len());
        for (i, situation) in self.situations.iter().enumerate() {
            let active = evaluator
                .check(situation, pool, now)
                .map(|o| o.satisfied)
                .unwrap_or(false);
            let activated = active && !self.active[i];
            if activated {
                self.activations += 1;
            }
            self.active[i] = active;
            out.push(SituationStatus {
                name: situation.name().to_owned(),
                active,
                activated,
            });
        }
        out
    }

    /// Resets activity tracking (new run).
    pub fn reset(&mut self) {
        self.active.iter_mut().for_each(|a| *a = false);
        self.activations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_constraint::parse_constraints;
    use ctxres_context::{Context, ContextKind, ContextState};

    fn engine() -> SituationEngine {
        // "Peter is in the office" — note situations are *satisfied*
        // formulas, so exists works naturally here.
        let situations = parse_constraints(
            "constraint peter_in_office:
               exists b: badge . same_subject(b, b) and eq(b.room, \"office\") and subject_eq(b, \"peter\")",
        )
        .unwrap();
        SituationEngine::new(situations)
    }

    fn badge(room: &str) -> Context {
        Context::builder(ContextKind::new("badge"), "peter")
            .attr("room", room)
            .build()
    }

    #[test]
    fn activation_counts_rising_edges_only() {
        let mut eng = engine();
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        let t = LogicalTime::ZERO;

        let s = eng.evaluate(&reg, &pool, t);
        assert!(!s[0].active);

        let id = pool.insert(badge("office"));
        pool.set_state(id, ContextState::Consistent).unwrap();
        let s = eng.evaluate(&reg, &pool, t);
        assert!(s[0].active && s[0].activated);

        // Still active: no new activation.
        let s = eng.evaluate(&reg, &pool, t);
        assert!(s[0].active && !s[0].activated);
        assert_eq!(eng.activations(), 1);
    }

    #[test]
    fn undecided_contexts_do_not_activate_situations() {
        let mut eng = engine();
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        pool.insert(badge("office")); // stays Undecided
        let s = eng.evaluate(&reg, &pool, LogicalTime::ZERO);
        assert!(!s[0].active);
        assert_eq!(eng.activations(), 0);
    }

    #[test]
    fn reactivation_counts_again() {
        let mut eng = engine();
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        let id = pool.insert(badge("office"));
        pool.set_state(id, ContextState::Consistent).unwrap();
        eng.evaluate(&reg, &pool, LogicalTime::ZERO);
        pool.remove(id);
        eng.evaluate(&reg, &pool, LogicalTime::ZERO);
        let id2 = pool.insert(badge("office"));
        pool.set_state(id2, ContextState::Consistent).unwrap();
        eng.evaluate(&reg, &pool, LogicalTime::ZERO);
        assert_eq!(eng.activations(), 2);
    }

    #[test]
    fn evaluation_error_deactivates_instead_of_panicking() {
        let situations =
            parse_constraints("constraint s: exists b: badge . eq(b.missing, 1)").unwrap();
        let mut eng = SituationEngine::new(situations);
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        let id = pool.insert(badge("office"));
        pool.set_state(id, ContextState::Consistent).unwrap();
        let s = eng.evaluate(&reg, &pool, LogicalTime::ZERO);
        assert!(!s[0].active);
    }

    #[test]
    fn reset_clears_state() {
        let mut eng = engine();
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        let id = pool.insert(badge("office"));
        pool.set_state(id, ContextState::Consistent).unwrap();
        eng.evaluate(&reg, &pool, LogicalTime::ZERO);
        assert_eq!(eng.activations(), 1);
        eng.reset();
        assert_eq!(eng.activations(), 0);
        let s = eng.evaluate(&reg, &pool, LogicalTime::ZERO);
        assert!(s[0].activated, "post-reset rising edge counts anew");
    }
}

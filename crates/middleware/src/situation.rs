//! Situation evaluation — the application-facing half of
//! context-awareness.
//!
//! A *situation* ("Peter is in his office", "shelf 3 needs restocking")
//! is a formula over the contexts currently *available* to applications.
//! The paper's second metric counts how many situations were actually
//! activated after inconsistency resolution (§4): a strategy that
//! discards the wrong contexts starves situations of the contexts they
//! need.
//!
//! Each situation is compiled once at construction
//! ([`CompiledConstraint`]) and evaluated through the evidence-free
//! [`CompiledEvaluator::holds`] path with a shared [`EvalScratch`], so
//! an evaluation round short-circuits its quantifiers and allocates
//! nothing for bindings or domains. [`SituationEngine::evaluate_dirty`]
//! additionally skips situations none of whose quantified kinds changed
//! since the last round, replaying their memoized status instead — the
//! dirty-kind cache the middleware drives.

use ctxres_constraint::{
    CompiledConstraint, CompiledEvaluator, Constraint, DomainMode, EvalScratch, Evaluator,
    PredicateRegistry,
};
use ctxres_context::{ContextKind, ContextPool, LogicalTime};
use std::collections::HashSet;
use std::sync::Arc;

/// The status of one situation after an evaluation round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SituationStatus {
    /// The situation's name (interned: cloning a status is a refcount
    /// bump, not a string copy).
    pub name: Arc<str>,
    /// Whether the situation currently holds.
    pub active: bool,
    /// Whether this round turned it from inactive to active (a
    /// rising-edge *activation*, the unit the paper counts).
    pub activated: bool,
    /// When the verdict was actually computed: the current round for a
    /// fresh evaluation, the memoized round's instant for a dirty-cache
    /// replay. Provenance consumers rely on this — a cache hit carries
    /// the original decision stamp instead of fabricating a fresh one.
    pub decided_at: LogicalTime,
}

/// Counters from one evaluation round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundCounters {
    /// Situations actually re-evaluated.
    pub evals: u64,
    /// Situations served from the memoized status (dirty-kind cache
    /// hits).
    pub skips: u64,
    /// Evaluations that went through a compiled program.
    pub compiled_evals: u64,
}

/// Evaluates a fixed set of situations over the available context view,
/// tracking rising edges.
///
/// Situations reuse the constraint [`Constraint`] machinery: a situation
/// is simply a named formula; `active` means *satisfied* over the
/// `Consistent`, live contexts.
#[derive(Debug)]
pub struct SituationEngine {
    situations: Vec<Constraint>,
    /// Compiled programs, parallel to `situations` (`None` only when
    /// compilation fails, e.g. an unbound variable — those fall back to
    /// the AST evaluator).
    compiled: Vec<Option<CompiledConstraint>>,
    /// Interned names, parallel to `situations`.
    names: Vec<Arc<str>>,
    active: Vec<bool>,
    /// Whether the situation has been evaluated at least once — memoized
    /// replay is only sound after a first evaluation.
    evaluated: Vec<bool>,
    /// When each situation's memoized verdict was last computed.
    decided_at: Vec<LogicalTime>,
    activations: u64,
    scratch: EvalScratch,
}

impl SituationEngine {
    /// Creates an engine for the given situations, compiling each once.
    pub fn new(situations: Vec<Constraint>) -> Self {
        let n = situations.len();
        let compiled = situations
            .iter()
            .map(|s| CompiledConstraint::compile(s).ok())
            .collect();
        let names = situations.iter().map(|s| Arc::from(s.name())).collect();
        SituationEngine {
            situations,
            compiled,
            names,
            active: vec![false; n],
            evaluated: vec![false; n],
            decided_at: vec![LogicalTime::ZERO; n],
            activations: 0,
            scratch: EvalScratch::new(),
        }
    }

    /// Number of situations.
    pub fn len(&self) -> usize {
        self.situations.len()
    }

    /// Whether the engine has no situations.
    pub fn is_empty(&self) -> bool {
        self.situations.is_empty()
    }

    /// Total rising-edge activations since construction.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Current activity flags, in situation order.
    pub fn active_flags(&self) -> &[bool] {
        &self.active
    }

    /// Re-evaluates every situation over the available view of `pool`.
    ///
    /// Evaluation errors (e.g. a missing attribute) deactivate the
    /// situation for the round rather than aborting: applications keep
    /// running when one situation's data is absent.
    pub fn evaluate(
        &mut self,
        registry: &PredicateRegistry,
        pool: &ContextPool,
        now: LogicalTime,
    ) -> Vec<SituationStatus> {
        self.round(registry, pool, now, None).0
    }

    /// Like [`SituationEngine::evaluate`], but re-evaluates only
    /// situations that quantify over a kind in `dirty` (or that were
    /// never evaluated); the rest replay their memoized status with
    /// `activated: false`.
    ///
    /// Sound whenever `dirty` contains every kind whose *available* view
    /// changed since the last round: a situation's verdict depends only
    /// on the available contexts of the kinds it quantifies over, so an
    /// unchanged kind-set implies an unchanged verdict, and an unchanged
    /// verdict can produce no rising edge.
    pub fn evaluate_dirty(
        &mut self,
        registry: &PredicateRegistry,
        pool: &ContextPool,
        now: LogicalTime,
        dirty: &HashSet<ContextKind>,
    ) -> (Vec<SituationStatus>, RoundCounters) {
        self.round(registry, pool, now, Some(dirty))
    }

    /// Full evaluation, but reporting round counters like
    /// [`SituationEngine::evaluate_dirty`] — the cache-off path.
    pub(crate) fn evaluate_counted(
        &mut self,
        registry: &PredicateRegistry,
        pool: &ContextPool,
        now: LogicalTime,
    ) -> (Vec<SituationStatus>, RoundCounters) {
        self.round(registry, pool, now, None)
    }

    fn round(
        &mut self,
        registry: &PredicateRegistry,
        pool: &ContextPool,
        now: LogicalTime,
        dirty: Option<&HashSet<ContextKind>>,
    ) -> (Vec<SituationStatus>, RoundCounters) {
        let evaluator = Evaluator::with_domain(registry, DomainMode::AvailableOnly);
        let compiled_eval = CompiledEvaluator::with_domain(registry, DomainMode::AvailableOnly);
        let mut counters = RoundCounters::default();
        let mut out = Vec::with_capacity(self.situations.len());
        for (i, situation) in self.situations.iter().enumerate() {
            let stale = match dirty {
                None => true,
                Some(dirty) => {
                    !self.evaluated[i] || situation.kinds().iter().any(|k| dirty.contains(k))
                }
            };
            if !stale {
                counters.skips += 1;
                out.push(SituationStatus {
                    name: Arc::clone(&self.names[i]),
                    active: self.active[i],
                    activated: false,
                    decided_at: self.decided_at[i],
                });
                continue;
            }
            counters.evals += 1;
            let active = match &self.compiled[i] {
                Some(cc) => {
                    counters.compiled_evals += 1;
                    compiled_eval
                        .holds(cc, pool, now, &mut self.scratch)
                        .unwrap_or(false)
                }
                None => evaluator
                    .check(situation, pool, now)
                    .map(|o| o.satisfied)
                    .unwrap_or(false),
            };
            let activated = active && !self.active[i];
            if activated {
                self.activations += 1;
            }
            self.active[i] = active;
            self.evaluated[i] = true;
            self.decided_at[i] = now;
            out.push(SituationStatus {
                name: Arc::clone(&self.names[i]),
                active,
                activated,
                decided_at: now,
            });
        }
        (out, counters)
    }

    /// Resets activity tracking (new run).
    pub fn reset(&mut self) {
        self.active.iter_mut().for_each(|a| *a = false);
        self.evaluated.iter_mut().for_each(|e| *e = false);
        self.decided_at
            .iter_mut()
            .for_each(|d| *d = LogicalTime::ZERO);
        self.activations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_constraint::parse_constraints;
    use ctxres_context::{Context, ContextKind, ContextState};

    fn engine() -> SituationEngine {
        // "Peter is in the office" — note situations are *satisfied*
        // formulas, so exists works naturally here.
        let situations = parse_constraints(
            "constraint peter_in_office:
               exists b: badge . same_subject(b, b) and eq(b.room, \"office\") and subject_eq(b, \"peter\")",
        )
        .unwrap();
        SituationEngine::new(situations)
    }

    fn badge(room: &str) -> Context {
        Context::builder(ContextKind::new("badge"), "peter")
            .attr("room", room)
            .build()
    }

    #[test]
    fn activation_counts_rising_edges_only() {
        let mut eng = engine();
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        let t = LogicalTime::ZERO;

        let s = eng.evaluate(&reg, &pool, t);
        assert!(!s[0].active);

        let id = pool.insert(badge("office"));
        pool.set_state(id, ContextState::Consistent).unwrap();
        let s = eng.evaluate(&reg, &pool, t);
        assert!(s[0].active && s[0].activated);

        // Still active: no new activation.
        let s = eng.evaluate(&reg, &pool, t);
        assert!(s[0].active && !s[0].activated);
        assert_eq!(eng.activations(), 1);
    }

    #[test]
    fn undecided_contexts_do_not_activate_situations() {
        let mut eng = engine();
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        pool.insert(badge("office")); // stays Undecided
        let s = eng.evaluate(&reg, &pool, LogicalTime::ZERO);
        assert!(!s[0].active);
        assert_eq!(eng.activations(), 0);
    }

    #[test]
    fn reactivation_counts_again() {
        let mut eng = engine();
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        let id = pool.insert(badge("office"));
        pool.set_state(id, ContextState::Consistent).unwrap();
        eng.evaluate(&reg, &pool, LogicalTime::ZERO);
        pool.remove(id);
        eng.evaluate(&reg, &pool, LogicalTime::ZERO);
        let id2 = pool.insert(badge("office"));
        pool.set_state(id2, ContextState::Consistent).unwrap();
        eng.evaluate(&reg, &pool, LogicalTime::ZERO);
        assert_eq!(eng.activations(), 2);
    }

    #[test]
    fn evaluation_error_deactivates_instead_of_panicking() {
        let situations =
            parse_constraints("constraint s: exists b: badge . eq(b.missing, 1)").unwrap();
        let mut eng = SituationEngine::new(situations);
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        let id = pool.insert(badge("office"));
        pool.set_state(id, ContextState::Consistent).unwrap();
        let s = eng.evaluate(&reg, &pool, LogicalTime::ZERO);
        assert!(!s[0].active);
    }

    #[test]
    fn reset_clears_state() {
        let mut eng = engine();
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        let id = pool.insert(badge("office"));
        pool.set_state(id, ContextState::Consistent).unwrap();
        eng.evaluate(&reg, &pool, LogicalTime::ZERO);
        assert_eq!(eng.activations(), 1);
        eng.reset();
        assert_eq!(eng.activations(), 0);
        let s = eng.evaluate(&reg, &pool, LogicalTime::ZERO);
        assert!(s[0].activated, "post-reset rising edge counts anew");
    }

    #[test]
    fn dirty_rounds_skip_clean_kinds_without_changing_statuses() {
        let mut eng = engine();
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        let t = LogicalTime::ZERO;
        let badge_kind = ContextKind::new("badge");

        // First round: never evaluated, so even an empty dirty set
        // evaluates everything.
        let (s, c) = eng.evaluate_dirty(&reg, &pool, t, &HashSet::new());
        assert!(!s[0].active);
        assert_eq!((c.evals, c.skips), (1, 0));

        let id = pool.insert(badge("office"));
        pool.set_state(id, ContextState::Consistent).unwrap();

        // Unrelated kind dirty: status replayed, pool change unseen —
        // exactly what a full evaluation of an unchanged *kind* would
        // have produced had the badge kind really not changed.
        let (s, c) = eng.evaluate_dirty(&reg, &pool, t, &HashSet::from([ContextKind::new("x")]));
        assert!(!s[0].active && !s[0].activated);
        assert_eq!((c.evals, c.skips), (0, 1));
        assert_eq!(eng.activations(), 0);

        // Badge kind dirty: re-evaluated, rising edge fires.
        let (s, c) = eng.evaluate_dirty(&reg, &pool, t, &HashSet::from([badge_kind.clone()]));
        assert!(s[0].active && s[0].activated);
        assert_eq!((c.evals, c.skips), (1, 0));
        assert_eq!(eng.activations(), 1);

        // Clean round: replay stays active, no second activation.
        let (s, c) = eng.evaluate_dirty(&reg, &pool, t, &HashSet::new());
        assert!(s[0].active && !s[0].activated);
        assert_eq!((c.evals, c.skips), (0, 1));
        assert_eq!(eng.activations(), 1);
    }

    #[test]
    fn replayed_statuses_carry_the_original_decision_stamp() {
        let mut eng = engine();
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        let badge_kind = ContextKind::new("badge");
        let id = pool.insert(badge("office"));
        pool.set_state(id, ContextState::Consistent).unwrap();

        let (s, _) = eng.evaluate_dirty(
            &reg,
            &pool,
            LogicalTime::new(5),
            &HashSet::from([badge_kind.clone()]),
        );
        assert_eq!(s[0].decided_at, LogicalTime::new(5));

        // Cache hit: the memoized verdict's stamp is replayed, not the
        // current round's clock.
        let (s, c) = eng.evaluate_dirty(&reg, &pool, LogicalTime::new(9), &HashSet::new());
        assert_eq!(c.skips, 1);
        assert_eq!(s[0].decided_at, LogicalTime::new(5));

        // A re-evaluation refreshes it.
        let (s, _) = eng.evaluate_dirty(
            &reg,
            &pool,
            LogicalTime::new(9),
            &HashSet::from([badge_kind]),
        );
        assert_eq!(s[0].decided_at, LogicalTime::new(9));
    }

    #[test]
    fn dirty_and_full_evaluation_agree_when_dirty_set_is_exact() {
        let reg = PredicateRegistry::with_builtins();
        let mut a = engine();
        let mut b = engine();
        let mut pool = ContextPool::new();
        let t = LogicalTime::ZERO;
        let all = HashSet::from([ContextKind::new("badge")]);

        for round in 0..4 {
            if round == 1 {
                let id = pool.insert(badge("office"));
                pool.set_state(id, ContextState::Consistent).unwrap();
            }
            if round == 3 {
                // Round 3 changes nothing: b may pass an empty dirty set.
                let dirty = HashSet::new();
                let (sb, _) = b.evaluate_dirty(&reg, &pool, t, &dirty);
                let sa = a.evaluate(&reg, &pool, t);
                assert_eq!(sa, sb);
                continue;
            }
            let sa = a.evaluate(&reg, &pool, t);
            let (sb, _) = b.evaluate_dirty(&reg, &pool, t, &all);
            assert_eq!(sa, sb);
        }
        assert_eq!(a.activations(), b.activations());
        assert_eq!(a.active_flags(), b.active_flags());
    }
}

//! Plug-in observers: Cabot-style management services hooking the
//! middleware's event stream.
//!
//! The paper's middleware "supports plug-in context management services"
//! (§4.1) — inconsistency resolution itself is deployed as one. Beyond
//! the resolution strategy, this module exposes the event stream to
//! passive services: loggers, monitors, debuggers, metric exporters.

use crate::middleware::{SubmitReport, UseRecord};
use ctxres_context::{Context, LogicalTime};
use ctxres_core::Inconsistency;
use std::fmt;

/// A passive middleware service observing the event stream.
///
/// All hooks default to no-ops so implementations override only what
/// they need. Observers run synchronously after the middleware has
/// finished processing the event they describe.
pub trait MiddlewareObserver: Send {
    /// A context was submitted (after detection and the strategy's
    /// addition handling).
    fn on_submitted(&mut self, _report: &SubmitReport, _ctx: &Context) {}

    /// Fresh inconsistencies were detected during an addition change.
    fn on_detections(&mut self, _fresh: &[Inconsistency]) {}

    /// A context-deletion change completed (the context was used).
    fn on_used(&mut self, _record: &UseRecord) {}

    /// The logical clock advanced to `now` (ticks from `advance_to`).
    fn on_advanced(&mut self, _now: LogicalTime) {}
}

/// One entry of the [`EventLog`] observer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A context arrived; payload: its display form and how many fresh
    /// inconsistencies it caused.
    Submitted {
        /// `Context` display string.
        context: String,
        /// Fresh inconsistencies detected.
        fresh: usize,
    },
    /// An inconsistency was detected; payload: its display form.
    Detected(String),
    /// A context was used; payload: the record.
    Used(UseRecord),
}

/// A bounded in-memory event log, the simplest useful observer (and the
/// shape a debugging UI would consume).
#[derive(Debug, Default)]
pub struct EventLog {
    events: Vec<Event>,
    capacity: Option<usize>,
}

impl EventLog {
    /// An unbounded log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// A log keeping only the most recent `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            events: Vec::new(),
            capacity: Some(capacity),
        }
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    fn push(&mut self, e: Event) {
        self.events.push(e);
        if let Some(cap) = self.capacity {
            if self.events.len() > cap {
                let overflow = self.events.len() - cap;
                self.events.drain(..overflow);
            }
        }
    }
}

impl fmt::Display for EventLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            match e {
                Event::Submitted { context, fresh } => {
                    writeln!(f, "+ {context} ({fresh} fresh)")?;
                }
                Event::Detected(inc) => writeln!(f, "! {inc}")?,
                Event::Used(r) => writeln!(
                    f,
                    "> {} at {} -> {}",
                    r.id,
                    r.at,
                    if r.delivered { "delivered" } else { "withheld" }
                )?,
            }
        }
        Ok(())
    }
}

impl MiddlewareObserver for EventLog {
    fn on_submitted(&mut self, report: &SubmitReport, ctx: &Context) {
        self.push(Event::Submitted {
            context: ctx.to_string(),
            fresh: report.fresh,
        });
    }

    fn on_detections(&mut self, fresh: &[Inconsistency]) {
        for inc in fresh {
            self.push(Event::Detected(inc.to_string()));
        }
    }

    fn on_used(&mut self, record: &UseRecord) {
        self.push(Event::Used(*record));
    }
}

/// Observers are usually registered as `Arc<Mutex<T>>` so the caller
/// keeps a handle to read the collected data after (or during) the run.
impl<T: MiddlewareObserver> MiddlewareObserver for std::sync::Arc<parking_lot::Mutex<T>> {
    fn on_submitted(&mut self, report: &SubmitReport, ctx: &Context) {
        self.lock().on_submitted(report, ctx);
    }

    fn on_detections(&mut self, fresh: &[Inconsistency]) {
        self.lock().on_detections(fresh);
    }

    fn on_used(&mut self, record: &UseRecord) {
        self.lock().on_used(record);
    }

    fn on_advanced(&mut self, now: LogicalTime) {
        self.lock().on_advanced(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_context::{ContextId, ContextKind, TruthTag};

    fn record(id: u64, delivered: bool) -> UseRecord {
        UseRecord {
            id: ContextId::from_raw(id),
            delivered,
            truth: TruthTag::Expected,
            at: LogicalTime::new(3),
        }
    }

    #[test]
    fn event_log_records_in_order() {
        let mut log = EventLog::new();
        let ctx = Context::builder(ContextKind::new("k"), "s").build();
        log.on_submitted(
            &SubmitReport {
                id: ContextId::from_raw(0),
                fresh: 2,
                discarded: Vec::new(),
                irrelevant: false,
            },
            &ctx,
        );
        log.on_used(&record(0, true));
        assert_eq!(log.events().len(), 2);
        let rendered = log.to_string();
        assert!(rendered.contains("2 fresh"));
        assert!(rendered.contains("delivered"));
    }

    #[test]
    fn bounded_log_keeps_most_recent() {
        let mut log = EventLog::with_capacity(2);
        for i in 0..5 {
            log.on_used(&record(i, false));
        }
        assert_eq!(log.events().len(), 2);
        assert_eq!(
            log.events(),
            &[Event::Used(record(3, false)), Event::Used(record(4, false))]
        );
    }

    #[test]
    fn shared_observer_delegates() {
        let shared = std::sync::Arc::new(parking_lot::Mutex::new(EventLog::new()));
        let mut handle = std::sync::Arc::clone(&shared);
        handle.on_used(&record(7, true));
        assert_eq!(shared.lock().events().len(), 1);
    }
}

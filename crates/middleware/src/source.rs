//! Context sources: client threads feeding the middleware.
//!
//! The paper's experiments produce contexts from "a client thread with a
//! controlled error rate" (§4.1). This module provides that shape:
//! [`spawn_replay`] replays a prepared trace of contexts through a
//! crossbeam channel from a separate thread, and [`collect`] drives a
//! middleware from any number of such sources, merging by stamp order.

use crossbeam::channel::{bounded, Receiver, Sender};
use ctxres_context::Context;
use std::thread::JoinHandle;

/// A handle to a spawned context source.
#[derive(Debug)]
pub struct SourceHandle {
    thread: JoinHandle<()>,
}

impl SourceHandle {
    /// Waits for the source thread to finish its trace.
    pub fn join(self) {
        let _ = self.thread.join();
    }
}

/// Spawns a client thread that sends `trace` through the returned
/// receiver, in order.
///
/// ```
/// use ctxres_context::{Context, ContextKind};
/// use ctxres_middleware::source::spawn_replay;
///
/// let trace = vec![Context::builder(ContextKind::new("t"), "s").build()];
/// let (rx, handle) = spawn_replay(trace);
/// assert_eq!(rx.iter().count(), 1);
/// handle.join();
/// ```
pub fn spawn_replay(trace: Vec<Context>) -> (Receiver<Context>, SourceHandle) {
    let (tx, rx): (Sender<Context>, Receiver<Context>) = bounded(256);
    let thread = std::thread::spawn(move || {
        for ctx in trace {
            if tx.send(ctx).is_err() {
                break; // receiver dropped: stop producing
            }
        }
    });
    (rx, SourceHandle { thread })
}

/// Merges several sources into one stamp-ordered stream.
///
/// Each receiver must itself be stamp-ordered (true for
/// [`spawn_replay`] of a sorted trace); the merge then yields a globally
/// sorted stream, the order the middleware expects.
pub fn collect(sources: Vec<Receiver<Context>>) -> Vec<Context> {
    let mut all: Vec<Context> = Vec::new();
    for rx in sources {
        all.extend(rx.iter());
    }
    all.sort_by_key(|c| c.stamp());
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_context::{ContextKind, LogicalTime};

    fn ctx(subject: &str, t: u64) -> Context {
        Context::builder(ContextKind::new("loc"), subject)
            .stamp(LogicalTime::new(t))
            .build()
    }

    #[test]
    fn replay_preserves_order() {
        let trace = vec![ctx("a", 1), ctx("a", 2), ctx("a", 3)];
        let (rx, handle) = spawn_replay(trace);
        let got: Vec<u64> = rx.iter().map(|c| c.stamp().tick()).collect();
        handle.join();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn collect_merges_by_stamp() {
        let (rx1, h1) = spawn_replay(vec![ctx("a", 1), ctx("a", 4)]);
        let (rx2, h2) = spawn_replay(vec![ctx("b", 2), ctx("b", 3)]);
        let merged = collect(vec![rx1, rx2]);
        h1.join();
        h2.join();
        let stamps: Vec<u64> = merged.iter().map(|c| c.stamp().tick()).collect();
        assert_eq!(stamps, vec![1, 2, 3, 4]);
    }

    #[test]
    fn dropping_receiver_stops_source() {
        let trace: Vec<Context> = (0..10_000).map(|t| ctx("a", t)).collect();
        let (rx, handle) = spawn_replay(trace);
        drop(rx);
        handle.join(); // must terminate, not hang
    }
}

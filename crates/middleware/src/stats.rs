//! Middleware counters.

use serde::{Deserialize, Serialize};

/// Counters the middleware maintains across a run.
///
/// The `*_expected` / `*_corrupted` splits are ground-truth
/// instrumentation (they read the workload generator's
/// [`ctxres_context::TruthTag`]) feeding the paper's metrics: context
/// survival rate and removal precision (§5.2) derive from the discard
/// split, `ctxUseRate` from the delivery split.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MiddlewareStats {
    /// Contexts submitted to the middleware.
    pub received: u64,
    /// Contexts that skipped checking (kind irrelevant to all
    /// constraints, Fig. 7 Part 1).
    pub irrelevant: u64,
    /// Context inconsistencies detected.
    pub inconsistencies: u64,
    /// Contexts delivered to applications on use.
    pub delivered: u64,
    /// Delivered contexts that were ground-truth expected.
    pub delivered_expected: u64,
    /// Delivered contexts that were ground-truth corrupted.
    pub delivered_corrupted: u64,
    /// Contexts discarded (set `Inconsistent`) by the strategy.
    pub discarded: u64,
    /// Discarded contexts that were ground-truth expected (losses).
    pub discarded_expected: u64,
    /// Discarded contexts that were ground-truth corrupted (catches).
    pub discarded_corrupted: u64,
    /// Contexts marked `Bad` (drop-bad only).
    pub marked_bad: u64,
    /// Use requests that found the context expired (neither delivered
    /// nor blamed).
    pub expired_on_use: u64,
    /// Rising-edge situation activations observed.
    pub situation_activations: u64,
    /// Addition changes whose consistency check failed with an
    /// evaluation error (missing attribute, unknown predicate); the
    /// context was admitted unchecked.
    pub eval_errors: u64,
    /// Contexts physically removed by retention compaction.
    pub compacted: u64,
}

impl MiddlewareStats {
    /// Adds another stats record into this one, field by field. The
    /// sharded middleware aggregates its per-shard counters this way —
    /// each shard's record is read under that shard's own lock, so no
    /// global lock ever exists.
    pub fn absorb(&mut self, other: &MiddlewareStats) {
        self.received += other.received;
        self.irrelevant += other.irrelevant;
        self.inconsistencies += other.inconsistencies;
        self.delivered += other.delivered;
        self.delivered_expected += other.delivered_expected;
        self.delivered_corrupted += other.delivered_corrupted;
        self.discarded += other.discarded;
        self.discarded_expected += other.discarded_expected;
        self.discarded_corrupted += other.discarded_corrupted;
        self.marked_bad += other.marked_bad;
        self.expired_on_use += other.expired_on_use;
        self.situation_activations += other.situation_activations;
        self.eval_errors += other.eval_errors;
        self.compacted += other.compacted;
    }

    /// Fraction of ground-truth expected contexts among those discarded
    /// that survived — the paper's *location context survival rate*
    /// (§5.2): expected contexts kept / expected contexts seen.
    pub fn survival_rate(&self) -> f64 {
        let expected_seen = self.discarded_expected + self.delivered_expected;
        if expected_seen == 0 {
            return 1.0;
        }
        self.delivered_expected as f64 / expected_seen as f64
    }

    /// Fraction of discarded contexts that were indeed corrupted — the
    /// paper's *removal precision* (§5.2).
    pub fn removal_precision(&self) -> f64 {
        if self.discarded == 0 {
            return 1.0;
        }
        self.discarded_corrupted as f64 / self.discarded as f64
    }
}

/// Per-shard counters of a sharded middleware, read shard-locally (each
/// shard's engine is behind its own lock; there is no global lock to
/// contend on when collecting these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index (the shared-scope shard is the last index).
    pub shard: usize,
    /// Whether this is the shared-scope shard (holds every context of
    /// the kinds global constraints quantify over).
    pub shared_scope: bool,
    /// Contexts ingested by this shard.
    pub ingested: u64,
    /// Constraint evaluations this shard's checker ran (pinned + full).
    pub checks: u64,
    /// Inconsistencies this shard detected.
    pub inconsistencies: u64,
    /// Irrelevant-kind fast-path hits (no check needed).
    pub fast_path_hits: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_every_field() {
        let one = MiddlewareStats {
            received: 1,
            irrelevant: 2,
            inconsistencies: 3,
            delivered: 4,
            delivered_expected: 5,
            delivered_corrupted: 6,
            discarded: 7,
            discarded_expected: 8,
            discarded_corrupted: 9,
            marked_bad: 10,
            expired_on_use: 11,
            situation_activations: 12,
            eval_errors: 13,
            compacted: 14,
        };
        let mut total = one;
        total.absorb(&one);
        assert_eq!(total.received, 2);
        assert_eq!(total.compacted, 28);
        assert_eq!(total.situation_activations, 24);
    }

    #[test]
    fn survival_rate_counts_kept_expected() {
        let s = MiddlewareStats {
            delivered_expected: 96,
            discarded_expected: 4,
            ..MiddlewareStats::default()
        };
        assert!((s.survival_rate() - 0.96).abs() < 1e-12);
    }

    #[test]
    fn removal_precision_counts_true_discards() {
        let s = MiddlewareStats {
            discarded: 10,
            discarded_corrupted: 8,
            discarded_expected: 2,
            ..MiddlewareStats::default()
        };
        assert!((s.removal_precision() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_rates_are_one() {
        let s = MiddlewareStats::default();
        assert_eq!(s.survival_rate(), 1.0);
        assert_eq!(s.removal_precision(), 1.0);
    }
}

//! Concurrent front-end: one middleware shared between producer and
//! consumer threads.
//!
//! The paper's setup has a client thread producing contexts while
//! applications consume them (§4.1). [`SharedMiddleware`] wraps a
//! [`Middleware`] in an `Arc<Mutex<…>>` so context sources pump into it
//! from any number of threads while applications poll their
//! subscriptions from others. Event ordering within a source is
//! preserved; cross-source ordering follows channel arrival, as in any
//! real deployment.

use crate::middleware::Middleware;
use crossbeam::channel::Receiver;
use ctxres_context::Context;
use parking_lot::{Mutex, MutexGuard};
use std::sync::Arc;

/// Re-raises a worker thread's panic on the joining thread. String-ish
/// payloads (`String` and `&'static str` — everything `panic!` itself
/// produces) are resumed **verbatim**, so `#[should_panic(expected)]`
/// tests and log scrapers see the original message; any other payload
/// type is replaced by a message naming the worker, because an opaque
/// `Box<dyn Any>` would otherwise surface as the useless
/// "Any { .. }".
pub(crate) fn resume_worker_panic(worker: &str, payload: Box<dyn std::any::Any + Send>) -> ! {
    if payload.is::<String>() || payload.is::<&'static str>() {
        std::panic::resume_unwind(payload);
    }
    panic!("{worker} panicked with a non-string payload");
}

/// A thread-shareable middleware handle.
///
/// ```
/// use ctxres_middleware::{Middleware, SharedMiddleware};
/// use ctxres_core::strategies::DropBad;
///
/// let mw = Middleware::builder().strategy(Box::new(DropBad::new())).build();
/// let shared = SharedMiddleware::new(mw);
/// let for_thread = shared.clone();
/// std::thread::spawn(move || {
///     let _stats = *for_thread.lock().stats();
/// })
/// .join()
/// .unwrap();
/// ```
#[derive(Clone)]
pub struct SharedMiddleware {
    inner: Arc<Mutex<Middleware>>,
}

impl std::fmt::Debug for SharedMiddleware {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedMiddleware").finish_non_exhaustive()
    }
}

impl SharedMiddleware {
    /// Wraps a middleware for sharing.
    pub fn new(middleware: Middleware) -> Self {
        SharedMiddleware {
            inner: Arc::new(Mutex::new(middleware)),
        }
    }

    /// Locks the middleware for direct access (submit, poll, stats, …).
    pub fn lock(&self) -> MutexGuard<'_, Middleware> {
        self.inner.lock()
    }

    /// Consumes a context channel to exhaustion, submitting every
    /// context. Blocks the calling thread; run one pump per source
    /// thread, or funnel several producers into one channel.
    ///
    /// Returns how many contexts were pumped.
    pub fn pump(&self, source: Receiver<Context>) -> usize {
        let mut n = 0;
        for ctx in source {
            self.lock().submit(ctx);
            n += 1;
        }
        n
    }

    /// Pumps a channel from a freshly spawned thread; join the handle to
    /// wait for the source to finish.
    pub fn pump_in_thread(&self, source: Receiver<Context>) -> PumpHandle {
        let this = self.clone();
        PumpHandle {
            inner: std::thread::spawn(move || this.pump(source)),
        }
    }
}

/// Handle to a pump thread spawned by
/// [`SharedMiddleware::pump_in_thread`].
///
/// Unlike a raw [`std::thread::JoinHandle`], [`PumpHandle::join`]
/// re-raises a panic from the pump thread on the joining thread instead
/// of returning it as an opaque `Err` — a crashed source (e.g. a
/// panicking strategy or observer) fails the run loudly rather than
/// surfacing as a silently short count.
#[derive(Debug)]
pub struct PumpHandle {
    inner: std::thread::JoinHandle<usize>,
}

impl PumpHandle {
    /// Waits for the pump to exhaust its channel and returns how many
    /// contexts it submitted.
    ///
    /// # Panics
    ///
    /// Resumes the pump thread's panic, if it had one: `String` and
    /// `&'static str` payloads verbatim, anything else as a labelled
    /// panic naming the pump thread.
    pub fn join(self) -> usize {
        match self.inner.join() {
            Ok(n) => n,
            Err(payload) => resume_worker_panic("pump thread", payload),
        }
    }

    /// Whether the pump thread has finished (without blocking).
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middleware::MiddlewareConfig;
    use crate::subscription::SubscriptionFilter;
    use ctxres_constraint::parse_constraints;
    use ctxres_context::{ContextKind, LogicalTime, Point, Ticks};
    use ctxres_core::strategies::DropBad;

    fn shared() -> SharedMiddleware {
        let mw = Middleware::builder()
            .constraints(
                parse_constraints(
                    "constraint region: forall a: location . within(a, -1000.0, -1000.0, 1000.0, 1000.0)",
                )
                .unwrap(),
            )
            .strategy(Box::new(DropBad::new()))
            .config(MiddlewareConfig { window: Ticks::new(0), track_ground_truth: false, retention: None })
            .build();
        SharedMiddleware::new(mw)
    }

    fn loc(subject: &str, t: u64) -> Context {
        Context::builder(ContextKind::new("location"), subject)
            .attr("pos", Point::new(t as f64 * 0.1, 0.0))
            .attr("seq", t as i64)
            .stamp(LogicalTime::new(t))
            .build()
    }

    #[test]
    fn producers_and_consumers_share_one_middleware() {
        let shared = shared();
        let feed = shared.lock().subscribe(SubscriptionFilter::all());

        let (tx_a, rx_a) = crossbeam::channel::bounded(16);
        let (tx_b, rx_b) = crossbeam::channel::bounded(16);
        let pump_a = shared.pump_in_thread(rx_a);
        let pump_b = shared.pump_in_thread(rx_b);
        let producer_a = std::thread::spawn(move || {
            for t in 0..50 {
                tx_a.send(loc("alice", t)).unwrap();
            }
        });
        let producer_b = std::thread::spawn(move || {
            for t in 0..50 {
                tx_b.send(loc("bob", t)).unwrap();
            }
        });

        // A consumer polls concurrently while production runs.
        let consumer = {
            let shared = shared.clone();
            std::thread::spawn(move || {
                let mut seen = 0;
                while seen < 100 {
                    seen += shared.lock().poll(feed).len();
                    std::thread::yield_now();
                }
                seen
            })
        };

        producer_a.join().unwrap();
        producer_b.join().unwrap();
        assert_eq!(pump_a.join(), 50);
        assert_eq!(pump_b.join(), 50);
        shared.lock().drain();
        assert_eq!(consumer.join().unwrap(), 100);
        assert_eq!(shared.lock().stats().delivered, 100);
    }

    #[test]
    fn pump_returns_on_channel_close() {
        let shared = shared();
        let (tx, rx) = crossbeam::channel::unbounded();
        tx.send(loc("a", 0)).unwrap();
        drop(tx);
        assert_eq!(shared.pump(rx), 1);
    }

    #[test]
    fn pump_thread_panic_propagates_on_join() {
        struct Exploder;
        impl crate::observer::MiddlewareObserver for Exploder {
            fn on_submitted(&mut self, _report: &crate::middleware::SubmitReport, _ctx: &Context) {
                panic!("observer exploded");
            }
        }
        let mw = Middleware::builder()
            .strategy(Box::new(DropBad::new()))
            .observer(Box::new(Exploder))
            .build();
        let shared = SharedMiddleware::new(mw);
        let (tx, rx) = crossbeam::channel::unbounded();
        tx.send(loc("a", 0)).unwrap();
        drop(tx);
        let handle = shared.pump_in_thread(rx);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle.join()));
        let payload = outcome.expect_err("the source panic must reach the joiner");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "observer exploded");
    }

    #[test]
    fn formatted_panic_payload_survives_the_relay_verbatim() {
        struct Exploder;
        impl crate::observer::MiddlewareObserver for Exploder {
            fn on_submitted(&mut self, _report: &crate::middleware::SubmitReport, ctx: &Context) {
                panic!("bad context from {}", ctx.subject());
            }
        }
        let mw = Middleware::builder()
            .strategy(Box::new(DropBad::new()))
            .observer(Box::new(Exploder))
            .build();
        let shared = SharedMiddleware::new(mw);
        let (tx, rx) = crossbeam::channel::unbounded();
        tx.send(loc("alice", 0)).unwrap();
        drop(tx);
        let handle = shared.pump_in_thread(rx);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle.join()));
        let payload = outcome.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("String payloads are preserved as String");
        assert_eq!(msg, "bad context from alice");
    }

    #[test]
    fn non_string_panic_payload_is_labelled() {
        let payload: Box<dyn std::any::Any + Send> = Box::new(42_u32);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            resume_worker_panic("pump thread", payload)
        }));
        let relabelled = outcome.expect_err("must still panic");
        let msg = relabelled.downcast_ref::<String>().cloned().unwrap();
        assert_eq!(msg, "pump thread panicked with a non-string payload");
    }
}

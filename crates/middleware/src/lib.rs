//! Cabot-style context-management middleware.
//!
//! The ICDCS'08 paper "assume\[s\] the existence of a middleware
//! infrastructure that collects contexts from distributed context
//! sources … and manages these contexts for pervasive computing", with
//! inconsistency resolution "as a management service in the middleware"
//! (§1). The experiments ran on the authors' Cabot middleware, which
//! supports plug-in context-management services (§4.1).
//!
//! This crate re-implements that substrate:
//!
//! * [`Middleware`] owns the context pool, runs incremental
//!   inconsistency detection on every **context addition change**, and
//!   drives the plugged-in [`ResolutionStrategy`] on both addition and
//!   **context deletion changes** (a context being used by an
//!   application);
//! * a configurable **time window** ([`MiddlewareConfig::window`])
//!   schedules when buffered contexts are used — the knob §5.3 discusses
//!   (window → 0 degenerates drop-bad into drop-latest);
//! * a [`SituationEngine`] evaluates application **situations** over the
//!   *available* context view and reports rising-edge activations — the
//!   paper's second context-awareness metric;
//! * [`source`] provides crossbeam-channel context sources replaying
//!   traces from client threads, as in the paper's experimental setup.
//!
//! # Example
//!
//! ```
//! use ctxres_constraint::parse_constraints;
//! use ctxres_context::{Context, ContextKind, LogicalTime, Point, Ticks};
//! use ctxres_core::strategies::DropBad;
//! use ctxres_middleware::{Middleware, MiddlewareConfig};
//!
//! let constraints = parse_constraints(
//!     "constraint region: forall a: location . within(a, 0.0, 0.0, 10.0, 10.0)",
//! )?;
//! let mut mw = Middleware::builder()
//!     .constraints(constraints)
//!     .strategy(Box::new(DropBad::new()))
//!     .config(MiddlewareConfig { window: Ticks::new(2), ..MiddlewareConfig::default() })
//!     .build();
//!
//! let ctx = Context::builder(ContextKind::new("location"), "peter")
//!     .attr("pos", Point::new(3.0, 4.0))
//!     .stamp(LogicalTime::new(0))
//!     .build();
//! mw.submit(ctx);
//! mw.advance_to(LogicalTime::new(5)); // window elapses, context is used
//! assert_eq!(mw.stats().delivered, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod concurrent;
mod middleware;
mod observer;
mod shard;
mod situation;
pub mod source;
mod stats;
mod subscription;

pub use concurrent::{PumpHandle, SharedMiddleware};
pub use middleware::{Middleware, MiddlewareBuilder, MiddlewareConfig, SubmitReport, UseRecord};
pub use observer::{Event, EventLog, MiddlewareObserver};
pub use shard::{ShardLoad, ShardPlan, ShardedMiddleware};
pub use situation::{SituationEngine, SituationStatus};
pub use stats::{MiddlewareStats, ShardStats};
pub use subscription::{SubscriptionFilter, SubscriptionId};

pub use ctxres_core::ResolutionStrategy;

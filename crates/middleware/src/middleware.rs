//! The middleware core: detection, buffering, plug-in resolution.

use crate::observer::MiddlewareObserver;
use crate::situation::{RoundCounters, SituationEngine};
use crate::stats::MiddlewareStats;
use crate::subscription::{SubscriptionFilter, SubscriptionId, SubscriptionTable};
use ctxres_constraint::{
    Constraint, ConstraintSet, Detection, EvalError, EvalScratch, IncrementalChecker, KindPlan,
    PlanCounts, PredMemo, PredicateRegistry,
};
use ctxres_context::{
    Context, ContextId, ContextKind, ContextPool, ContextState, LogicalTime, Ticks, TruthTag,
};
use ctxres_core::{Inconsistency, ResolutionStrategy};
use ctxres_obs::{
    CauseKind, ContextSpan, CounterKind, KindHandle, MetricKind, Phase, ShardObs, SpecBatch,
    SpecOutcome, TailOutcome, TraceEvent,
};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Relevant positions a fused batch needs before speculative checking
/// fans out to worker threads; below this the scope spawn/join overhead
/// outweighs the parallelism.
const FUSED_PARALLEL_MIN: usize = 64;

/// Upper bound on speculative-checking workers per shard engine. The
/// sharded front-end already runs one ingest thread per shard, so a
/// small intra-shard factor covers a hot shard without oversubscribing
/// the host.
const FUSED_MAX_WORKERS: usize = 4;

/// Safety valve on the pending end-to-end span map: contexts that
/// never reach a terminal outcome (e.g. removed by retention while
/// still buffered) would otherwise accumulate stamps forever. Crossing
/// this bound drops the whole map — tail telemetry is advisory, the
/// engine must stay bounded.
const TAIL_PENDING_MAX: usize = 1 << 20;

/// The in-flight end-to-end stamps of one context, held from ingress
/// until its terminal outcome folds them into the tail histograms.
struct PendingTail {
    ingress_ns: u64,
    verdict_ns: u64,
    decision_ns: u64,
    batch_index: u64,
    spec: SpecOutcome,
}

/// Tunables of a middleware instance.
#[derive(Debug, Clone, Copy)]
pub struct MiddlewareConfig {
    /// The **time window**: how long after arrival a buffered context is
    /// used by the application (paper §5.3). Window 0 means contexts are
    /// used immediately on arrival, degenerating drop-bad into
    /// drop-latest.
    pub window: Ticks,
    /// Maintain the ground-truth shadow view for matched-activation
    /// accounting (experiment instrumentation; costs one shadow pool).
    pub track_ground_truth: bool,
    /// When set, contexts that are discarded or expired and older than
    /// this horizon are physically removed from the pools — bounding
    /// memory in long-running deployments. `None` keeps everything (the
    /// experiments want the full record).
    pub retention: Option<Ticks>,
}

impl Default for MiddlewareConfig {
    fn default() -> Self {
        MiddlewareConfig {
            window: Ticks::new(5),
            track_ground_truth: true,
            retention: None,
        }
    }
}

/// What happened when a context was submitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitReport {
    /// The id assigned to the context.
    pub id: ContextId,
    /// Number of fresh inconsistencies detected.
    pub fresh: usize,
    /// Contexts the strategy discarded during this addition change.
    pub discarded: Vec<ContextId>,
    /// Whether the context was irrelevant to every constraint (fast
    /// path: made `Consistent` immediately, Fig. 7 Part 1).
    pub irrelevant: bool,
}

/// One application use of a context (a context-deletion change).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UseRecord {
    /// The used context.
    pub id: ContextId,
    /// Whether it was delivered (vs discarded/expired).
    pub delivered: bool,
    /// Ground-truth tag (instrumentation).
    pub truth: TruthTag,
    /// When the use happened.
    pub at: LogicalTime,
}

/// The Cabot-style middleware: context pool + incremental detection +
/// plug-in resolution strategy + situation engine.
///
/// See the crate-level example. Drive it by [`Middleware::submit`]-ting
/// contexts (stamps advance the logical clock) and
/// [`Middleware::advance_to`] / [`Middleware::drain`] to let the time
/// window elapse.
pub struct Middleware {
    pool: ContextPool,
    registry: PredicateRegistry,
    checker: IncrementalChecker,
    strategy: Box<dyn ResolutionStrategy + Send>,
    situations: SituationEngine,
    gt_situations: SituationEngine,
    gt_pool: ContextPool,
    gt_buffer: VecDeque<(LogicalTime, ContextId)>,
    config: MiddlewareConfig,
    clock: LogicalTime,
    buffer: VecDeque<(LogicalTime, ContextId)>,
    stats: MiddlewareStats,
    detections: Vec<Inconsistency>,
    use_log: Vec<UseRecord>,
    dirty: bool,
    /// Dirty-kind situation cache: when on, an evaluation round skips
    /// situations none of whose quantified kinds changed since the last
    /// round. Metrics are provably unchanged — the `dirty` flag still
    /// decides *whether* a round happens, the dirty sets only decide
    /// *which* situations re-evaluate within it.
    situation_cache: bool,
    /// Kinds whose available view may have changed since the last
    /// evaluation round (strategy pool / ground-truth pool).
    dirty_kinds: HashSet<ContextKind>,
    gt_dirty_kinds: HashSet<ContextKind>,
    /// Pending expiry instants: a context with a finite lifespan leaves
    /// every live domain at `expires_at` *without* a state transition, so
    /// its kind must be re-dirtied when the clock passes that instant.
    expiry_queue: BTreeMap<LogicalTime, Vec<ContextKind>>,
    gt_expiry_queue: BTreeMap<LogicalTime, Vec<ContextKind>>,
    /// Whether `batch_add` may take the fused path (set-pinned batch
    /// checking, deferred index maintenance, speculative subject-group
    /// parallelism) when the deployed constraints support it.
    fused: bool,
    /// Doom notes for the fused path: the first instant at which a
    /// retention sweep *could* remove each context (its stamp and
    /// deadline — or discard instant — aged past the horizon). The
    /// fused path pops due notes instead of running the O(slots)
    /// [`ContextPool::compact`] scan per position; because the compact
    /// predicate is monotone in the horizon, popping at the note's
    /// instant removes each context at exactly the position a
    /// per-submit sweep would have.
    doom_queue: BTreeMap<LogicalTime, Vec<ContextId>>,
    gt_doom_queue: BTreeMap<LogicalTime, Vec<ContextId>>,
    /// Live only inside a fused batch: subjects touched by a discard
    /// since the batch's speculation pass. A position whose subject is
    /// in here re-checks inline at commit instead of consuming its
    /// (possibly stale) speculative verdict.
    fused_dirty_subjects: Option<HashSet<Arc<str>>>,
    /// Checker compiled-eval count already forwarded to `obs`.
    reported_compiled_evals: u64,
    /// Violations seen per still-undecided context, for the chain-depth
    /// histogram (submission + violations + verdict). Populated only
    /// when provenance tracing is on; entries leave at verdict time.
    prov_violations: HashMap<ContextId, u64>,
    matched: u64,
    covered: Vec<bool>,
    epoch_started: Vec<Option<LogicalTime>>,
    latency_sum: u64,
    observers: Vec<Box<dyn MiddlewareObserver>>,
    subscriptions: SubscriptionTable,
    obs: ShardObs,
    /// Cached per-kind health handles: each handle wraps the shard's
    /// interned [`ctxres_obs`] kind cell, so the per-event quality
    /// counters (ingested / delivered / discarded / expired /
    /// violations) are plain atomic bumps after the first lookup.
    kind_cells: HashMap<ContextKind, KindHandle>,
    /// In-flight end-to-end spans, keyed by context: stamped at
    /// ingress/verdict/decision, folded into the tail histograms at the
    /// terminal delivery/discard/expiry. Empty unless
    /// [`ctxres_obs::ObsConfig::with_tail`] is on.
    tail_pending: HashMap<ContextId, PendingTail>,
    /// Engine-local fused-batch counter; postmortems and exemplars cite
    /// it.
    next_batch: u64,
    /// Live only inside a fused batch with tail telemetry on: contexts
    /// captured as tail exemplars while the batch committed, for the
    /// slow-batch postmortem.
    tail_batch_exemplars: Option<Vec<ContextId>>,
}

impl fmt::Debug for Middleware {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Middleware")
            .field("strategy", &self.strategy.name())
            .field("clock", &self.clock)
            .field("buffered", &self.buffer.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Middleware {
    /// Starts building a middleware.
    pub fn builder() -> MiddlewareBuilder {
        MiddlewareBuilder::default()
    }

    /// The logical clock (max of all seen stamps and advance targets).
    pub fn now(&self) -> LogicalTime {
        self.clock
    }

    /// The managed context pool.
    pub fn pool(&self) -> &ContextPool {
        &self.pool
    }

    /// Run counters.
    pub fn stats(&self) -> &MiddlewareStats {
        &self.stats
    }

    /// The incremental checker's evaluation counters (how many pinned
    /// and full constraint checks ran).
    pub fn checker_stats(&self) -> ctxres_constraint::CheckerStats {
        self.checker.stats()
    }

    /// Matched situation activations: ground-truth situation *epochs*
    /// (maximal intervals where the situation truly held) that the
    /// strategy's view also activated. The experiments normalize this
    /// against OPT-R to obtain `sitActRate`.
    pub fn matched_activations(&self) -> u64 {
        self.matched
    }

    /// Mean activation latency in ticks: how long after a ground-truth
    /// situation epoch began the strategy's view first reflected it.
    /// Quantifies the §3.3 trade-off — drop-bad buys accuracy by waiting
    /// for count evidence, eager strategies react immediately.
    pub fn mean_activation_latency(&self) -> Option<f64> {
        (self.matched > 0).then(|| self.latency_sum as f64 / self.matched as f64)
    }

    /// Every inconsistency detected so far (for the §5.2 heuristic-rule
    /// monitors).
    pub fn detections(&self) -> &[Inconsistency] {
        &self.detections
    }

    /// The log of context uses.
    pub fn use_log(&self) -> &[UseRecord] {
        &self.use_log
    }

    /// The plugged-in strategy's name.
    pub fn strategy_name(&self) -> &'static str {
        self.strategy.name()
    }

    /// Hot-swaps the resolution strategy, returning the previous one.
    /// The incoming strategy is attached to the engine's observability
    /// handle (as [`MiddlewareBuilder::build`] does). Pool state,
    /// buffered uses and stats carry over — the swap only changes how
    /// *future* additions and uses are resolved, which is exactly the
    /// mid-run policy change the soak harness exercises.
    pub fn swap_strategy(
        &mut self,
        mut strategy: Box<dyn ResolutionStrategy + Send>,
    ) -> Box<dyn ResolutionStrategy + Send> {
        strategy.attach_obs(self.obs.clone());
        std::mem::replace(&mut self.strategy, strategy)
    }

    /// Number of contexts awaiting use in the buffer.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// The predicate registry in use.
    pub fn registry(&self) -> &PredicateRegistry {
        &self.registry
    }

    /// The observability handle this instance records through (a
    /// disabled no-op handle unless one was attached at build time).
    pub fn obs(&self) -> &ShardObs {
        &self.obs
    }

    /// Registers an application subscription; every *delivered* context
    /// matching `filter` is enqueued for it.
    pub fn subscribe(&mut self, filter: SubscriptionFilter) -> SubscriptionId {
        self.subscriptions.subscribe(filter)
    }

    /// Drains a subscription's pending deliveries (oldest first).
    pub fn poll(&mut self, sub: SubscriptionId) -> Vec<ContextId> {
        self.subscriptions.drain(sub)
    }

    /// Submits a context (a **context addition change**). The context's
    /// stamp advances the logical clock; buffered contexts whose window
    /// elapsed are used first.
    pub fn submit(&mut self, ctx: Context) -> SubmitReport {
        self.submit_with_plan(ctx, None)
    }

    /// Submits a whole batch in arrival order, amortizing the per-kind
    /// checking work: the batch is grouped by kind up front, each
    /// distinct kind's [`KindPlan`] (relevance + pinned-quantifier
    /// positions) is built once, and every context of the kind is
    /// checked through that plan. When the deployed constraints all
    /// compile into the per-subject universal-positive fragment (and
    /// fusion wasn't disabled via [`MiddlewareBuilder::fused`] /
    /// `CTXRES_FUSED`), the batch itself becomes the unit of work — see
    /// [`Middleware::batch_add_fused`]. Either way the verdict stream —
    /// reports, discards, provenance, situation rounds — is identical
    /// to submitting the contexts one at a time (enforced by the
    /// batch- and fused-equivalence proptests).
    pub fn batch_add(&mut self, batch: Vec<Context>) -> Vec<SubmitReport> {
        if self.fused && !batch.is_empty() && self.checker.supports_batch_fusion() {
            return self.batch_add_fused(batch);
        }
        // The profiler root for the whole ingest pipeline: checking,
        // resolution, situation rounds and health publishing nest under
        // it, so its self time is the batch bookkeeping proper.
        let obs = self.obs.clone();
        let _ingest_phase = obs.phase(Phase::Ingest);
        let mut plans: HashMap<ContextKind, KindPlan> = HashMap::new();
        for ctx in &batch {
            if !plans.contains_key(ctx.kind()) {
                plans.insert(ctx.kind().clone(), self.checker.plan_for(ctx.kind()));
            }
        }
        let reports: Vec<SubmitReport> = batch
            .into_iter()
            .map(|ctx| {
                let plan = plans.get(ctx.kind());
                self.submit_with_plan(ctx, plan)
            })
            .collect();
        self.publish_health();
        reports
    }

    /// The fused batch path: the batch is the unit of work.
    ///
    /// 1. **Staging.** Every context enters the arena up front through
    ///    [`ContextPool::insert_batch`], which appends to each touched
    ///    kind×subject index bucket and restores the bucket's
    ///    `(stamp, id)` order once per batch instead of per insert.
    /// 2. **Speculation.** Relevant positions are grouped by subject —
    ///    the per-subject scope proof carried by every compiled
    ///    constraint makes disjoint-subject checks independent — and
    ///    checked against the staged pool, on worker threads when the
    ///    batch is large enough. Capping every quantifier domain at the
    ///    position's own id reproduces exactly the pool a sequential
    ///    submission would have seen: ids are monotone and buckets are
    ///    `(stamp, id)`-sorted, so the cap selects the sequential
    ///    prefix. Workers share a per-batch predicate memo; a group
    ///    stops speculating past its first predicted violation, since
    ///    the strategy may then discard.
    /// 3. **Commit.** Positions replay in arrival order with the full
    ///    per-submit protocol (events, counters, provenance, strategy
    ///    calls, buffer drains, situation rounds). A position consumes
    ///    its speculative verdict unless a discard has touched its
    ///    subject since speculation — then it re-checks inline, seeing
    ///    the post-discard pool exactly as the sequential path would.
    ///    Discards are the only commit effects that can change a check:
    ///    deliveries and bad-marks keep contexts in the quantifier
    ///    domains, and expiry is a pure function of the position clock.
    ///
    /// Retention compaction is driven by the doom-note queues instead
    /// of a per-position pool scan; the notes record the first instant
    /// the compact predicate can hold, so removals land at the same
    /// positions. The verdict stream is identical to the sequential
    /// path; only the arena slot-allocation order (and therefore the
    /// free-slot/recycle *gauges*) can differ, because the whole batch
    /// claims slots before, not between, retention sweeps.
    fn batch_add_fused(&mut self, batch: Vec<Context>) -> Vec<SubmitReport> {
        struct Pos {
            id: ContextId,
            now: LogicalTime,
            plan: usize,
            relevant: bool,
            subject: Arc<str>,
        }
        struct Spec {
            result: Result<Vec<Detection>, EvalError>,
            counts: PlanCounts,
        }
        /// What one speculation worker hands back: its (position, verdict)
        /// pairs, its private predicate memo, and its busy-ns occupancy.
        type FusedWorkerYield = (Vec<(usize, Spec)>, PredMemo, u64);

        let obs = self.obs.clone();
        let _ingest_phase = obs.phase(Phase::Ingest);

        // Tail telemetry stamps: one monotonic ingress stamp covers the
        // whole batch (contexts "arrive" together), and per-batch
        // speculation accounting folds into the shard's tail slot at
        // the end. All of it is branch-gated so the tail-off path reads
        // no clocks.
        let tail_on = self.obs.tail_enabled();
        let batch_index = self.next_batch;
        let batch_start_ns = if tail_on { self.obs.now_ns() } else { 0 };
        if tail_on {
            self.tail_batch_exemplars = Some(Vec::new());
        }
        let mut spec_batch = SpecBatch::default();

        // One plan per distinct kind; positions refer to it by index so
        // the commit loop does no per-context kind clone or map lookup.
        let mut plan_ix: HashMap<ContextKind, usize> = HashMap::new();
        let mut plans: Vec<KindPlan> = Vec::new();
        let mut sim_clock = self.clock;
        let mut meta: Vec<Pos> = Vec::with_capacity(batch.len());
        for ctx in &batch {
            let plan = match plan_ix.get(ctx.kind()) {
                Some(&i) => i,
                None => {
                    let i = plans.len();
                    plans.push(self.checker.plan_for(ctx.kind()));
                    plan_ix.insert(ctx.kind().clone(), i);
                    i
                }
            };
            // The prefix-max of stamps is the logical clock each
            // position will commit under.
            if ctx.stamp() > sim_clock {
                sim_clock = ctx.stamp();
            }
            meta.push(Pos {
                id: ContextId::from_raw(0), // assigned by staging below
                now: sim_clock,
                plan,
                relevant: plans[plan].is_relevant(),
                subject: Arc::clone(ctx.subject_arc()),
            });
        }

        {
            // Deferred index maintenance: stage the whole batch, one
            // bucket repair per touched kind×subject index.
            let maint_obs = self.obs.clone();
            let _maint_phase = maint_obs.phase(Phase::IndexMaint);
            for (pos, id) in meta.iter_mut().zip(self.pool.insert_batch(batch)) {
                pos.id = id;
            }
        }
        let stage_end_ns = if tail_on { self.obs.now_ns() } else { 0 };

        // Disjoint-footprint subject groups over the relevant
        // positions, in first-appearance order.
        let mut groups: Vec<Vec<usize>> = Vec::new();
        {
            let mut by_subject: HashMap<&Arc<str>, usize> = HashMap::new();
            for (k, pos) in meta.iter().enumerate() {
                if !pos.relevant {
                    continue;
                }
                match by_subject.get(&pos.subject) {
                    Some(&g) => groups[g].push(k),
                    None => {
                        by_subject.insert(&pos.subject, groups.len());
                        groups.push(vec![k]);
                    }
                }
            }
        }

        // Speculative checking. Workers share the staged pool
        // read-only; each keeps its own scratch and predicate memo, and
        // the memos fold into the commit memo afterwards.
        let relevant_total: usize = groups.iter().map(Vec::len).sum();
        let mut specs: Vec<Option<Spec>> = Vec::new();
        specs.resize_with(meta.len(), || None);
        let mut memo = PredMemo::new();
        if relevant_total > 0 {
            let check_obs = self.obs.clone();
            let check_phase = check_obs.phase(Phase::ConstraintCheck);
            let pool = &self.pool;
            let registry = &self.registry;
            let checker = &self.checker;
            let plans_ref = &plans;
            let meta_ref = &meta;
            let groups_ref = &groups;
            let run_worker = |offset: usize, step: usize| -> FusedWorkerYield {
                // Busy-ns occupancy for the speculation-efficiency
                // telemetry; the clock is only read when the tail layer
                // is on.
                let started = tail_on.then(std::time::Instant::now);
                let mut scratch = EvalScratch::new();
                let mut memo = PredMemo::new();
                let mut out = Vec::new();
                for group in groups_ref.iter().skip(offset).step_by(step) {
                    for &k in group {
                        let pos = &meta_ref[k];
                        let (result, counts) = checker.check_with_plan(
                            &plans_ref[pos.plan],
                            registry,
                            pool,
                            pos.now,
                            pos.id,
                            pos.id,
                            &mut scratch,
                            &mut memo,
                        );
                        let predicted_fresh = matches!(&result, Ok(ds) if !ds.is_empty());
                        out.push((k, Spec { result, counts }));
                        if predicted_fresh {
                            break;
                        }
                    }
                }
                let busy_ns = started.map_or(0, |t| {
                    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
                });
                (out, memo, busy_ns)
            };
            let workers = if relevant_total >= FUSED_PARALLEL_MIN {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .min(FUSED_MAX_WORKERS)
                    .min(groups.len())
            } else {
                1
            };
            let produced: Vec<FusedWorkerYield> = if workers <= 1 {
                vec![run_worker(0, 1)]
            } else {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|w| scope.spawn(move || run_worker(w, workers)))
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                })
            };
            if tail_on {
                spec_batch.workers_used = workers as u64;
            }
            for (partial, worker_memo, busy_ns) in produced {
                memo.absorb(worker_memo);
                if tail_on {
                    spec_batch.groups_speculated += partial.len() as u64;
                    spec_batch.worker_busy_ns.push(busy_ns);
                }
                for (k, spec) in partial {
                    specs[k] = Some(spec);
                }
            }
            check_phase.finish();
        }
        let spec_end_ns = if tail_on { self.obs.now_ns() } else { 0 };

        // Commit: replay every position in arrival order.
        self.fused_dirty_subjects = Some(HashSet::new());
        let mut commit_scratch = EvalScratch::new();
        let mut reports = Vec::with_capacity(meta.len());
        for k in 0..meta.len() {
            let Pos {
                id,
                now,
                plan,
                relevant,
                ref subject,
            } = meta[k];
            if now > self.clock {
                self.clock = now;
            }
            self.process_due_fused(now);

            let (stamp, kind, expires, gt_clone) = {
                let ctx = self
                    .pool
                    .get(id)
                    .expect("staged contexts stay pooled until their commit position");
                (
                    ctx.stamp(),
                    ctx.kind().clone(),
                    ctx.lifespan().expires_at(),
                    (self.config.track_ground_truth && ctx.truth() == TruthTag::Expected)
                        .then(|| ctx.clone()),
                )
            };
            self.schedule_expiry_doom(id, stamp, expires);
            self.mark_dirty_kind(&kind);
            if let Some(at) = expires {
                self.schedule_expiry(at, &kind);
            }
            self.stats.received += 1;
            self.obs.count(CounterKind::Ingested, 1);
            if self.obs.health_enabled() {
                self.kind_cell(&kind).ingested(1);
            }
            if self.obs.is_enabled() {
                self.obs.record(
                    now,
                    TraceEvent::Received {
                        ctx: id,
                        kind: Arc::clone(kind.name_arc()),
                        subject: Arc::clone(subject),
                    },
                );
            }
            if self.obs.provenance_enabled() {
                let obs = self.obs.clone();
                let _prov_phase = obs.phase(Phase::ProvenanceEmit);
                self.obs.record(
                    now,
                    TraceEvent::Caused {
                        ctx: id,
                        cause: CauseKind::SubmissionOf,
                        constraint: None,
                        partners: Vec::new(),
                        count: None,
                        verdict: None,
                    },
                );
                self.obs.count(CounterKind::ProvEdges, 1);
                self.obs.count(CounterKind::ProvNodes, 1);
            }
            if let Some(clone) = gt_clone {
                let gid = self.gt_pool.insert(clone);
                self.schedule_gt_expiry_doom(gid, stamp, expires);
                self.gt_buffer.push_back((now + self.config.window, gid));
                self.mark_gt_dirty_kind(&kind);
                if let Some(at) = expires {
                    self.schedule_gt_expiry(at, &kind);
                }
            }

            if !relevant {
                self.stats.irrelevant += 1;
                let _ = self.pool.set_state(id, ContextState::Consistent);
                self.obs.record(
                    now,
                    TraceEvent::StateChanged {
                        ctx: id,
                        from: ContextState::Undecided,
                        to: ContextState::Consistent,
                    },
                );
                if self.obs.provenance_enabled() {
                    self.obs.record(
                        now,
                        TraceEvent::Caused {
                            ctx: id,
                            cause: CauseKind::ResolvedBecause,
                            constraint: None,
                            partners: Vec::new(),
                            count: None,
                            verdict: Some(ContextState::Consistent),
                        },
                    );
                    self.obs.count(CounterKind::ProvEdges, 1);
                }
                if tail_on {
                    // Irrelevant contexts get no constraint verdict or
                    // resolution decision; both stamps collapse onto
                    // the moment the fast path classified them.
                    let classified_ns = self.obs.now_ns();
                    self.stamp_tail(
                        id,
                        batch_start_ns,
                        classified_ns,
                        classified_ns,
                        SpecOutcome::NotSpeculated,
                    );
                }
                self.buffer.push_back((now + self.config.window, id));
                self.obs
                    .observe(MetricKind::QueueDepth, self.buffer.len() as u64);
                self.dirty = true;
                self.process_due_fused(now);
                self.evaluate_situations_if_dirty(now);
                let report = SubmitReport {
                    id,
                    fresh: 0,
                    discarded: Vec::new(),
                    irrelevant: true,
                };
                self.notify(|obs, mw| {
                    if let Some(ctx) = mw.pool.get(id) {
                        obs.on_submitted(&report, ctx);
                    }
                });
                reports.push(report);
                continue;
            }

            let check_span = self.obs.span(MetricKind::CheckLatency);
            let check_obs = self.obs.clone();
            let check_phase = check_obs.phase(Phase::ConstraintCheck);
            let clean = self
                .fused_dirty_subjects
                .as_ref()
                .is_none_or(|d| !d.contains(subject));
            let spec_taken = specs[k].take();
            let had_spec = spec_taken.is_some();
            let (checked, counts) = match spec_taken.filter(|_| clean) {
                Some(spec) => (spec.result, spec.counts),
                // No (valid) speculative verdict — check inline at the
                // commit position, where the pool differs from the
                // sequential one only by contexts the live/state/id
                // filters exclude anyway.
                None => self.checker.check_with_plan(
                    &plans[plan],
                    &self.registry,
                    &self.pool,
                    now,
                    id,
                    id,
                    &mut commit_scratch,
                    &mut memo,
                ),
            };
            self.checker.absorb_batch_counts(counts);
            let fresh: Vec<Inconsistency> = match checked {
                Ok(ds) => ds
                    .into_iter()
                    .map(|d| Inconsistency::new(&d.constraint, d.link, now))
                    .collect(),
                Err(_) => {
                    self.stats.eval_errors += 1;
                    Vec::new()
                }
            };
            check_phase.finish();
            check_span.finish();
            let verdict_ns = if tail_on { self.obs.now_ns() } else { 0 };
            let compiled_delta = self.checker.stats().compiled_evals - self.reported_compiled_evals;
            if compiled_delta > 0 {
                self.obs.count(CounterKind::CompiledEvals, compiled_delta);
                self.reported_compiled_evals += compiled_delta;
            }
            self.stats.inconsistencies += fresh.len() as u64;
            if self.obs.is_enabled() {
                for inc in &fresh {
                    self.obs.record(
                        now,
                        TraceEvent::Detected {
                            constraint: inc.constraint().to_string(),
                            contexts: inc.contexts().iter().copied().collect(),
                        },
                    );
                }
                self.obs.count(CounterKind::Detections, fresh.len() as u64);
                if !fresh.is_empty() && self.obs.health_enabled() {
                    self.kind_cell(&kind).violations(fresh.len() as u64);
                }
                if self.obs.provenance_enabled() {
                    let obs = self.obs.clone();
                    let _prov_phase = obs.phase(Phase::ProvenanceEmit);
                    let mut edges = 0u64;
                    for inc in &fresh {
                        let members: Vec<ContextId> = inc.contexts().iter().copied().collect();
                        for &c in &members {
                            let partners: Vec<ContextId> =
                                members.iter().copied().filter(|p| *p != c).collect();
                            self.obs.record(
                                now,
                                TraceEvent::Caused {
                                    ctx: c,
                                    cause: CauseKind::ViolatedBy,
                                    constraint: Some(inc.constraint().to_string()),
                                    partners,
                                    count: None,
                                    verdict: None,
                                },
                            );
                            *self.prov_violations.entry(c).or_insert(0) += 1;
                            edges += 1;
                        }
                    }
                    self.obs.count(CounterKind::ProvEdges, edges);
                }
            }
            self.detections.extend(fresh.iter().cloned());

            let resolve_span = self.obs.span(MetricKind::ResolveLatency);
            let resolve_obs = self.obs.clone();
            let resolve_phase = resolve_obs.phase(Phase::Resolution);
            let outcome = self.strategy.on_addition(&mut self.pool, now, id, &fresh);
            resolve_phase.finish();
            resolve_span.finish();
            if tail_on {
                // Stamp before the discard loop: the strategy may have
                // discarded this very context, and `count_discard`
                // needs the pending span to fold it as `Discarded`.
                let decision_ns = self.obs.now_ns();
                let spec = if had_spec && clean {
                    spec_batch.consumed += 1;
                    SpecOutcome::Consumed
                } else if had_spec {
                    spec_batch.wasted_dirty += 1;
                    SpecOutcome::WastedDirty
                } else {
                    spec_batch.inline_checks += 1;
                    SpecOutcome::Inline
                };
                self.stamp_tail(id, batch_start_ns, verdict_ns, decision_ns, spec);
            }
            for did in &outcome.discarded {
                let cause = fresh
                    .iter()
                    .find(|inc| inc.contexts().iter().any(|c| c == did))
                    .cloned();
                self.count_discard(*did, now, ContextState::Undecided, cause.as_ref());
            }
            if outcome.accepted {
                self.buffer.push_back((now + self.config.window, id));
                self.obs
                    .observe(MetricKind::QueueDepth, self.buffer.len() as u64);
            }
            self.dirty = true;
            self.process_due_fused(now);
            self.evaluate_situations_if_dirty(now);
            let report = SubmitReport {
                id,
                fresh: fresh.len(),
                discarded: outcome.discarded,
                irrelevant: false,
            };
            self.notify(|obs, mw| {
                if !fresh.is_empty() {
                    obs.on_detections(&fresh);
                }
                if let Some(ctx) = mw.pool.get(id) {
                    obs.on_submitted(&report, ctx);
                }
            });
            reports.push(report);
        }
        self.fused_dirty_subjects = None;
        if memo.hits() > 0 {
            self.obs.count(CounterKind::PredMemoHits, memo.hits());
        }
        if memo.misses() > 0 {
            self.obs.count(CounterKind::PredMemoMisses, memo.misses());
        }
        self.obs.count(CounterKind::FusedBatchEvals, 1);
        self.next_batch = self.next_batch.wrapping_add(1);
        if tail_on {
            self.obs.record_spec_batch(&spec_batch);
            let end_ns = self.obs.now_ns();
            let elapsed_ns = end_ns.saturating_sub(batch_start_ns);
            let exemplars = self.tail_batch_exemplars.take().unwrap_or_default();
            let bound_ns = self.obs.slow_batch_bound_ns();
            if bound_ns > 0 && elapsed_ns > bound_ns {
                // Postmortem: bundle the batch's measured wall segments
                // (staging, speculation, commit) with the over-p99
                // exemplars it produced and its speculation accounting.
                self.obs.record(
                    self.clock,
                    TraceEvent::SlowBatch {
                        batch: batch_index,
                        contexts: meta.len() as u64,
                        elapsed_ns,
                        bound_ns,
                        phase_self_ns: vec![
                            (
                                "index_maint".to_string(),
                                stage_end_ns.saturating_sub(batch_start_ns),
                            ),
                            (
                                "constraint_check".to_string(),
                                spec_end_ns.saturating_sub(stage_end_ns),
                            ),
                            ("resolution".to_string(), end_ns.saturating_sub(spec_end_ns)),
                        ],
                        exemplars,
                        spec: spec_batch,
                    },
                );
            }
        }
        self.publish_health();
        reports
    }

    /// Notes when `id` first becomes eligible for retention compaction
    /// through its lifespan: the first instant whose horizon is past
    /// both the stamp and the expiry deadline. No-op without retention
    /// or for immortal contexts — those can only doom via a discard
    /// note from [`Middleware::count_discard`].
    fn schedule_expiry_doom(
        &mut self,
        id: ContextId,
        stamp: LogicalTime,
        expires: Option<LogicalTime>,
    ) {
        if !self.fused {
            return;
        }
        if let (Some(retention), Some(deadline)) = (self.config.retention, expires) {
            let due = LogicalTime::new((stamp.tick() + 1).max(deadline.tick()) + retention.count());
            self.doom_queue.entry(due).or_default().push(id);
        }
    }

    /// [`Middleware::schedule_expiry_doom`] for the ground-truth shadow
    /// pool (whose compaction is uncounted, as in the sequential path).
    fn schedule_gt_expiry_doom(
        &mut self,
        gid: ContextId,
        stamp: LogicalTime,
        expires: Option<LogicalTime>,
    ) {
        if !self.fused {
            return;
        }
        if let (Some(retention), Some(deadline)) = (self.config.retention, expires) {
            let due = LogicalTime::new((stamp.tick() + 1).max(deadline.tick()) + retention.count());
            self.gt_doom_queue.entry(due).or_default().push(gid);
        }
    }

    /// Notes when a just-discarded context becomes compactable: its
    /// stamp aged past the horizon (the `Inconsistent` arm of the
    /// compact predicate, which is absorbing).
    fn schedule_discard_doom(&mut self, id: ContextId, stamp: LogicalTime) {
        if !self.fused {
            return;
        }
        if let Some(retention) = self.config.retention {
            let due = LogicalTime::new(stamp.tick() + 1 + retention.count());
            self.doom_queue.entry(due).or_default().push(id);
        }
    }

    /// [`Middleware::process_due`] for the fused path: instead of an
    /// O(slots) [`ContextPool::compact`] scan per position, due doom
    /// notes are popped — each context leaves the arena at exactly the
    /// position a per-submit scan would have removed it, because a
    /// note's instant is the first time the (monotone) compact
    /// predicate can hold for its context.
    fn process_due_fused(&mut self, now: LogicalTime) {
        // Fast path: the commit loop calls this at every batch
        // position, and almost none of them have maintenance due.
        // When no doom note, buffered context, or ground-truth window
        // has come due, the body below is a pure no-op — skip it
        // before paying the registry clone and phase guard.
        let nothing_due = self
            .doom_queue
            .first_key_value()
            .is_none_or(|(due, _)| *due > now)
            && self
                .gt_doom_queue
                .first_key_value()
                .is_none_or(|(due, _)| *due > now)
            && self.buffer.front().is_none_or(|(due, _)| *due > now)
            && self.gt_buffer.front().is_none_or(|(due, _)| *due > now);
        if nothing_due {
            return;
        }
        let obs = self.obs.clone();
        let _maint_phase = obs.phase(Phase::IndexMaint);
        if let Some(retention) = self.config.retention {
            if now.tick() > retention.count() {
                let horizon = LogicalTime::new(now.tick() - retention.count());
                while let Some(entry) = self.doom_queue.first_entry() {
                    if *entry.key() > now {
                        break;
                    }
                    for id in entry.remove() {
                        let doomed = self.pool.get(id).is_some_and(|c| {
                            c.stamp() < horizon
                                && (c.state() == ContextState::Inconsistent || !c.is_live(horizon))
                        });
                        if doomed {
                            self.pool.remove(id);
                            self.stats.compacted += 1;
                        }
                    }
                }
                while let Some(entry) = self.gt_doom_queue.first_entry() {
                    if *entry.key() > now {
                        break;
                    }
                    for gid in entry.remove() {
                        let doomed = self.gt_pool.get(gid).is_some_and(|c| {
                            c.stamp() < horizon
                                && (c.state() == ContextState::Inconsistent || !c.is_live(horizon))
                        });
                        if doomed {
                            self.gt_pool.remove(gid);
                        }
                    }
                }
            }
        }
        self.drain_due_buffers(now);
    }

    fn submit_with_plan(&mut self, ctx: Context, plan: Option<&KindPlan>) -> SubmitReport {
        let stamp = ctx.stamp();
        if stamp > self.clock {
            self.clock = stamp;
        }
        let now = self.clock;
        let tail_on = self.obs.tail_enabled();
        let ingress_ns = if tail_on { self.obs.now_ns() } else { 0 };
        self.process_due(now);

        let truth = ctx.truth();
        let kind = ctx.kind().clone();
        let expires = ctx.lifespan().expires_at();
        let subject = self.obs.is_enabled().then(|| Arc::clone(ctx.subject_arc()));
        let gt_clone =
            (self.config.track_ground_truth && truth == TruthTag::Expected).then(|| ctx.clone());
        let id = self.pool.insert(ctx);
        self.schedule_expiry_doom(id, stamp, expires);
        self.mark_dirty_kind(&kind);
        if let Some(at) = expires {
            self.schedule_expiry(at, &kind);
        }
        self.stats.received += 1;
        self.obs.count(CounterKind::Ingested, 1);
        if self.obs.health_enabled() {
            self.kind_cell(&kind).ingested(1);
        }
        if let Some(subject) = subject {
            self.obs.record(
                now,
                TraceEvent::Received {
                    ctx: id,
                    kind: Arc::clone(kind.name_arc()),
                    subject,
                },
            );
        }
        if self.obs.provenance_enabled() {
            let obs = self.obs.clone();
            let _prov_phase = obs.phase(Phase::ProvenanceEmit);
            // The root of every causal chain: the submission itself.
            self.obs.record(
                now,
                TraceEvent::Caused {
                    ctx: id,
                    cause: CauseKind::SubmissionOf,
                    constraint: None,
                    partners: Vec::new(),
                    count: None,
                    verdict: None,
                },
            );
            self.obs.count(CounterKind::ProvEdges, 1);
            self.obs.count(CounterKind::ProvNodes, 1);
        }
        if let Some(clone) = gt_clone {
            // The ground-truth shadow view: an expected context joins it
            // when its use window elapses — the instant a *perfect*
            // strategy under the same middleware timing would make it
            // available — so epoch coverage compares discard decisions,
            // not buffering latency. The schedule is independent of what
            // the plugged-in strategy discards.
            let gid = self.gt_pool.insert(clone);
            self.schedule_gt_expiry_doom(gid, stamp, expires);
            self.gt_buffer.push_back((now + self.config.window, gid));
            self.mark_gt_dirty_kind(&kind);
            if let Some(at) = expires {
                self.schedule_gt_expiry(at, &kind);
            }
        }

        let relevant = match plan {
            Some(p) => p.is_relevant(),
            None => self.checker.is_relevant(&kind),
        };
        if !relevant {
            // Fig. 7 Part 1: irrelevant contexts become consistent and
            // available immediately; applications use them on their
            // normal cadence.
            self.stats.irrelevant += 1;
            let _ = self.pool.set_state(id, ContextState::Consistent);
            self.obs.record(
                now,
                TraceEvent::StateChanged {
                    ctx: id,
                    from: ContextState::Undecided,
                    to: ContextState::Consistent,
                },
            );
            if self.obs.provenance_enabled() {
                // The middleware itself decides the irrelevant fast
                // path, so it owns the verdict edge regardless of the
                // plugged-in strategy's own instrumentation.
                self.obs.record(
                    now,
                    TraceEvent::Caused {
                        ctx: id,
                        cause: CauseKind::ResolvedBecause,
                        constraint: None,
                        partners: Vec::new(),
                        count: None,
                        verdict: Some(ContextState::Consistent),
                    },
                );
                self.obs.count(CounterKind::ProvEdges, 1);
            }
            if tail_on {
                let classified_ns = self.obs.now_ns();
                self.stamp_tail(
                    id,
                    ingress_ns,
                    classified_ns,
                    classified_ns,
                    SpecOutcome::NotSpeculated,
                );
            }
            self.buffer.push_back((now + self.config.window, id));
            self.obs
                .observe(MetricKind::QueueDepth, self.buffer.len() as u64);
            self.dirty = true;
            self.process_due(now);
            self.evaluate_situations_if_dirty(now);
            let report = SubmitReport {
                id,
                fresh: 0,
                discarded: Vec::new(),
                irrelevant: true,
            };
            self.notify(|obs, mw| {
                if let Some(ctx) = mw.pool.get(id) {
                    obs.on_submitted(&report, ctx);
                }
            });
            return report;
        }

        let check_span = self.obs.span(MetricKind::CheckLatency);
        let check_obs = self.obs.clone();
        let check_phase = check_obs.phase(Phase::ConstraintCheck);
        let checked = match plan {
            Some(p) => self
                .checker
                .on_added_planned(p, &self.registry, &self.pool, now, id),
            None => self.checker.on_added(&self.registry, &self.pool, now, id),
        };
        let fresh: Vec<Inconsistency> = match checked {
            Ok(ds) => ds
                .into_iter()
                .map(|d| Inconsistency::new(&d.constraint, d.link, now))
                .collect(),
            Err(_) => {
                // A constraint referenced a predicate/attribute this
                // context lacks: detection is skipped for this addition
                // but the middleware keeps running (and counts it).
                self.stats.eval_errors += 1;
                Vec::new()
            }
        };
        check_phase.finish();
        check_span.finish();
        let verdict_ns = if tail_on { self.obs.now_ns() } else { 0 };
        let compiled_delta = self.checker.stats().compiled_evals - self.reported_compiled_evals;
        if compiled_delta > 0 {
            self.obs.count(CounterKind::CompiledEvals, compiled_delta);
            self.reported_compiled_evals += compiled_delta;
        }
        self.stats.inconsistencies += fresh.len() as u64;
        if self.obs.is_enabled() {
            for inc in &fresh {
                self.obs.record(
                    now,
                    TraceEvent::Detected {
                        constraint: inc.constraint().to_string(),
                        contexts: inc.contexts().iter().copied().collect(),
                    },
                );
            }
            self.obs.count(CounterKind::Detections, fresh.len() as u64);
            if !fresh.is_empty() && self.obs.health_enabled() {
                // Violations are attributed to the submitted kind: the
                // arriving context is the change that surfaced them.
                self.kind_cell(&kind).violations(fresh.len() as u64);
            }
            if self.obs.provenance_enabled() {
                let obs = self.obs.clone();
                let _prov_phase = obs.phase(Phase::ProvenanceEmit);
                // Every member of a fresh inconsistency gains a
                // violation edge citing the constraint and the bound
                // partners — the evidence later verdicts build on.
                let mut edges = 0u64;
                for inc in &fresh {
                    let members: Vec<ContextId> = inc.contexts().iter().copied().collect();
                    for &c in &members {
                        let partners: Vec<ContextId> =
                            members.iter().copied().filter(|p| *p != c).collect();
                        self.obs.record(
                            now,
                            TraceEvent::Caused {
                                ctx: c,
                                cause: CauseKind::ViolatedBy,
                                constraint: Some(inc.constraint().to_string()),
                                partners,
                                count: None,
                                verdict: None,
                            },
                        );
                        *self.prov_violations.entry(c).or_insert(0) += 1;
                        edges += 1;
                    }
                }
                self.obs.count(CounterKind::ProvEdges, edges);
            }
        }
        self.detections.extend(fresh.iter().cloned());

        let resolve_span = self.obs.span(MetricKind::ResolveLatency);
        let resolve_obs = self.obs.clone();
        let resolve_phase = resolve_obs.phase(Phase::Resolution);
        let outcome = self.strategy.on_addition(&mut self.pool, now, id, &fresh);
        resolve_phase.finish();
        resolve_span.finish();
        if tail_on {
            // Single submits never speculate; stamp before the discard
            // loop so an eager self-discard still folds as `Discarded`.
            let decision_ns = self.obs.now_ns();
            self.stamp_tail(
                id,
                ingress_ns,
                verdict_ns,
                decision_ns,
                SpecOutcome::NotSpeculated,
            );
        }
        for did in &outcome.discarded {
            // Addition-path discards (eager strategies) always take a
            // still-undecided context out; the verdict edge cites the
            // fresh inconsistency that implicated the casualty.
            let cause = fresh
                .iter()
                .find(|inc| inc.contexts().iter().any(|c| c == did))
                .cloned();
            self.count_discard(*did, now, ContextState::Undecided, cause.as_ref());
        }
        if outcome.accepted {
            self.buffer.push_back((now + self.config.window, id));
            self.obs
                .observe(MetricKind::QueueDepth, self.buffer.len() as u64);
        }
        self.dirty = true;
        self.process_due(now);
        self.evaluate_situations_if_dirty(now);
        let report = SubmitReport {
            id,
            fresh: fresh.len(),
            discarded: outcome.discarded,
            irrelevant: false,
        };
        self.notify(|obs, mw| {
            if !fresh.is_empty() {
                obs.on_detections(&fresh);
            }
            if let Some(ctx) = mw.pool.get(id) {
                obs.on_submitted(&report, ctx);
            }
        });
        report
    }

    /// Removes and returns every stored context `select` matches, in
    /// arrival order. Used by shard rebalancing to migrate subjects
    /// between shard engines; callers must ensure nothing in flight
    /// (buffered uses, strategy decisions) refers to the departing ids.
    pub(crate) fn extract_where(&mut self, select: impl Fn(&Context) -> bool) -> Vec<Context> {
        let ids: Vec<ContextId> = self
            .pool
            .iter()
            .filter(|(_, c)| select(c))
            .map(|(id, _)| id)
            .collect();
        ids.into_iter()
            .filter_map(|id| self.pool.remove(id))
            .collect()
    }

    /// Inserts contexts migrated from another shard, assigning fresh
    /// ids and rescheduling their expiries. States travel with the
    /// contexts; stats are untouched — the contexts were already
    /// counted where they were first received.
    pub(crate) fn adopt_contexts(&mut self, ctxs: Vec<Context>) {
        for ctx in ctxs {
            let kind = ctx.kind().clone();
            let expires = ctx.lifespan().expires_at();
            let stamp = ctx.stamp();
            let discarded = ctx.state() == ContextState::Inconsistent;
            let id = self.pool.insert(ctx);
            self.schedule_expiry_doom(id, stamp, expires);
            if discarded {
                self.schedule_discard_doom(id, stamp);
            }
            self.mark_dirty_kind(&kind);
            if let Some(at) = expires {
                self.schedule_expiry(at, &kind);
            }
        }
    }

    /// Advances the logical clock, using every buffered context whose
    /// window has elapsed.
    pub fn advance_to(&mut self, t: LogicalTime) {
        if t > self.clock {
            self.clock = t;
        }
        let now = self.clock;
        self.process_due(now);
        self.evaluate_situations_if_dirty(now);
        self.publish_health();
        self.notify(|obs, _| obs.on_advanced(now));
    }

    /// Uses every remaining buffered context, advancing the clock as far
    /// as needed (end of an experiment run).
    pub fn drain(&mut self) {
        let last_due = self
            .buffer
            .back()
            .map(|(due, _)| *due)
            .into_iter()
            .chain(self.gt_buffer.back().map(|(due, _)| *due))
            .max();
        if let Some(due) = last_due {
            let target = if due > self.clock { due } else { self.clock };
            self.advance_to(target);
        }
    }

    /// Explicitly uses a context now, ahead of its window (an
    /// application actively reading it). Returns the use record, or
    /// `None` if the context is unknown.
    pub fn use_now(&mut self, id: ContextId) -> Option<UseRecord> {
        if !self.pool.contains(id) {
            return None;
        }
        self.buffer.retain(|(_, bid)| *bid != id);
        let now = self.clock;
        let rec = self.use_one(id, now, None);
        self.evaluate_situations_if_dirty(now);
        Some(rec)
    }

    fn process_due(&mut self, now: LogicalTime) {
        // Index/arena maintenance: retention compaction and deadline
        // queues. The use loop's resolution work nests under it as
        // [`Phase::Resolution`], so this phase's self time is the
        // maintenance proper.
        let obs = self.obs.clone();
        let _maint_phase = obs.phase(Phase::IndexMaint);
        if let Some(retention) = self.config.retention {
            if now.tick() > retention.count() {
                let horizon = LogicalTime::new(now.tick() - retention.count());
                self.stats.compacted += self.pool.compact(horizon) as u64;
                self.gt_pool.compact(horizon);
                // The full scan removed everything a due doom note
                // could name; drop the stale notes so runs that mix
                // per-context submits with fused batches stay bounded.
                prune_doom_notes(&mut self.doom_queue, now);
                prune_doom_notes(&mut self.gt_doom_queue, now);
            }
        }
        self.drain_due_buffers(now);
    }

    /// The deadline-queue drains shared by [`Middleware::process_due`]
    /// and [`Middleware::process_due_fused`]: ground-truth contexts
    /// whose window elapsed join the shadow available view, and
    /// buffered contexts whose window elapsed are used.
    fn drain_due_buffers(&mut self, now: LogicalTime) {
        while let Some((due, gid)) = self.gt_buffer.front().copied() {
            if due > now {
                break;
            }
            self.gt_buffer.pop_front();
            if let Some(kind) = self.gt_pool.get(gid).map(|c| c.kind().clone()) {
                self.mark_gt_dirty_kind(&kind);
            }
            let _ = self.gt_pool.set_state(gid, ContextState::Consistent);
            self.dirty = true;
        }
        while let Some((due, id)) = self.buffer.front().copied() {
            if due > now {
                break;
            }
            self.buffer.pop_front();
            self.use_one(id, now, Some(due));
        }
    }

    /// Processes a context-deletion change. `due` is the buffer deadline
    /// that triggered this use (`None` for an explicit [`Middleware::use_now`]);
    /// the gap between it and `now` is the use-window residual delay —
    /// how long past its window a context lingered before a clock
    /// advance finally used it.
    fn use_one(&mut self, id: ContextId, now: LogicalTime, due: Option<LogicalTime>) -> UseRecord {
        // A use is a resolution decision end to end: the strategy's
        // `on_use` plus the delivery/discard bookkeeping it triggers.
        let obs = self.obs.clone();
        let _resolve_phase = obs.phase(Phase::Resolution);
        if let Some(due) = due {
            self.obs
                .observe(MetricKind::UseResidualDelay, (now - due).count());
        }
        let truth = self.pool.get(id).map(|c| c.truth()).unwrap_or_default();
        let kind = self.pool.get(id).map(|c| c.kind().clone());
        let was_live = self.pool.get(id).map(|c| c.is_live(now)).unwrap_or(false);
        let prev_state = self
            .pool
            .get(id)
            .map(|c| c.state())
            .unwrap_or(ContextState::Undecided);
        let resolve_span = self.obs.span(MetricKind::ResolveLatency);
        let outcome = self.strategy.on_use(&mut self.pool, now, id);
        resolve_span.finish();
        // A use decides the context's state either way — its kind's
        // available view may change (delivery makes it Consistent, a
        // discard takes a marked-bad one out).
        if let Some(kind) = &kind {
            self.mark_dirty_kind(kind);
        }
        for bid in &outcome.marked_bad {
            if let Some(k) = self.pool.get(*bid).map(|c| c.kind().clone()) {
                self.mark_dirty_kind(&k);
            }
        }
        if outcome.delivered {
            self.stats.delivered += 1;
            match truth {
                TruthTag::Expected => self.stats.delivered_expected += 1,
                TruthTag::Corrupted => self.stats.delivered_corrupted += 1,
            }
            if self.obs.is_enabled() {
                if prev_state == ContextState::Undecided {
                    self.obs.record(
                        now,
                        TraceEvent::StateChanged {
                            ctx: id,
                            from: prev_state,
                            to: ContextState::Consistent,
                        },
                    );
                }
                self.obs.record(now, TraceEvent::Delivered { ctx: id });
                self.obs.count(CounterKind::Deliveries, 1);
                if self.obs.health_enabled() {
                    if let Some(kind) = &kind {
                        self.kind_cell(kind).delivered(1);
                    }
                }
                if self.obs.provenance_enabled() && prev_state == ContextState::Undecided {
                    let obs = self.obs.clone();
                    let _prov_phase = obs.phase(Phase::ProvenanceEmit);
                    if !self.strategy.emits_provenance() {
                        self.obs.record(
                            now,
                            TraceEvent::Caused {
                                ctx: id,
                                cause: CauseKind::ResolvedBecause,
                                constraint: None,
                                partners: Vec::new(),
                                count: None,
                                verdict: Some(ContextState::Consistent),
                            },
                        );
                        self.obs.count(CounterKind::ProvEdges, 1);
                    }
                    self.observe_chain_depth(id);
                }
            }
            if !self.subscriptions.is_empty() {
                if let Some(ctx) = self.pool.get(id) {
                    self.subscriptions.offer(id, ctx);
                }
            }
        } else if !outcome.discarded.contains(&id) && !was_live {
            self.stats.expired_on_use += 1;
            self.obs.record(now, TraceEvent::Expired { ctx: id });
            if self.obs.health_enabled() {
                if let Some(kind) = &kind {
                    self.kind_cell(kind).expired(1);
                }
            }
            self.prov_violations.remove(&id);
        }
        for did in &outcome.discarded {
            // The used context may have been `Bad` before its discard;
            // any other casualty was still undecided.
            let from = if *did == id {
                prev_state
            } else {
                ContextState::Undecided
            };
            self.count_discard(*did, now, from, None);
        }
        self.stats.marked_bad += outcome.marked_bad.len() as u64;
        if self.obs.is_enabled() {
            for bid in &outcome.marked_bad {
                self.obs.record(
                    now,
                    TraceEvent::StateChanged {
                        ctx: *bid,
                        from: ContextState::Undecided,
                        to: ContextState::Bad,
                    },
                );
            }
            if self.obs.provenance_enabled()
                && !self.strategy.emits_provenance()
                && !outcome.marked_bad.is_empty()
            {
                for bid in &outcome.marked_bad {
                    self.obs.record(
                        now,
                        TraceEvent::Caused {
                            ctx: *bid,
                            cause: CauseKind::SupersededBy,
                            constraint: None,
                            partners: vec![id],
                            count: None,
                            verdict: Some(ContextState::Bad),
                        },
                    );
                }
                self.obs
                    .count(CounterKind::ProvEdges, outcome.marked_bad.len() as u64);
            }
        }
        if self.obs.tail_enabled() {
            if outcome.delivered {
                self.finish_tail(id, TailOutcome::Delivered, now);
            } else if !outcome.discarded.contains(&id) && !was_live {
                self.finish_tail(id, TailOutcome::Expired, now);
            }
        }
        let rec = UseRecord {
            id,
            delivered: outcome.delivered,
            truth,
            at: now,
        };
        self.use_log.push(rec);
        self.dirty = true;
        self.notify(|obs, _| obs.on_used(&rec));
        rec
    }

    fn notify(&mut self, mut f: impl FnMut(&mut dyn MiddlewareObserver, &Middleware)) {
        if self.observers.is_empty() {
            return;
        }
        let mut observers = std::mem::take(&mut self.observers);
        for obs in &mut observers {
            f(obs.as_mut(), self);
        }
        self.observers = observers;
    }

    fn count_discard(
        &mut self,
        id: ContextId,
        now: LogicalTime,
        from: ContextState,
        cause: Option<&Inconsistency>,
    ) {
        if let Some((kind, stamp, subject)) = self
            .pool
            .get(id)
            .map(|c| (c.kind().clone(), c.stamp(), Arc::clone(c.subject_arc())))
        {
            self.mark_dirty_kind(&kind);
            if self.obs.health_enabled() {
                self.kind_cell(&kind).discarded(1);
            }
            // Every Inconsistent transition funnels through here, so
            // this is both where a context's compaction instant becomes
            // known (fused doom note) and where a fused batch learns
            // its speculative verdicts for this subject are stale.
            self.schedule_discard_doom(id, stamp);
            if let Some(dirty) = self.fused_dirty_subjects.as_mut() {
                dirty.insert(subject);
            }
        }
        self.stats.discarded += 1;
        match self.pool.get(id).map(|c| c.truth()).unwrap_or_default() {
            TruthTag::Expected => self.stats.discarded_expected += 1,
            TruthTag::Corrupted => self.stats.discarded_corrupted += 1,
        }
        if self.obs.is_enabled() {
            self.obs.record(
                now,
                TraceEvent::StateChanged {
                    ctx: id,
                    from,
                    to: ContextState::Inconsistent,
                },
            );
            self.obs.record(now, TraceEvent::Discarded { ctx: id });
            self.obs.count(CounterKind::Discards, 1);
            if self.obs.provenance_enabled() {
                let obs = self.obs.clone();
                let _prov_phase = obs.phase(Phase::ProvenanceEmit);
                if !self.strategy.emits_provenance() {
                    // Generic verdict edge for strategies without their
                    // own provenance instrumentation.
                    self.obs.record(
                        now,
                        TraceEvent::Caused {
                            ctx: id,
                            cause: CauseKind::ResolvedBecause,
                            constraint: cause.map(|inc| inc.constraint().to_string()),
                            partners: cause
                                .map(|inc| {
                                    inc.contexts()
                                        .iter()
                                        .copied()
                                        .filter(|c| *c != id)
                                        .collect()
                                })
                                .unwrap_or_default(),
                            count: None,
                            verdict: Some(ContextState::Inconsistent),
                        },
                    );
                    self.obs.count(CounterKind::ProvEdges, 1);
                }
                self.observe_chain_depth(id);
            }
        }
        if self.obs.tail_enabled() {
            self.finish_tail(id, TailOutcome::Discarded, now);
        }
    }

    /// Stamps a context's in-flight end-to-end span (ingress → verdict
    /// → decision, nanoseconds on the obs epoch clock). Only called on
    /// tail-enabled paths; the pending map is bounded by
    /// [`TAIL_PENDING_MAX`].
    fn stamp_tail(
        &mut self,
        id: ContextId,
        ingress_ns: u64,
        verdict_ns: u64,
        decision_ns: u64,
        spec: SpecOutcome,
    ) {
        if self.tail_pending.len() >= TAIL_PENDING_MAX {
            self.tail_pending.clear();
        }
        self.tail_pending.insert(
            id,
            PendingTail {
                ingress_ns,
                verdict_ns,
                decision_ns,
                batch_index: self.next_batch,
                spec,
            },
        );
    }

    /// Folds a context's terminal outcome into the tail histograms,
    /// capturing it as an exemplar (and noting it for a running batch's
    /// postmortem) when it lands past the shard's rolling p99
    /// threshold. No-op for contexts without pending stamps.
    fn finish_tail(&mut self, id: ContextId, outcome: TailOutcome, at: LogicalTime) {
        let Some(p) = self.tail_pending.remove(&id) else {
            return;
        };
        let span = ContextSpan {
            ingress_ns: p.ingress_ns,
            verdict_ns: p.verdict_ns,
            decision_ns: p.decision_ns,
            end_ns: self.obs.now_ns(),
        };
        if self
            .obs
            .record_e2e(id, outcome, span, p.batch_index, p.spec, at)
        {
            if let Some(captured) = self.tail_batch_exemplars.as_mut() {
                captured.push(id);
            }
        }
    }

    /// The cached health handle for `kind`. Only called on
    /// health-enabled paths; after the first lookup per kind this is a
    /// `HashMap` hit plus an `Arc` clone.
    fn kind_cell(&mut self, kind: &ContextKind) -> KindHandle {
        if let Some(h) = self.kind_cells.get(kind) {
            return h.clone();
        }
        let h = self.obs.kind_handle(kind.name());
        self.kind_cells.insert(kind.clone(), h.clone());
        h
    }

    /// Publishes arena-occupancy gauges and per-kind staleness
    /// watermarks to the attached observability handle. A single branch
    /// when obs is disabled. Runs at batch boundaries ([`Middleware::batch_add`],
    /// [`Middleware::advance_to`], and therefore [`Middleware::drain`]) rather
    /// than per submission, so the hot path stays counter bumps only;
    /// call it directly to refresh gauges on a custom cadence.
    pub fn publish_health(&mut self) {
        if !self.obs.health_enabled() {
            return;
        }
        let obs = self.obs.clone();
        let _health_phase = obs.phase(Phase::HealthPublish);
        let now = self.clock;
        self.obs.publish_pool(
            self.pool.live_slots() as u64,
            self.pool.free_slots() as u64,
            self.pool.slot_recycles(),
            now.tick(),
        );
        for wm in self.pool.kind_watermarks() {
            let oldest_age = wm.oldest_stamp.map(|s| (now - s).count());
            self.kind_cell(&wm.kind)
                .set_watermark(wm.live as u64, oldest_age, wm.oldest_ttl);
        }
    }

    /// Emits the decided context's causal-chain depth — its submission
    /// root, every violation it participated in, and the verdict — then
    /// drops the per-context violation tally.
    fn observe_chain_depth(&mut self, id: ContextId) {
        let violations = self.prov_violations.remove(&id).unwrap_or(0);
        self.obs.observe(MetricKind::ChainDepth, 2 + violations);
    }

    /// Whether dirty-kind bookkeeping is worth recording: situations are
    /// deployed and the cache will consult the sets.
    fn cache_live(&self) -> bool {
        self.situation_cache && !self.situations.is_empty()
    }

    fn mark_dirty_kind(&mut self, kind: &ContextKind) {
        if self.cache_live() && !self.dirty_kinds.contains(kind) {
            self.dirty_kinds.insert(kind.clone());
        }
    }

    fn mark_gt_dirty_kind(&mut self, kind: &ContextKind) {
        if self.cache_live() && !self.gt_dirty_kinds.contains(kind) {
            self.gt_dirty_kinds.insert(kind.clone());
        }
    }

    fn schedule_expiry(&mut self, at: LogicalTime, kind: &ContextKind) {
        if self.cache_live() {
            self.expiry_queue.entry(at).or_default().push(kind.clone());
        }
    }

    fn schedule_gt_expiry(&mut self, at: LogicalTime, kind: &ContextKind) {
        if self.cache_live() {
            self.gt_expiry_queue
                .entry(at)
                .or_default()
                .push(kind.clone());
        }
    }

    fn evaluate_situations_if_dirty(&mut self, now: LogicalTime) {
        if !self.dirty || self.situations.is_empty() {
            return;
        }
        let obs = self.obs.clone();
        let _sit_phase = obs.phase(Phase::SituationEval);
        self.dirty = false;
        // Expired contexts leave every live domain without a state
        // transition; fold the queued expiries into the dirty sets
        // before deciding which situations to skip.
        drain_expiries(&mut self.expiry_queue, now, &mut self.dirty_kinds);
        drain_expiries(&mut self.gt_expiry_queue, now, &mut self.gt_dirty_kinds);
        let (gt_statuses, gt_counters) = if self.config.track_ground_truth {
            if self.situation_cache {
                self.gt_situations.evaluate_dirty(
                    &self.registry,
                    &self.gt_pool,
                    now,
                    &self.gt_dirty_kinds,
                )
            } else {
                self.gt_situations
                    .evaluate_counted(&self.registry, &self.gt_pool, now)
            }
        } else {
            (Vec::new(), RoundCounters::default())
        };
        self.gt_dirty_kinds.clear();
        let (statuses, counters) = if self.situation_cache {
            self.situations
                .evaluate_dirty(&self.registry, &self.pool, now, &self.dirty_kinds)
        } else {
            self.situations
                .evaluate_counted(&self.registry, &self.pool, now)
        };
        self.dirty_kinds.clear();
        let evals = counters.evals + gt_counters.evals;
        let skips = counters.skips + gt_counters.skips;
        let compiled = counters.compiled_evals + gt_counters.compiled_evals;
        if evals > 0 {
            self.obs.count(CounterKind::SituationEvals, evals);
        }
        if skips > 0 {
            self.obs.count(CounterKind::SituationCacheSkips, skips);
        }
        if compiled > 0 {
            self.obs.count(CounterKind::CompiledEvals, compiled);
        }
        for (i, s) in statuses.iter().enumerate() {
            if s.activated {
                self.stats.situation_activations += 1;
            }
            // Matched-activation accounting by ground-truth *epochs*: a
            // maximal interval where the situation truly holds counts as
            // covered (once) if the strategy view also activates it at
            // some round within the interval. Counting per-epoch instead
            // of per-edge keeps a flickering strategy view from scoring
            // the same true episode repeatedly.
            if let Some(g) = gt_statuses.get(i) {
                if g.activated {
                    self.covered[i] = false; // a new ground-truth epoch
                    self.epoch_started[i] = Some(now);
                }
                if g.active && s.active && !self.covered[i] {
                    self.covered[i] = true;
                    self.matched += 1;
                    if let Some(start) = self.epoch_started[i] {
                        self.latency_sum += (now - start).count();
                    }
                }
            }
        }
    }
}

/// Drops every doom note due at or before `now` — a full compaction
/// scan already removed (or rejected) everything those notes name.
fn prune_doom_notes(queue: &mut BTreeMap<LogicalTime, Vec<ContextId>>, now: LogicalTime) {
    while let Some(entry) = queue.first_entry() {
        if *entry.key() > now {
            break;
        }
        entry.remove();
    }
}

/// Moves every expiry entry due at or before `now` into the dirty set.
fn drain_expiries(
    queue: &mut BTreeMap<LogicalTime, Vec<ContextKind>>,
    now: LogicalTime,
    dirty: &mut HashSet<ContextKind>,
) {
    while let Some(entry) = queue.first_entry() {
        if *entry.key() > now {
            break;
        }
        for kind in entry.remove() {
            dirty.insert(kind);
        }
    }
}

/// Builder for [`Middleware`] (C-BUILDER).
#[derive(Default)]
pub struct MiddlewareBuilder {
    constraints: Vec<Constraint>,
    situations: Vec<Constraint>,
    strategy: Option<Box<dyn ResolutionStrategy + Send>>,
    registry: Option<PredicateRegistry>,
    config: MiddlewareConfig,
    observers: Vec<Box<dyn MiddlewareObserver>>,
    obs: ShardObs,
    /// `None` until [`MiddlewareBuilder::situation_cache`] is called; the
    /// unset default then falls back to the `CTXRES_SITUATION_CACHE`
    /// environment variable (see [`MiddlewareBuilder::build`]).
    situation_cache: Option<bool>,
    /// `None` until [`MiddlewareBuilder::fused`] is called; the unset
    /// default then falls back to the `CTXRES_FUSED` environment
    /// variable (see [`MiddlewareBuilder::build`]).
    fused: Option<bool>,
}

impl fmt::Debug for MiddlewareBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MiddlewareBuilder")
            .field("constraints", &self.constraints.len())
            .field("situations", &self.situations.len())
            .field("config", &self.config)
            .finish()
    }
}

impl MiddlewareBuilder {
    /// Sets the consistency constraints to deploy.
    pub fn constraints(mut self, constraints: Vec<Constraint>) -> Self {
        self.constraints = constraints;
        self
    }

    /// Sets the application situations to evaluate.
    pub fn situations(mut self, situations: Vec<Constraint>) -> Self {
        self.situations = situations;
        self
    }

    /// Plugs in the resolution strategy (required).
    pub fn strategy(mut self, strategy: Box<dyn ResolutionStrategy + Send>) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Overrides the predicate registry (default: builtins).
    pub fn registry(mut self, registry: PredicateRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Sets the configuration.
    pub fn config(mut self, config: MiddlewareConfig) -> Self {
        self.config = config;
        self
    }

    /// Registers a plug-in observer (Cabot-style passive service); may
    /// be called repeatedly. Register an `Arc<Mutex<...>>` to keep a
    /// reading handle.
    pub fn observer(mut self, observer: Box<dyn MiddlewareObserver>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Attaches an observability handle (from
    /// [`ctxres_obs::ObsRegistry::handle`]); the built middleware *and*
    /// its strategy record life-cycle events and latency metrics through
    /// it. Default: a disabled no-op handle.
    pub fn obs(mut self, obs: ShardObs) -> Self {
        self.obs = obs;
        self
    }

    /// Enables or disables the dirty-kind situation cache (default
    /// **on**). Disabling makes every dirty round re-evaluate every
    /// situation — the reference behaviour the cache must match
    /// bit-for-bit, kept switchable for A/B verification and benchmarks.
    ///
    /// When this method is never called, the `CTXRES_SITUATION_CACHE`
    /// environment variable decides (`0`/`false`/`off` disable; anything
    /// else, or unset, enables) — this is how CI runs the whole tier-1
    /// suite with the cache escape hatch engaged without touching code.
    pub fn situation_cache(mut self, enabled: bool) -> Self {
        self.situation_cache = Some(enabled);
        self
    }

    /// Enables or disables batch-fused checking (default **on**). When
    /// every deployed constraint compiles into the per-subject
    /// universal-positive fragment, [`Middleware::batch_add`] then
    /// stages the whole batch, repairs each index bucket once, drives
    /// retention compaction from doom notes, and speculatively checks
    /// disjoint subject groups (in parallel for large batches) — with a
    /// verdict stream identical to per-context submission. Ineligible
    /// constraint sets fall back to the sequential path regardless of
    /// this switch.
    ///
    /// When this method is never called, the `CTXRES_FUSED` environment
    /// variable decides (`0`/`false`/`off` disable; anything else, or
    /// unset, enables) — the escape hatch CI uses for whole-suite A/B
    /// equivalence legs.
    pub fn fused(mut self, enabled: bool) -> Self {
        self.fused = Some(enabled);
        self
    }

    /// Builds the middleware.
    ///
    /// # Panics
    ///
    /// Panics if no strategy was supplied (C-VALIDATE: there is no
    /// sensible default resolution behaviour), or if two constraints
    /// share a name — inconsistency identity is `(constraint name,
    /// context set)`, so duplicate names would silently merge distinct
    /// inconsistencies in the tracked set.
    pub fn build(self) -> Middleware {
        let mut strategy = self.strategy.expect("a resolution strategy is required");
        // The strategy records into the same per-shard ring as the
        // engine, so Δ-set events interleave with life-cycle events.
        strategy.attach_obs(self.obs.clone());
        {
            let mut seen = std::collections::BTreeSet::new();
            for c in &self.constraints {
                assert!(
                    seen.insert(c.name()),
                    "duplicate constraint name {:?}",
                    c.name()
                );
            }
        }
        let constraint_set: ConstraintSet = self.constraints.into_iter().collect();
        let covered = vec![false; self.situations.len()];
        let epoch_started_init = vec![None; self.situations.len()];
        let situations = SituationEngine::new(self.situations.clone());
        let gt_situations = SituationEngine::new(self.situations);
        Middleware {
            pool: ContextPool::new(),
            registry: self
                .registry
                .unwrap_or_else(PredicateRegistry::with_builtins),
            checker: IncrementalChecker::new(constraint_set),
            strategy,
            situations,
            gt_situations,
            gt_pool: ContextPool::new(),
            gt_buffer: VecDeque::new(),
            config: self.config,
            clock: LogicalTime::ZERO,
            buffer: VecDeque::new(),
            stats: MiddlewareStats::default(),
            detections: Vec::new(),
            use_log: Vec::new(),
            dirty: false,
            situation_cache: self.situation_cache.unwrap_or_else(|| {
                !matches!(
                    std::env::var("CTXRES_SITUATION_CACHE").as_deref(),
                    Ok("0") | Ok("false") | Ok("off")
                )
            }),
            dirty_kinds: HashSet::new(),
            gt_dirty_kinds: HashSet::new(),
            expiry_queue: BTreeMap::new(),
            gt_expiry_queue: BTreeMap::new(),
            fused: self.fused.unwrap_or_else(|| {
                !matches!(
                    std::env::var("CTXRES_FUSED").as_deref(),
                    Ok("0") | Ok("false") | Ok("off")
                )
            }),
            doom_queue: BTreeMap::new(),
            gt_doom_queue: BTreeMap::new(),
            fused_dirty_subjects: None,
            reported_compiled_evals: 0,
            prov_violations: HashMap::new(),
            matched: 0,
            covered,
            epoch_started: epoch_started_init,
            latency_sum: 0,
            observers: self.observers,
            subscriptions: SubscriptionTable::new(),
            obs: self.obs,
            kind_cells: HashMap::new(),
            tail_pending: HashMap::new(),
            next_batch: 0,
            tail_batch_exemplars: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_constraint::parse_constraints;
    use ctxres_context::{ContextKind, Point};
    use ctxres_core::strategies::{DropBad, DropLatest, Oracle};

    const SPEED: &str = "constraint speed:
        forall a: location, b: location .
          (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)";

    fn loc(subject: &str, seq: i64, x: f64, y: f64) -> Context {
        Context::builder(ContextKind::new("location"), subject)
            .attr("pos", Point::new(x, y))
            .attr("seq", seq)
            .stamp(LogicalTime::new(seq as u64))
            .build()
    }

    fn corrupted(subject: &str, seq: i64, x: f64, y: f64) -> Context {
        Context::builder(ContextKind::new("location"), subject)
            .attr("pos", Point::new(x, y))
            .attr("seq", seq)
            .stamp(LogicalTime::new(seq as u64))
            .truth(TruthTag::Corrupted)
            .build()
    }

    fn mw(strategy: Box<dyn ResolutionStrategy + Send>, window: u64) -> Middleware {
        Middleware::builder()
            .constraints(parse_constraints(SPEED).unwrap())
            .strategy(strategy)
            .config(MiddlewareConfig {
                window: Ticks::new(window),
                track_ground_truth: true,
                retention: None,
            })
            .build()
    }

    #[test]
    fn irrelevant_kind_takes_the_fast_path() {
        let mut m = mw(Box::new(DropBad::new()), 3);
        let report = m.submit(Context::builder(ContextKind::new("temperature"), "room").build());
        assert!(report.irrelevant);
        assert_eq!(
            m.pool().get(report.id).unwrap().state(),
            ContextState::Consistent
        );
        assert_eq!(m.stats().irrelevant, 1);
    }

    #[test]
    fn window_defers_use_and_drain_flushes() {
        let mut m = mw(Box::new(DropBad::new()), 5);
        m.submit(loc("p", 0, 0.0, 0.0));
        assert_eq!(m.stats().delivered, 0);
        assert_eq!(m.buffered(), 1);
        m.advance_to(LogicalTime::new(5));
        assert_eq!(m.stats().delivered, 1, "window elapsed");
        m.submit(loc("p", 6, 0.5, 0.0));
        m.drain();
        assert_eq!(m.stats().delivered, 2);
        assert_eq!(m.buffered(), 0);
    }

    #[test]
    fn drop_bad_catches_the_deviating_context() {
        // Paper Fig. 5 Scenario A shape with gap-1 + gap-2 constraints.
        let constraints = parse_constraints(
            "constraint gap1:
               forall a: location, b: location .
                 (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)
             constraint gap2:
               forall a: location, b: location .
                 (same_subject(a, b) and seq_gap(a, b, 2)) implies velocity_le(a, b, 3.0)",
        )
        .unwrap();
        let mut m = Middleware::builder()
            .constraints(constraints)
            .strategy(Box::new(DropBad::new()))
            .config(MiddlewareConfig {
                window: Ticks::new(10),
                track_ground_truth: true,
                retention: None,
            })
            .build();
        // Steady walk with a wild outlier at seq 2.
        m.submit(loc("p", 0, 0.0, 0.0));
        m.submit(loc("p", 1, 1.0, 0.0));
        m.submit(corrupted("p", 2, 30.0, 30.0));
        m.submit(loc("p", 3, 3.0, 0.0));
        m.submit(loc("p", 4, 4.0, 0.0));
        m.drain();
        assert_eq!(m.stats().discarded, 1);
        assert_eq!(m.stats().discarded_corrupted, 1);
        assert_eq!(m.stats().delivered, 4);
        assert_eq!(m.stats().delivered_expected, 4);
    }

    #[test]
    fn health_counters_and_pool_gauges_ride_the_obs_handle() {
        let registry = ctxres_obs::ObsRegistry::shared(ctxres_obs::ObsConfig::metrics_only(), 1);
        let mut m = Middleware::builder()
            .constraints(parse_constraints(SPEED).unwrap())
            .strategy(Box::new(DropBad::new()))
            .config(MiddlewareConfig {
                window: Ticks::new(10),
                track_ground_truth: false,
                retention: None,
            })
            .obs(registry.handle(0))
            .build();
        m.batch_add(vec![
            loc("p", 0, 0.0, 0.0),
            loc("p", 1, 1.0, 0.0),
            corrupted("p", 2, 30.0, 30.0),
            loc("p", 3, 3.0, 0.0),
        ]);
        m.drain();

        let health = registry.health_snapshot();
        assert_eq!(health.shards.len(), 1);
        let shard = &health.shards[0];
        let kind = shard
            .kinds
            .iter()
            .find(|k| k.kind == "location")
            .expect("location kind cell");
        assert_eq!(kind.ingested, 4);
        assert_eq!(kind.discarded, 1, "outlier discarded");
        assert_eq!(kind.delivered, 3);
        assert!(kind.violations >= 1, "speed violations attributed");
        let pool = shard.pool.expect("pool gauges published at drain");
        assert_eq!(pool.live_slots, m.pool().live_slots() as u64);
        assert_eq!(pool.recycles, m.pool().slot_recycles());
        assert_eq!(kind.live, 3, "watermark live count tracks the pool");

        // A swap keeps the handle attached: post-swap traffic still
        // lands in the same kind cell.
        let before = m.strategy_name();
        let old = m.swap_strategy(Box::new(DropLatest::new()));
        assert_eq!(old.name(), before);
        assert_ne!(m.strategy_name(), before);
        m.submit(loc("p", 20, 4.0, 0.0));
        m.drain();
        let health = registry.health_snapshot();
        assert_eq!(health.shards[0].kinds[0].ingested, 5);
        assert_eq!(health.shards[0].kinds[0].delivered, 4);
    }

    #[test]
    fn disabled_obs_keeps_the_health_path_inert() {
        let mut m = mw(Box::new(DropBad::new()), 3);
        m.submit(loc("p", 0, 0.0, 0.0));
        m.publish_health();
        m.drain();
        assert!(m.kind_cells.is_empty(), "no cells cached when disabled");
    }

    #[test]
    fn metrics_without_health_skips_the_quality_layer() {
        // `with_health(false)` is the lever city_bench uses to isolate
        // the health layer's marginal cost: counters and trace metrics
        // still record, but no kind cells are interned and no gauges
        // are published.
        let registry = ctxres_obs::ObsRegistry::shared(
            ctxres_obs::ObsConfig::metrics_only().with_health(false),
            1,
        );
        let mut m = Middleware::builder()
            .constraints(parse_constraints(SPEED).unwrap())
            .strategy(Box::new(DropBad::new()))
            .config(MiddlewareConfig {
                window: Ticks::new(10),
                track_ground_truth: false,
                retention: None,
            })
            .obs(registry.handle(0))
            .build();
        m.batch_add(vec![
            loc("p", 0, 0.0, 0.0),
            corrupted("p", 1, 30.0, 30.0),
            loc("p", 2, 2.0, 0.0),
        ]);
        m.drain();
        assert!(m.kind_cells.is_empty(), "no cells cached when health off");
        let health = registry.health_snapshot();
        assert!(health.shards[0].kinds.is_empty(), "no kind rows published");
        assert!(health.shards[0].pool.is_none(), "no pool gauges published");
        // The ordinary metrics layer is unaffected.
        let snap = registry.snapshot();
        assert!(snap.shards[0].counter(CounterKind::Ingested) >= 3);
    }

    #[test]
    fn window_zero_degenerates_drop_bad_to_drop_latest() {
        // §5.3: with an empty window the drop-bad strategy behaves like
        // drop-latest. Scenario B shape: the corrupted context slips in
        // cleanly, its correct successor gets blamed.
        let run = |strategy: Box<dyn ResolutionStrategy + Send>| {
            let mut m = mw(strategy, 0);
            m.submit(loc("p", 0, 0.0, 0.0));
            m.submit(corrupted("p", 1, 10.0, 10.0)); // violates vs seq 0? dist ~14 > 1.5 => caught
            m.submit(loc("p", 2, 2.0, 0.0));
            m.drain();
            (m.stats().delivered, m.stats().discarded)
        };
        let bad = run(Box::new(DropBad::new()));
        let lat = run(Box::new(DropLatest::new()));
        assert_eq!(bad, lat);
    }

    #[test]
    fn oracle_stats_are_perfect() {
        let mut m = mw(Box::new(Oracle::new()), 2);
        m.submit(loc("p", 0, 0.0, 0.0));
        m.submit(corrupted("p", 1, 10.0, 10.0));
        m.submit(loc("p", 2, 2.0, 0.0));
        m.drain();
        assert_eq!(m.stats().delivered_expected, 2);
        assert_eq!(m.stats().delivered_corrupted, 0);
        assert_eq!(m.stats().discarded_corrupted, 1);
        assert_eq!(m.stats().discarded_expected, 0);
        assert_eq!(m.stats().survival_rate(), 1.0);
        assert_eq!(m.stats().removal_precision(), 1.0);
    }

    #[test]
    fn use_now_bypasses_the_window() {
        let mut m = mw(Box::new(DropBad::new()), 100);
        let report = m.submit(loc("p", 0, 0.0, 0.0));
        let rec = m.use_now(report.id).unwrap();
        assert!(rec.delivered);
        assert_eq!(m.buffered(), 0, "buffer entry consumed");
        assert_eq!(m.stats().delivered, 1);
        // Draining afterwards must not double-use it.
        m.drain();
        assert_eq!(m.stats().delivered, 1);
    }

    #[test]
    fn use_now_unknown_context_is_none() {
        let mut m = mw(Box::new(DropBad::new()), 1);
        assert!(m.use_now(ContextId::from_raw(99)).is_none());
    }

    #[test]
    fn situations_activate_on_delivery_not_buffering() {
        let situations = parse_constraints(
            "constraint near_door: exists a: location . within(a, -1.0, -1.0, 1.0, 1.0)",
        )
        .unwrap();
        let mut m = Middleware::builder()
            .constraints(parse_constraints(SPEED).unwrap())
            .situations(situations)
            .strategy(Box::new(DropBad::new()))
            .config(MiddlewareConfig {
                window: Ticks::new(4),
                track_ground_truth: true,
                retention: None,
            })
            .build();
        m.submit(loc("p", 0, 0.0, 0.0));
        assert_eq!(m.stats().situation_activations, 0, "still buffered");
        m.drain();
        assert_eq!(m.stats().situation_activations, 1);
        assert_eq!(
            m.matched_activations(),
            1,
            "activation agrees with ground truth"
        );
    }

    #[test]
    fn corrupted_only_activation_is_not_matched() {
        let situations = parse_constraints(
            "constraint near_door: exists a: location . within(a, 9.0, 9.0, 11.0, 11.0)",
        )
        .unwrap();
        let mut m = Middleware::builder()
            .situations(situations)
            .strategy(Box::new(DropLatest::new()))
            .config(MiddlewareConfig {
                window: Ticks::new(0),
                track_ground_truth: true,
                retention: None,
            })
            .build();
        // No constraints deployed: the corrupted context sails through
        // (irrelevant fast path) and falsely activates the situation.
        m.submit(corrupted("p", 0, 10.0, 10.0));
        m.drain();
        assert_eq!(m.stats().situation_activations, 1);
        assert_eq!(m.matched_activations(), 0, "ground truth never had it");
    }

    #[test]
    fn detections_log_accumulates() {
        let mut m = mw(Box::new(DropBad::new()), 10);
        m.submit(loc("p", 0, 0.0, 0.0));
        m.submit(corrupted("p", 1, 10.0, 10.0));
        assert_eq!(m.detections().len(), 1);
        assert_eq!(m.stats().inconsistencies, 1);
    }

    #[test]
    fn use_log_records_every_use() {
        let mut m = mw(Box::new(DropBad::new()), 1);
        m.submit(loc("p", 0, 0.0, 0.0));
        m.submit(loc("p", 5, 0.5, 0.0));
        m.drain();
        assert_eq!(m.use_log().len(), 2);
        assert!(m.use_log().iter().all(|r| r.delivered));
    }

    #[test]
    fn clock_is_monotonic_even_with_stale_stamps() {
        let mut m = mw(Box::new(DropBad::new()), 1);
        m.submit(loc("p", 5, 0.0, 0.0));
        m.submit(loc("p", 3, 0.5, 0.0)); // stale stamp must not rewind
        assert_eq!(m.now(), LogicalTime::new(5));
        m.advance_to(LogicalTime::new(2));
        assert_eq!(m.now(), LogicalTime::new(5));
    }

    #[test]
    #[should_panic(expected = "resolution strategy is required")]
    fn builder_requires_strategy() {
        let _ = Middleware::builder().build();
    }

    #[test]
    fn use_triggered_discard_dirties_its_kind() {
        // Scenario A shape: the outlier gets marked Bad on detection and
        // is discarded at *use* time — a round later than any addition.
        // The discard must re-dirty its kind or the cache would replay a
        // stale verdict for situations over `location`.
        let constraints = parse_constraints(
            "constraint gap1:
               forall a: location, b: location .
                 (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)
             constraint gap2:
               forall a: location, b: location .
                 (same_subject(a, b) and seq_gap(a, b, 2)) implies velocity_le(a, b, 3.0)",
        )
        .unwrap();
        let situations = parse_constraints(
            "constraint near_door: exists a: location . within(a, -1.0, -1.0, 1.0, 1.0)",
        )
        .unwrap();
        let mut m = Middleware::builder()
            .constraints(constraints)
            .situations(situations)
            .strategy(Box::new(DropBad::new()))
            .config(MiddlewareConfig {
                window: Ticks::new(10),
                track_ground_truth: false,
                retention: None,
            })
            .build();
        m.submit(loc("p", 0, 0.0, 0.0));
        m.submit(loc("p", 1, 1.0, 0.0));
        let outlier = m.submit(corrupted("p", 2, 30.0, 30.0)).id;
        m.submit(loc("p", 3, 3.0, 0.0));
        m.submit(loc("p", 4, 4.0, 0.0));
        // Each submit round consumed its dirty set; clear any residue so
        // the assertion isolates the use-triggered discard.
        m.dirty_kinds.clear();
        m.buffer.retain(|(_, id)| *id != outlier);
        let now = m.clock;
        let rec = m.use_one(outlier, now, None);
        assert!(!rec.delivered, "drop-bad discards the marked context");
        assert!(m.dirty_kinds.contains(&ContextKind::new("location")));
    }

    #[test]
    fn situation_cache_off_and_on_agree_end_to_end() {
        use ctxres_context::Lifespan;
        let run = |cache: bool| {
            let situations = parse_constraints(
                "constraint near_door: exists a: location . within(a, -1.0, -1.0, 1.0, 1.0)
                 constraint away: exists a: location . within(a, 2.0, -1.0, 5.0, 1.0)",
            )
            .unwrap();
            let mut m = Middleware::builder()
                .constraints(parse_constraints(SPEED).unwrap())
                .situations(situations)
                .strategy(Box::new(DropBad::new()))
                .situation_cache(cache)
                .config(MiddlewareConfig {
                    window: Ticks::new(3),
                    track_ground_truth: true,
                    retention: None,
                })
                .build();
            m.submit(loc("p", 0, 0.0, 0.0));
            m.submit(corrupted("p", 1, 10.0, 10.0));
            m.submit(loc("p", 2, 0.5, 0.0));
            // A short-lived fix: its expiry must deactivate situations
            // identically with and without the cache.
            m.submit(
                Context::builder(ContextKind::new("location"), "p")
                    .attr("pos", Point::new(3.0, 0.0))
                    .attr("seq", 3i64)
                    .stamp(LogicalTime::new(3))
                    .lifespan(Lifespan::with_ttl(LogicalTime::new(3), Ticks::new(6)))
                    .build(),
            );
            m.advance_to(LogicalTime::new(8));
            m.advance_to(LogicalTime::new(20));
            m.drain();
            (
                *m.stats(),
                m.matched_activations(),
                m.mean_activation_latency(),
                m.use_log().to_vec(),
            )
        };
        assert_eq!(run(true), run(false));
    }
}

#[cfg(test)]
mod eval_error_tests {
    use super::*;
    use ctxres_constraint::parse_constraints;
    use ctxres_context::ContextKind;
    use ctxres_core::strategies::DropBad;

    #[test]
    fn eval_errors_are_counted_not_fatal() {
        // The constraint reads an attribute the context does not carry.
        let mut m = Middleware::builder()
            .constraints(
                parse_constraints("constraint c: forall a: badge . eq(a.room, \"x\")").unwrap(),
            )
            .strategy(Box::new(DropBad::new()))
            .config(MiddlewareConfig {
                window: Ticks::new(1),
                track_ground_truth: false,
                retention: None,
            })
            .build();
        let report = m.submit(Context::builder(ContextKind::new("badge"), "p").build());
        assert_eq!(report.fresh, 0);
        assert_eq!(m.stats().eval_errors, 1);
        m.drain();
        assert_eq!(m.stats().delivered, 1, "context admitted unchecked");
    }
}

#[cfg(test)]
mod observer_tests {
    use super::*;
    use crate::observer::{Event, EventLog};
    use ctxres_constraint::parse_constraints;
    use ctxres_context::{ContextKind, Point};
    use ctxres_core::strategies::DropBad;
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn observers_see_the_full_event_stream() {
        let log = Arc::new(Mutex::new(EventLog::new()));
        let mut m = Middleware::builder()
            .constraints(
                parse_constraints(
                    "constraint speed:
                       forall a: location, b: location .
                         (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)",
                )
                .unwrap(),
            )
            .strategy(Box::new(DropBad::new()))
            .config(MiddlewareConfig {
                window: Ticks::new(2),
                track_ground_truth: false,
                retention: None,
            })
            .observer(Box::new(Arc::clone(&log)))
            .build();
        for (i, (x, y)) in [(0.0, 0.0), (9.0, 9.0), (1.0, 0.0)].iter().enumerate() {
            m.submit(
                Context::builder(ContextKind::new("location"), "p")
                    .attr("pos", Point::new(*x, *y))
                    .attr("seq", i as i64)
                    .stamp(LogicalTime::new(i as u64))
                    .build(),
            );
        }
        m.drain();
        let events = log.lock();
        let submitted = events
            .events()
            .iter()
            .filter(|e| matches!(e, Event::Submitted { .. }))
            .count();
        let detected = events
            .events()
            .iter()
            .filter(|e| matches!(e, Event::Detected(_)))
            .count();
        let used = events
            .events()
            .iter()
            .filter(|e| matches!(e, Event::Used(_)))
            .count();
        assert_eq!(submitted, 3);
        assert!(detected >= 2, "the outlier conflicts with both neighbours");
        assert_eq!(used, 3);
    }
}

#[cfg(test)]
mod subscription_tests {
    use super::*;
    use crate::subscription::SubscriptionFilter;
    use ctxres_constraint::parse_constraints;
    use ctxres_context::{ContextKind, Point};
    use ctxres_core::strategies::DropBad;

    #[test]
    fn subscriptions_receive_only_delivered_matches() {
        let mut m = Middleware::builder()
            .constraints(
                parse_constraints(
                    "constraint region: forall a: location . within(a, 0.0, 0.0, 10.0, 10.0)",
                )
                .unwrap(),
            )
            .strategy(Box::new(DropBad::new()))
            .config(MiddlewareConfig {
                window: Ticks::new(1),
                track_ground_truth: false,
                retention: None,
            })
            .build();
        let peter_locations = m.subscribe(
            SubscriptionFilter::all()
                .of_kind("location")
                .of_subject("peter"),
        );
        let everything = m.subscribe(SubscriptionFilter::all());

        let good = m
            .submit(
                Context::builder(ContextKind::new("location"), "peter")
                    .attr("pos", Point::new(1.0, 1.0))
                    .stamp(LogicalTime::new(0))
                    .build(),
            )
            .id;
        m.submit(
            Context::builder(ContextKind::new("location"), "mary")
                .attr("pos", Point::new(2.0, 2.0))
                .stamp(LogicalTime::new(1))
                .build(),
        );
        // Off the floor: detected and (eventually) discarded, never
        // delivered to subscribers.
        m.submit(
            Context::builder(ContextKind::new("location"), "peter")
                .attr("pos", Point::new(50.0, 50.0))
                .stamp(LogicalTime::new(2))
                .build(),
        );
        m.drain();

        assert_eq!(m.poll(peter_locations), vec![good]);
        assert_eq!(m.poll(everything).len(), 2);
        assert!(m.poll(everything).is_empty(), "polling drains");
    }
}

#[cfg(test)]
mod retention_tests {
    use super::*;
    use ctxres_constraint::parse_constraints;
    use ctxres_context::{ContextKind, Lifespan, Point};
    use ctxres_core::strategies::DropLatest;

    #[test]
    fn retention_bounds_pool_size_on_long_runs() {
        let mut m = Middleware::builder()
            .constraints(
                parse_constraints(
                    "constraint region: forall a: location . within(a, -1.0, -1.0, 1.0, 1.0)",
                )
                .unwrap(),
            )
            .strategy(Box::new(DropLatest::new()))
            .config(MiddlewareConfig {
                window: Ticks::new(1),
                track_ground_truth: false,
                retention: Some(Ticks::new(20)),
            })
            .build();
        for i in 0..500u64 {
            // Alternate on-floor and off-floor fixes (the latter get
            // discarded); everything carries a short lifespan.
            let x = if i % 2 == 0 { 0.0 } else { 50.0 };
            m.submit(
                Context::builder(ContextKind::new("location"), "p")
                    .attr("pos", Point::new(x, 0.0))
                    .attr("seq", i as i64)
                    .stamp(LogicalTime::new(i))
                    .lifespan(Lifespan::with_ttl(LogicalTime::new(i), Ticks::new(5)))
                    .build(),
            );
        }
        m.drain();
        assert!(
            m.stats().compacted > 400,
            "compacted {}",
            m.stats().compacted
        );
        assert!(
            m.pool().len() < 60,
            "pool must stay bounded, holds {}",
            m.pool().len()
        );
        // Accounting unaffected by compaction.
        assert_eq!(m.stats().received, 500);
        assert_eq!(
            m.stats().delivered + m.stats().discarded,
            500,
            "every context decided"
        );
    }

    #[test]
    fn profiled_run_attributes_nested_phase_time() {
        use ctxres_constraint::parse_constraints;
        use ctxres_context::{ContextKind, Point};
        use ctxres_core::strategies::DropBad;
        use ctxres_obs::{ObsConfig, ObsRegistry};
        const SPEED: &str = "constraint speed:
            forall a: location, b: location .
              (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)";
        let loc = |subject: &str, seq: i64, x: f64| {
            Context::builder(ContextKind::new("location"), subject)
                .attr("pos", Point::new(x, 0.0))
                .attr("seq", seq)
                .stamp(LogicalTime::new(seq as u64))
                .build()
        };
        let registry = ObsRegistry::shared(ObsConfig::metrics_only().with_profile(1), 1);
        let mut m = Middleware::builder()
            .constraints(parse_constraints(SPEED).unwrap())
            .strategy(Box::new(DropBad::new()))
            .obs(registry.handle(0))
            .build();
        m.batch_add(vec![loc("p", 0, 0.0), loc("p", 1, 50.0)]);
        m.drain();
        let agg = registry.profile_snapshot().aggregate();
        let stat = |p: Phase| agg.iter().find(|s| s.phase == p.name()).cloned().unwrap();
        assert_eq!(stat(Phase::Ingest).calls, 1, "one batch, one root");
        assert_eq!(
            stat(Phase::ConstraintCheck).calls,
            3,
            "fused path: one speculation pass + one commit check per context"
        );
        assert!(stat(Phase::Resolution).calls >= 2, "on_addition + uses");
        assert!(
            stat(Phase::IndexMaint).calls >= 2,
            "process_due each submit"
        );
        for s in &agg {
            assert!(s.self_ns <= s.total_ns, "{}: self exceeds total", s.phase);
        }
        // Checking nests entirely inside the batch's ingest root.
        assert!(stat(Phase::Ingest).total_ns >= stat(Phase::ConstraintCheck).total_ns);
        // With profiling off the same run records nothing.
        let off = ObsRegistry::shared(ObsConfig::metrics_only(), 1);
        let mut m = Middleware::builder()
            .constraints(parse_constraints(SPEED).unwrap())
            .strategy(Box::new(DropBad::new()))
            .obs(off.handle(0))
            .build();
        m.batch_add(vec![loc("p", 0, 0.0)]);
        m.drain();
        assert!(off.profile_snapshot().is_empty());
    }

    #[test]
    fn tail_spans_fold_through_a_fused_batch() {
        use ctxres_constraint::parse_constraints;
        use ctxres_context::{ContextKind, Point};
        use ctxres_core::strategies::DropBad;
        use ctxres_obs::{ObsConfig, ObsRegistry, TailOutcome};
        const SPEED: &str = "constraint speed:
            forall a: location, b: location .
              (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)";
        let loc = |subject: &str, seq: i64, x: f64| {
            Context::builder(ContextKind::new("location"), subject)
                .attr("pos", Point::new(x, 0.0))
                .attr("seq", seq)
                .stamp(LogicalTime::new(seq as u64))
                .build()
        };
        let registry = ObsRegistry::shared(ObsConfig::metrics_only().with_tail(true), 1);
        let mut m = Middleware::builder()
            .constraints(parse_constraints(SPEED).unwrap())
            .strategy(Box::new(DropBad::new()))
            .obs(registry.handle(0))
            .build();
        m.batch_add(vec![loc("p", 0, 0.0), loc("p", 1, 50.0), loc("q", 0, 0.0)]);
        m.drain();
        assert!(
            m.tail_pending.is_empty(),
            "every span reached a terminal outcome"
        );
        let snap = registry.tail_snapshot();
        let shard = &snap.shards[0];
        let by = |o: TailOutcome| {
            shard
                .outcomes
                .iter()
                .find(|t| t.outcome == o)
                .map_or(0, |t| t.hist.count)
        };
        let total: u64 = shard.outcomes.iter().map(|o| o.hist.count).sum();
        assert_eq!(total, 3, "one terminal fold per context");
        assert!(by(TailOutcome::Delivered) >= 1, "the clean track delivers");
        assert!(by(TailOutcome::Discarded) >= 1, "the violator is dropped");
        // Speculation accounting: one fused batch, sequential (small),
        // and every relevant commit position classified exactly once.
        assert_eq!(shard.spec.batches, 1);
        assert_eq!(shard.spec.workers_used, 1, "small batch stays sequential");
        assert_eq!(
            shard.spec.consumed + shard.spec.wasted_dirty + shard.spec.inline_checks,
            3,
            "three relevant commits"
        );
        assert_eq!(
            shard.spec.groups_speculated,
            shard.spec.consumed + shard.spec.wasted_dirty,
            "all produced verdicts are consumed or invalidated at commit"
        );
        assert!(
            shard.spec.worker_busy_ns.iter().skip(1).all(|&b| b == 0),
            "only worker slot 0 accrues occupancy"
        );
        // Early records land under the warm-up threshold, so the
        // reservoir holds exemplars; each carries a resolvable causal
        // ID and a telescoping span.
        let exemplars = snap.exemplars();
        assert!(!exemplars.is_empty());
        for ex in exemplars {
            assert!(ex.causal_id().starts_with("s0/ctx#"), "{}", ex.causal_id());
            let seg_sum: u64 = ex.span.segments().iter().sum();
            assert_eq!(seg_sum, ex.span.total_ns());
        }
    }

    #[test]
    fn single_submits_record_tail_spans_too() {
        use ctxres_constraint::parse_constraints;
        use ctxres_context::{ContextKind, Point};
        use ctxres_core::strategies::DropBad;
        use ctxres_obs::{ObsConfig, ObsRegistry, TailOutcome};
        let registry = ObsRegistry::shared(ObsConfig::metrics_only().with_tail(true), 1);
        let mut m = Middleware::builder()
            .constraints(
                parse_constraints(
                    "constraint region: forall a: location . within(a, -1.0, -1.0, 1.0, 1.0)",
                )
                .unwrap(),
            )
            .strategy(Box::new(DropBad::new()))
            .obs(registry.handle(0))
            .build();
        m.submit(
            Context::builder(ContextKind::new("location"), "p")
                .attr("pos", Point::new(0.0, 0.0))
                .stamp(LogicalTime::new(0))
                .build(),
        );
        m.drain();
        assert!(m.tail_pending.is_empty());
        let snap = registry.tail_snapshot();
        let delivered = snap.shards[0]
            .outcomes
            .iter()
            .find(|t| t.outcome == TailOutcome::Delivered)
            .map_or(0, |t| t.hist.count);
        assert_eq!(delivered, 1, "the sequential path stamps spans as well");
        assert_eq!(snap.shards[0].spec.batches, 0, "no fused batch ran");
    }

    #[test]
    fn slow_batches_emit_postmortems_when_bounded() {
        use ctxres_constraint::parse_constraints;
        use ctxres_context::{ContextKind, Point};
        use ctxres_core::strategies::DropBad;
        use ctxres_obs::{ObsConfig, ObsRegistry, TraceEvent};
        const SPEED: &str = "constraint speed:
            forall a: location, b: location .
              (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)";
        let loc = |subject: &str, seq: i64, x: f64| {
            Context::builder(ContextKind::new("location"), subject)
                .attr("pos", Point::new(x, 0.0))
                .attr("seq", seq)
                .stamp(LogicalTime::new(seq as u64))
                .build()
        };
        let build = |registry: &std::sync::Arc<ObsRegistry>| {
            Middleware::builder()
                .constraints(parse_constraints(SPEED).unwrap())
                .strategy(Box::new(DropBad::new()))
                .obs(registry.handle(0))
                .build()
        };
        // A 1ns bound: every fused batch breaches and owes a postmortem.
        let bounded = ObsRegistry::shared(ObsConfig::enabled().with_slow_batch_bound(1), 1);
        let mut m = build(&bounded);
        m.batch_add(vec![loc("p", 0, 0.0), loc("p", 1, 50.0)]);
        let posts: Vec<_> = bounded
            .drain()
            .into_iter()
            .filter(|r| matches!(r.event, TraceEvent::SlowBatch { .. }))
            .collect();
        assert_eq!(posts.len(), 1, "one breaching batch, one postmortem");
        let TraceEvent::SlowBatch {
            batch,
            contexts,
            elapsed_ns,
            bound_ns,
            ref phase_self_ns,
            ref spec,
            ..
        } = posts[0].event
        else {
            unreachable!()
        };
        assert_eq!(batch, 0);
        assert_eq!(contexts, 2);
        assert_eq!(bound_ns, 1);
        assert!(elapsed_ns > bound_ns);
        let names: Vec<&str> = phase_self_ns.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["index_maint", "constraint_check", "resolution"]);
        let segments: u64 = phase_self_ns.iter().map(|(_, ns)| *ns).sum();
        assert_eq!(segments, elapsed_ns, "wall segments telescope");
        assert_eq!(spec.groups_speculated, 2);
        assert_eq!(spec.workers_used, 1);
        // Without a bound the same run stays quiet.
        let unbounded = ObsRegistry::shared(ObsConfig::enabled(), 1);
        let mut m = build(&unbounded);
        m.batch_add(vec![loc("p", 0, 0.0), loc("p", 1, 50.0)]);
        assert!(
            unbounded
                .drain()
                .iter()
                .all(|r| !matches!(r.event, TraceEvent::SlowBatch { .. })),
            "no postmortem without a bound"
        );
    }
}

#[cfg(test)]
mod builder_validation_tests {
    use super::*;
    use ctxres_constraint::parse_constraints;
    use ctxres_core::strategies::DropBad;

    #[test]
    #[should_panic(expected = "duplicate constraint name")]
    fn duplicate_constraint_names_rejected() {
        let constraints = parse_constraints(
            "constraint same: forall a: k . true
             constraint same: forall a: k . false",
        )
        .unwrap();
        let _ = Middleware::builder()
            .constraints(constraints)
            .strategy(Box::new(DropBad::new()))
            .build();
    }
}

//! Application subscriptions: filtered delivery queues.
//!
//! Applications in EgoSpaces/LIME-style middleware (the systems §5.3
//! cites for the time window) do not poll the pool; they subscribe to
//! the contexts they care about and consume deliveries. A
//! [`SubscriptionFilter`] selects by kind and/or subject; the middleware
//! enqueues every *delivered* context matching the filter.

use ctxres_context::{Context, ContextId, ContextKind};
use std::collections::{BTreeSet, VecDeque};

/// Identifier of a registered subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubscriptionId(pub(crate) usize);

/// Selects the contexts a subscription receives. `None` fields match
/// everything (C-CUSTOM-TYPE: prefer the builder-style `of_kind` /
/// `of_subject` helpers to raw construction).
#[derive(Debug, Clone, Default)]
pub struct SubscriptionFilter {
    kinds: Option<BTreeSet<ContextKind>>,
    subjects: Option<BTreeSet<String>>,
}

impl SubscriptionFilter {
    /// Matches every delivered context.
    pub fn all() -> Self {
        SubscriptionFilter::default()
    }

    /// Restricts to one or more kinds (may be called repeatedly).
    pub fn of_kind(mut self, kind: impl Into<ContextKind>) -> Self {
        self.kinds
            .get_or_insert_with(BTreeSet::new)
            .insert(kind.into());
        self
    }

    /// Restricts to one or more subjects (may be called repeatedly).
    pub fn of_subject(mut self, subject: &str) -> Self {
        self.subjects
            .get_or_insert_with(BTreeSet::new)
            .insert(subject.to_owned());
        self
    }

    /// Whether a context passes the filter.
    pub fn matches(&self, ctx: &Context) -> bool {
        let kind_ok = self
            .kinds
            .as_ref()
            .map(|k| k.contains(ctx.kind()))
            .unwrap_or(true);
        let subject_ok = self
            .subjects
            .as_ref()
            .map(|s| s.contains(ctx.subject()))
            .unwrap_or(true);
        kind_ok && subject_ok
    }
}

#[derive(Debug)]
pub(crate) struct SubscriptionTable {
    entries: Vec<(SubscriptionFilter, VecDeque<ContextId>)>,
}

impl SubscriptionTable {
    pub(crate) fn new() -> Self {
        SubscriptionTable {
            entries: Vec::new(),
        }
    }

    pub(crate) fn subscribe(&mut self, filter: SubscriptionFilter) -> SubscriptionId {
        self.entries.push((filter, VecDeque::new()));
        SubscriptionId(self.entries.len() - 1)
    }

    pub(crate) fn offer(&mut self, id: ContextId, ctx: &Context) {
        for (filter, queue) in &mut self.entries {
            if filter.matches(ctx) {
                queue.push_back(id);
            }
        }
    }

    pub(crate) fn drain(&mut self, sub: SubscriptionId) -> Vec<ContextId> {
        self.entries
            .get_mut(sub.0)
            .map(|(_, queue)| queue.drain(..).collect())
            .unwrap_or_default()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn badge(subject: &str) -> Context {
        Context::builder(ContextKind::new("badge"), subject).build()
    }

    #[test]
    fn filter_combinations() {
        let peter_badges = SubscriptionFilter::all()
            .of_kind("badge")
            .of_subject("peter");
        assert!(peter_badges.matches(&badge("peter")));
        assert!(!peter_badges.matches(&badge("mary")));
        assert!(!peter_badges.matches(&Context::builder(ContextKind::new("rfid"), "peter").build()));
        assert!(SubscriptionFilter::all().matches(&badge("anyone")));
    }

    #[test]
    fn table_routes_to_matching_queues() {
        let mut table = SubscriptionTable::new();
        let all = table.subscribe(SubscriptionFilter::all());
        let peter = table.subscribe(SubscriptionFilter::all().of_subject("peter"));
        table.offer(ContextId::from_raw(0), &badge("peter"));
        table.offer(ContextId::from_raw(1), &badge("mary"));
        assert_eq!(table.drain(all).len(), 2);
        assert_eq!(table.drain(peter), vec![ContextId::from_raw(0)]);
        assert!(table.drain(peter).is_empty(), "drained");
    }

    #[test]
    fn unknown_subscription_drains_empty() {
        let mut table = SubscriptionTable::new();
        assert!(table.drain(SubscriptionId(9)).is_empty());
    }
}

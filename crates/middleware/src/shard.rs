//! Sharded parallel middleware: partition contexts by subject into
//! independent engines.
//!
//! The global-mutex front-end ([`crate::SharedMiddleware`]) serializes
//! every submission through one lock, and — more costly at scale —
//! funnels every context into one pool, so each incremental check
//! quantifies over the *whole* population of its kind. But the paper's
//! workhorse constraints (the §2.2 speed constraint and friends) guard
//! their quantifier pairs with `same_subject`: a violation can only ever
//! relate contexts of one subject. [`ShardedMiddleware`] exploits that:
//!
//! * deploy time: [`ShardPlan::analyze`] classifies each constraint via
//!   [`ctxres_constraint::constraint_scope`]. Kinds touched by any
//!   `Global`-scope constraint are routed to a dedicated **shared-scope
//!   shard**; all other kinds partition by subject hash across N
//!   **subject shards**;
//! * run time: each shard is a full [`Middleware`] (own pool, own
//!   incremental checker, own strategy instance) behind its **own**
//!   lock. Producers submitting different subjects never contend, and
//!   each check's quantifier domains shrink to the shard's slice of the
//!   pool — an algorithmic win even on one core;
//! * counters: [`ShardedMiddleware::stats`] /
//!   [`ShardedMiddleware::shard_stats`] aggregate per-shard counters by
//!   visiting each shard lock in turn — there is no global lock.
//!
//! Routing is sound, not heuristic: a `PerSubject` constraint's
//! violating bindings are same-subject by construction (the scope
//! analysis proves it), and all contexts of one subject land in one
//! shard, so shard-local checking finds exactly the inconsistencies the
//! single-engine middleware would. Situations are a cross-subject
//! aggregate concern and stay with the single-engine experiment path.

use crate::concurrent::resume_worker_panic;
use crate::middleware::{Middleware, SubmitReport};
use crate::stats::{MiddlewareStats, ShardStats};
use crossbeam::channel::Receiver;
use ctxres_constraint::{global_kinds, Constraint};
use ctxres_context::{Context, ContextKind, ContextState, LogicalTime};
use ctxres_core::ResolutionStrategy;
use ctxres_obs::{MetricKind, ObsConfig, ObsRegistry, Phase, ShardObs};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// FNV-1a, for a stable subject → shard assignment (independent of the
/// process and of `RandomState`, so test expectations hold).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The deploy-time routing decision: how many subject shards, and which
/// context kinds must bypass them for the shared-scope shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    subject_shards: usize,
    global_kinds: BTreeSet<ContextKind>,
    /// Subjects pinned to a specific shard by rebalancing, overriding
    /// the hash route. Empty until [`ShardPlan::rebalance`] produces a
    /// successor plan.
    overrides: BTreeMap<String, usize>,
}

/// The live-context load of one subject shard, as harvested by
/// [`ShardedMiddleware::subject_loads`] — the input to hot-shard
/// detection and [`ShardPlan::rebalance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLoad {
    /// Subject-shard index.
    pub shard: usize,
    /// Live contexts per subject (sorted by subject).
    pub subjects: Vec<(String, usize)>,
}

impl ShardLoad {
    /// Total live contexts on the shard.
    pub fn total(&self) -> usize {
        self.subjects.iter().map(|(_, n)| n).sum()
    }
}

impl ShardPlan {
    /// Analyzes a constraint set: kinds quantified over by any
    /// constraint outside the per-subject fragment are pinned to the
    /// shared-scope shard; everything else partitions by subject across
    /// `subject_shards` shards.
    ///
    /// # Panics
    ///
    /// Panics when `subject_shards` is zero.
    pub fn analyze(constraints: &[Constraint], subject_shards: usize) -> Self {
        assert!(subject_shards > 0, "need at least one subject shard");
        ShardPlan {
            subject_shards,
            global_kinds: global_kinds(constraints),
            overrides: BTreeMap::new(),
        }
    }

    /// Number of subject shards (the shared-scope shard is extra).
    pub fn subject_shards(&self) -> usize {
        self.subject_shards
    }

    /// Total engines: subject shards plus the shared-scope shard.
    pub fn total_shards(&self) -> usize {
        self.subject_shards + 1
    }

    /// Index of the shared-scope shard (always the last).
    pub fn shared_shard(&self) -> usize {
        self.subject_shards
    }

    /// The kinds routed to the shared-scope shard.
    pub fn global_kinds(&self) -> &BTreeSet<ContextKind> {
        &self.global_kinds
    }

    /// The shard a context belongs to: shared-scope for global kinds,
    /// otherwise a stable hash of the subject (falling back to the kind
    /// name when the subject is empty).
    pub fn route(&self, ctx: &Context) -> usize {
        if self.global_kinds.contains(ctx.kind()) {
            return self.shared_shard();
        }
        let key = if ctx.subject().is_empty() {
            ctx.kind().name()
        } else {
            ctx.subject()
        };
        if let Some(&pinned) = self.overrides.get(key) {
            return pinned;
        }
        (fnv1a64(key.as_bytes()) % self.subject_shards as u64) as usize
    }

    /// The rebalancing overrides currently pinning subjects to shards.
    pub fn overrides(&self) -> &BTreeMap<String, usize> {
        &self.overrides
    }

    /// Subject shards carrying more than `factor`× the mean
    /// subject-shard load, hottest first (ties broken by index). The
    /// shared-scope shard never counts: its load is fixed by constraint
    /// scope, not subject placement.
    pub fn hot_shards(&self, loads: &[ShardLoad], factor: f64) -> Vec<usize> {
        let totals = self.load_totals(loads);
        let mean = totals.iter().sum::<usize>() as f64 / self.subject_shards as f64;
        let mut hot: Vec<usize> = (0..self.subject_shards)
            .filter(|&i| totals[i] as f64 > factor * mean && totals[i] > 0)
            .collect();
        hot.sort_by_key(|&i| (std::cmp::Reverse(totals[i]), i));
        hot
    }

    /// Plans a deterministic rebalancing pass: every shard hotter than
    /// `factor`× the mean subject-shard load sheds its heaviest subjects
    /// (ties broken by subject name) to the least-loaded shard until it
    /// reaches the mean. Returns the successor plan carrying the updated
    /// overrides, or `None` when no shard is hot — routing, and thus the
    /// engine, is untouched in that case.
    ///
    /// The plan is pure: feeding the same loads always yields the same
    /// plan, so a sharded engine applying it between batches stays
    /// deterministic.
    pub fn rebalance(&self, loads: &[ShardLoad], factor: f64) -> Option<ShardPlan> {
        let hot = self.hot_shards(loads, factor);
        if hot.is_empty() {
            return None;
        }
        let mut totals = self.load_totals(loads);
        let mean = (totals.iter().sum::<usize>() as f64 / self.subject_shards as f64).ceil();
        let mut overrides = self.overrides.clone();
        for h in hot {
            let mut subjects: Vec<(String, usize)> = loads
                .iter()
                .filter(|l| l.shard == h)
                .flat_map(|l| l.subjects.iter().cloned())
                .collect();
            subjects.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            for (subject, count) in subjects {
                if (totals[h] as f64) <= mean {
                    break;
                }
                let target = (0..self.subject_shards)
                    .min_by_key(|&i| (totals[i], i))
                    .expect("at least one subject shard");
                if target == h || totals[target] + count > totals[h] - count {
                    // Moving would not reduce the imbalance.
                    continue;
                }
                totals[h] -= count;
                totals[target] += count;
                overrides.insert(subject, target);
            }
        }
        if overrides == self.overrides {
            return None;
        }
        Some(ShardPlan {
            subject_shards: self.subject_shards,
            global_kinds: self.global_kinds.clone(),
            overrides,
        })
    }

    /// Per-subject-shard totals from `loads` (missing shards count 0).
    fn load_totals(&self, loads: &[ShardLoad]) -> Vec<usize> {
        let mut totals = vec![0usize; self.subject_shards];
        for l in loads {
            if l.shard < self.subject_shards {
                totals[l.shard] += l.total();
            }
        }
        totals
    }
}

/// A middleware partitioned into independently locked shards.
///
/// Construct with [`ShardedMiddleware::new`], giving a factory that
/// builds each shard's engine (every shard deploys the same constraints
/// and its own strategy instance):
///
/// ```
/// use ctxres_constraint::parse_constraints;
/// use ctxres_core::strategies::DropBad;
/// use ctxres_middleware::{Middleware, MiddlewareConfig, ShardPlan, ShardedMiddleware};
/// use ctxres_context::Ticks;
///
/// let constraints = parse_constraints(
///     "constraint speed:
///        forall a: location, b: location .
///          (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)",
/// )?;
/// let plan = ShardPlan::analyze(&constraints, 4);
/// let sharded = ShardedMiddleware::new(plan, |_| {
///     Middleware::builder()
///         .constraints(constraints.clone())
///         .strategy(Box::new(DropBad::new()))
///         .config(MiddlewareConfig {
///             window: Ticks::new(0),
///             track_ground_truth: false,
///             retention: None,
///         })
///         .build()
/// });
/// assert_eq!(sharded.plan().total_shards(), 5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ShardedMiddleware {
    plan: ShardPlan,
    shards: Vec<Mutex<Middleware>>,
    /// Engine-level handle (routing spans); per-shard events go through
    /// each shard middleware's own handle.
    obs: ShardObs,
    /// The registry behind `obs`, kept so samplers and metrics servers
    /// ([`ctxres_obs::Sampler`], [`ctxres_obs::MetricsServer`]) can be
    /// attached to a running engine. `None` for unobserved engines.
    registry: Option<Arc<ObsRegistry>>,
}

impl std::fmt::Debug for ShardedMiddleware {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMiddleware")
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

impl ShardedMiddleware {
    /// Builds the engine: `make(i)` constructs shard `i`'s middleware
    /// (index [`ShardPlan::shared_shard`] is the shared-scope shard).
    pub fn new(plan: ShardPlan, mut make: impl FnMut(usize) -> Middleware) -> Self {
        let shards = (0..plan.total_shards())
            .map(|i| Mutex::new(make(i)))
            .collect();
        ShardedMiddleware {
            plan,
            shards,
            obs: ShardObs::disabled(),
            registry: None,
        }
    }

    /// An [`ObsRegistry`] sized for `plan`: one slot per shard plus a
    /// final **engine slot** holding the cross-shard front-end's own
    /// metrics (routing latency). Pass it to
    /// [`ShardedMiddleware::new_observed`].
    pub fn obs_registry(plan: &ShardPlan, config: ObsConfig) -> Arc<ObsRegistry> {
        ObsRegistry::shared(config, plan.total_shards() + 1)
    }

    /// [`ShardedMiddleware::new`] with instrumentation: `make(i, obs)`
    /// receives shard `i`'s recording handle to attach via
    /// [`crate::MiddlewareBuilder::obs`], and the engine keeps the extra
    /// last slot of `registry` for its own front-end metrics.
    ///
    /// # Panics
    ///
    /// Panics when an enabled `registry` has fewer than
    /// `plan.total_shards() + 1` slots (build it with
    /// [`ShardedMiddleware::obs_registry`]).
    pub fn new_observed(
        plan: ShardPlan,
        registry: &Arc<ObsRegistry>,
        mut make: impl FnMut(usize, ShardObs) -> Middleware,
    ) -> Self {
        let shards = (0..plan.total_shards())
            .map(|i| Mutex::new(make(i, registry.handle(i))))
            .collect();
        let obs = registry.handle(plan.total_shards());
        ShardedMiddleware {
            plan,
            shards,
            obs,
            registry: Some(Arc::clone(registry)),
        }
    }

    /// The routing plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The observability registry this engine records into, when built
    /// with [`ShardedMiddleware::new_observed`] — the handle a live
    /// sampler or `/metrics` server attaches to.
    pub fn registry(&self) -> Option<&Arc<ObsRegistry>> {
        self.registry.as_ref()
    }

    /// Submits one context to its shard, locking only that shard.
    /// Returns the shard index and the shard's report.
    ///
    /// With [`ObsConfig::with_tail`] on, the time spent waiting for the
    /// shard lock and the time spent inside it are recorded separately
    /// (the wait-versus-service decomposition of the shard queues).
    pub fn submit(&self, ctx: Context) -> (usize, SubmitReport) {
        let shard = self.plan.route(&ctx);
        let tail_on = self.obs.tail_enabled();
        let waited = tail_on.then(std::time::Instant::now);
        let mut mw = self.shards[shard].lock();
        if let Some(t) = waited {
            mw.obs()
                .record_queue_wait(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        let served = tail_on.then(std::time::Instant::now);
        let report = mw.submit(ctx);
        if let Some(t) = served {
            mw.obs()
                .record_queue_service(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        (shard, report)
    }

    /// Ingests a batch: partitions it by shard, then runs every
    /// non-empty partition on its own thread (each locking only its own
    /// shard). Returns how many contexts were ingested.
    ///
    /// Within a shard, batch order is preserved, so per-subject stamp
    /// order — the order detection semantics care about — matches a
    /// serial submission of the same batch.
    pub fn batch_add(&self, batch: &[Context]) -> usize {
        self.batch_add_owned(batch.to_vec())
    }

    /// [`ShardedMiddleware::batch_add`] taking ownership: partitioning
    /// moves each context into its shard's chunk instead of cloning it —
    /// the path the city-scale benchmarks drive, where a per-context
    /// clone of attribute maps would dominate routing. Each shard then
    /// ingests its whole chunk through the amortized
    /// [`Middleware::batch_add`].
    pub fn batch_add_owned(&self, batch: Vec<Context>) -> usize {
        let total = batch.len();
        let route_span = self.obs.span(MetricKind::RouteLatency);
        // Routing cost lands on the engine slot as ingest self time;
        // each shard's own ingest root opens inside its worker thread.
        let route_phase = self.obs.phase(Phase::Ingest);
        let mut per_shard: Vec<Vec<Context>> = vec![Vec::new(); self.shards.len()];
        for ctx in batch {
            per_shard[self.plan.route(&ctx)].push(ctx);
        }
        route_phase.finish();
        route_span.finish();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(per_shard.len());
            for (i, chunk) in per_shard.into_iter().enumerate() {
                if chunk.is_empty() {
                    continue;
                }
                let shard = &self.shards[i];
                let tail_on = self.obs.tail_enabled();
                let handle = scope.spawn(move || {
                    // Wait-versus-service decomposition: how long the
                    // chunk queued on the shard lock versus how long the
                    // shard engine actually worked on it.
                    let waited = tail_on.then(std::time::Instant::now);
                    let mut mw = shard.lock();
                    // The shard's own handle, cloned out of the guard so
                    // the ingest span can outlive `mw`'s borrows.
                    let obs = mw.obs().clone();
                    if let Some(t) = waited {
                        obs.record_queue_wait(
                            u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        );
                    }
                    let span = obs.span(MetricKind::IngestLatency);
                    let served = tail_on.then(std::time::Instant::now);
                    mw.batch_add(chunk);
                    if let Some(t) = served {
                        obs.record_queue_service(
                            u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        );
                    }
                    span.finish();
                });
                handles.push((i, handle));
            }
            // Join explicitly instead of letting the scope propagate the
            // first panic as an opaque payload: string payloads resume
            // verbatim, others are labelled with the shard that died.
            for (i, handle) in handles {
                if let Err(payload) = handle.join() {
                    resume_worker_panic(&format!("shard {i} ingest thread"), payload);
                }
            }
        });
        total
    }

    /// The per-subject live-context load of every subject shard,
    /// harvested shard by shard under each shard's own lock — the input
    /// [`ShardPlan::rebalance`] consumes.
    pub fn subject_loads(&self) -> Vec<ShardLoad> {
        (0..self.plan.subject_shards())
            .map(|i| ShardLoad {
                shard: i,
                subjects: self.shards[i]
                    .lock()
                    .pool()
                    .subject_counts()
                    .into_iter()
                    .collect(),
            })
            .collect()
    }

    /// Adopts a rebalanced routing plan between batches: every stored
    /// context whose shard changes under `new_plan` migrates pool to
    /// pool (its state travels with it), and subsequent submissions
    /// route by the new plan. Migration is deterministic: sources are
    /// visited in shard order and each yields its contexts in arrival
    /// order.
    ///
    /// Detections already reported are unaffected — per-subject
    /// constraint checking sees the same subject-complete bucket on the
    /// new shard. For the rare subject-routed constraint on the
    /// full-check fallback path, a violation involving migrated
    /// contexts may be re-reported once on the new shard (the diff
    /// baseline does not migrate).
    ///
    /// # Panics
    ///
    /// Panics when `new_plan` changes the shard count or global kinds
    /// (only subject overrides may differ), or when any shard still has
    /// buffered contexts — call [`ShardedMiddleware::drain`] first, so
    /// no in-flight use or strategy decision can refer to a migrating
    /// context.
    pub fn apply_plan(&mut self, new_plan: ShardPlan) {
        // Migration cost — extraction, re-routing, adoption — lands on
        // the engine slot as a rebalance root.
        let obs = self.obs.clone();
        let _rebalance_phase = obs.phase(Phase::Rebalance);
        assert_eq!(
            new_plan.subject_shards(),
            self.plan.subject_shards(),
            "apply_plan cannot change the shard count"
        );
        assert_eq!(
            new_plan.global_kinds(),
            self.plan.global_kinds(),
            "apply_plan cannot change the global-kind set"
        );
        for (i, shard) in self.shards.iter().enumerate() {
            assert_eq!(
                shard.lock().buffered(),
                0,
                "apply_plan requires drained shards; shard {i} still buffers contexts"
            );
        }
        let mut moves: Vec<Vec<Context>> = vec![Vec::new(); self.shards.len()];
        for i in 0..self.plan.subject_shards() {
            let migrated = self.shards[i]
                .lock()
                .extract_where(|c| new_plan.route(c) != i);
            for ctx in migrated {
                moves[new_plan.route(&ctx)].push(ctx);
            }
        }
        for (target, ctxs) in moves.into_iter().enumerate() {
            if !ctxs.is_empty() {
                self.shards[target].lock().adopt_contexts(ctxs);
            }
        }
        self.plan = new_plan;
    }

    /// Consumes a context channel to exhaustion, routing each context
    /// to its shard. The sharded analogue of
    /// [`crate::SharedMiddleware::pump`]: run one per producer thread —
    /// producers of different subjects proceed without contending.
    pub fn pump(&self, source: Receiver<Context>) -> usize {
        let mut n = 0;
        for ctx in source {
            self.submit(ctx);
            n += 1;
        }
        n
    }

    /// Uses every buffered context in every shard (end of a run).
    pub fn drain(&self) {
        for shard in &self.shards {
            shard.lock().drain();
        }
    }

    /// Hot-swaps the resolution strategy on every shard (see
    /// [`Middleware::swap_strategy`]): `make` builds one fresh strategy
    /// per shard, each attached to its shard's observability handle.
    /// Shards are swapped one at a time under their own locks, so
    /// concurrent submitters see either the old or the new policy per
    /// context, never a torn state.
    pub fn swap_strategy(&self, mut make: impl FnMut(usize) -> Box<dyn ResolutionStrategy + Send>) {
        for (i, shard) in self.shards.iter().enumerate() {
            shard.lock().swap_strategy(make(i));
        }
    }

    /// Runs `f` against one shard's engine (e.g. to subscribe, poll, or
    /// inspect its pool).
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&mut Middleware) -> R) -> R {
        f(&mut self.shards[shard].lock())
    }

    /// Aggregated run counters, summed shard by shard under each
    /// shard's own lock (no global lock).
    pub fn stats(&self) -> MiddlewareStats {
        let mut total = MiddlewareStats::default();
        for shard in &self.shards {
            total.absorb(shard.lock().stats());
        }
        total
    }

    /// Per-shard counters: ingestion, checker evaluations, detections,
    /// and fast-path hits for each shard.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let mw = shard.lock();
                let stats = mw.stats();
                let checker = mw.checker_stats();
                ShardStats {
                    shard: i,
                    shared_scope: i == self.plan.shared_shard(),
                    ingested: stats.received,
                    checks: checker.pinned_evals + checker.full_evals,
                    inconsistencies: stats.inconsistencies,
                    fast_path_hits: stats.irrelevant,
                }
            })
            .collect()
    }

    /// The id-free content fingerprint of all shard pools combined
    /// (see [`ctxres_context::ContextPool::signature`]) — equal to a
    /// single-engine pool signature over the same workload, which is the
    /// determinism oracle the stress tests assert.
    pub fn signature(&self) -> Vec<(ContextKind, String, LogicalTime, ContextState)> {
        let mut sig = Vec::new();
        for shard in &self.shards {
            sig.extend(shard.lock().pool().signature());
        }
        sig.sort_by(|a, b| (&a.0, &a.1, a.2, a.3 as u8).cmp(&(&b.0, &b.1, b.2, b.3 as u8)));
        sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middleware::MiddlewareConfig;
    use ctxres_constraint::parse_constraints;
    use ctxres_context::{Point, Ticks};
    use ctxres_core::strategies::DropBad;

    const SPEED: &str = "constraint speed:
        forall a: location, b: location .
          (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)";

    const PAIRWISE: &str = "constraint reader_gap:
        forall r: rfid, s: rfid . velocity_le(r, s, 1000.0)";

    fn loc(subject: &str, seq: i64, x: f64) -> Context {
        Context::builder(ContextKind::new("location"), subject)
            .attr("pos", Point::new(x, 0.0))
            .attr("seq", seq)
            .stamp(LogicalTime::new(seq as u64))
            .build()
    }

    fn engine(constraints_src: &str, subject_shards: usize) -> ShardedMiddleware {
        let constraints = parse_constraints(constraints_src).unwrap();
        let plan = ShardPlan::analyze(&constraints, subject_shards);
        ShardedMiddleware::new(plan, |_| {
            Middleware::builder()
                .constraints(parse_constraints(constraints_src).unwrap())
                .strategy(Box::new(DropBad::new()))
                .config(MiddlewareConfig {
                    window: Ticks::new(0),
                    track_ground_truth: false,
                    retention: None,
                })
                .build()
        })
    }

    #[test]
    fn per_subject_kinds_partition_by_subject() {
        let sharded = engine(SPEED, 4);
        assert!(sharded.plan().global_kinds().is_empty());
        let a = sharded.plan().route(&loc("alice", 0, 0.0));
        assert!(a < 4, "subject kinds never route to the shared shard");
        // Same subject always lands on the same shard.
        assert_eq!(a, sharded.plan().route(&loc("alice", 7, 3.0)));
    }

    #[test]
    fn global_kind_routes_to_shared_shard() {
        let sharded = engine(&format!("{SPEED}\n{PAIRWISE}"), 4);
        assert!(sharded
            .plan()
            .global_kinds()
            .contains(&ContextKind::new("rfid")));
        let tag = Context::builder(ContextKind::new("rfid"), "tag-1").build();
        assert_eq!(sharded.plan().route(&tag), sharded.plan().shared_shard());
        // Per-subject kinds still partition normally.
        assert!(sharded.plan().route(&loc("alice", 0, 0.0)) < 4);
    }

    #[test]
    fn sharded_detection_matches_single_engine() {
        let trace: Vec<Context> = (0..40)
            .flat_map(|t| {
                ["alice", "bob", "carol", "dave"]
                    .into_iter()
                    .enumerate()
                    .map(move |(i, s)| {
                        // Every 10th context per subject teleports: a violation.
                        let x = if t % 10 == 9 { 500.0 } else { t as f64 * 0.5 };
                        loc(s, (t * 4 + i as i64) / 4, x)
                    })
            })
            .collect();

        let sharded = engine(SPEED, 4);
        sharded.batch_add(&trace);
        sharded.drain();

        let mut single = Middleware::builder()
            .constraints(parse_constraints(SPEED).unwrap())
            .strategy(Box::new(DropBad::new()))
            .config(MiddlewareConfig {
                window: Ticks::new(0),
                track_ground_truth: false,
                retention: None,
            })
            .build();
        for ctx in &trace {
            single.submit(ctx.clone());
        }
        single.drain();

        assert_eq!(
            sharded.stats().inconsistencies,
            single.stats().inconsistencies
        );
        assert_eq!(sharded.stats().discarded, single.stats().discarded);
        assert_eq!(sharded.signature(), single.pool().signature());
    }

    #[test]
    fn shard_stats_expose_per_shard_counters() {
        let sharded = engine(SPEED, 2);
        let trace: Vec<Context> = (0..12)
            .map(|t| loc(if t % 2 == 0 { "a" } else { "b" }, t, 0.1))
            .collect();
        sharded.batch_add(&trace);
        // An irrelevant kind exercises the fast path.
        sharded.submit(Context::builder(ContextKind::new("temperature"), "room").build());

        let stats = sharded.shard_stats();
        assert_eq!(stats.len(), 3, "2 subject shards + shared shard");
        assert_eq!(stats.iter().map(|s| s.ingested).sum::<u64>(), 13);
        assert_eq!(stats.iter().filter(|s| s.shared_scope).count(), 1);
        assert!(stats.iter().any(|s| s.checks > 0));
        assert_eq!(stats.iter().map(|s| s.fast_path_hits).sum::<u64>(), 1);
        assert_eq!(sharded.stats().received, 13);
    }

    #[test]
    fn empty_subject_falls_back_to_kind_hash() {
        let sharded = engine(SPEED, 4);
        let anon = Context::builder(ContextKind::new("location"), "").build();
        let shard = sharded.plan().route(&anon);
        assert!(shard < 4);
        assert_eq!(shard, sharded.plan().route(&anon));
    }

    #[test]
    fn profiled_sharded_ingest_and_rebalance_record_phases() {
        let constraints = parse_constraints(SPEED).unwrap();
        let plan = ShardPlan::analyze(&constraints, 2);
        let registry =
            ShardedMiddleware::obs_registry(&plan, ObsConfig::metrics_only().with_profile(1));
        let mut sharded = ShardedMiddleware::new_observed(plan, &registry, |_, obs| {
            Middleware::builder()
                .constraints(parse_constraints(SPEED).unwrap())
                .strategy(Box::new(DropBad::new()))
                .config(MiddlewareConfig {
                    window: Ticks::new(0),
                    track_ground_truth: false,
                    retention: None,
                })
                .obs(obs)
                .build()
        });
        sharded.batch_add_owned(vec![loc("alice", 0, 0.0), loc("bob", 0, 1.0)]);
        sharded.drain();
        let plan = sharded.plan().clone();
        sharded.apply_plan(plan);
        let snap = registry.profile_snapshot();
        let calls = |shard: usize, phase: &str| {
            snap.shards[shard]
                .phases
                .iter()
                .find(|p| p.phase == phase)
                .map(|p| p.calls)
                .unwrap_or(0)
        };
        let engine_slot = snap.shards.len() - 1;
        assert_eq!(calls(engine_slot, "rebalance"), 1, "apply_plan recorded");
        assert_eq!(calls(engine_slot, "ingest"), 1, "routing recorded");
        let shard_ingests: u64 = (0..engine_slot).map(|i| calls(i, "ingest")).sum();
        assert!(shard_ingests >= 1, "worker shards record their batches");
    }

    fn observed_engine(subject_shards: usize) -> (ShardedMiddleware, Arc<ctxres_obs::ObsRegistry>) {
        let constraints = parse_constraints(SPEED).unwrap();
        let plan = ShardPlan::analyze(&constraints, subject_shards);
        let registry = ShardedMiddleware::obs_registry(&plan, ObsConfig::enabled());
        let sharded = ShardedMiddleware::new_observed(plan, &registry, |_, obs| {
            Middleware::builder()
                .constraints(parse_constraints(SPEED).unwrap())
                .strategy(Box::new(DropBad::new()))
                .config(MiddlewareConfig {
                    window: Ticks::new(0),
                    track_ground_truth: false,
                    retention: None,
                })
                .obs(obs)
                .build()
        });
        (sharded, registry)
    }

    #[test]
    fn observed_engine_tags_events_with_the_routing_shard() {
        let (sharded, registry) = observed_engine(4);
        let batch: Vec<Context> = (0..10)
            .flat_map(|t| ["alice", "bob"].map(|s| loc(s, t, t as f64 * 0.1)))
            .collect();
        sharded.batch_add(&batch);
        sharded.drain();

        let trace = registry.drain();
        assert!(!trace.is_empty());
        // Every event of one subject carries that subject's shard id.
        let alice_shard = sharded.plan().route(&loc("alice", 0, 0.0)) as u32;
        let alice_received: Vec<u32> = trace
            .iter()
            .filter(|r| {
                matches!(&r.event, ctxres_obs::TraceEvent::Received { subject, .. }
                    if subject.as_ref() == "alice")
            })
            .map(|r| r.shard)
            .collect();
        assert_eq!(alice_received.len(), 10);
        assert!(alice_received.iter().all(|s| *s == alice_shard));
        // Metrics landed without a drop.
        assert_eq!(registry.dropped(), 0);
        let agg = registry.snapshot().aggregate();
        assert_eq!(
            agg.counter(ctxres_obs::CounterKind::Deliveries),
            sharded.stats().delivered
        );
        assert!(agg.histogram(MetricKind::IngestLatency).count >= 1);
        assert!(agg.histogram(MetricKind::RouteLatency).count >= 1);
        // Every submission bumps the ingest counter, and the registry is
        // reachable from the engine for samplers / metrics servers.
        assert_eq!(
            agg.counter(ctxres_obs::CounterKind::Ingested),
            sharded.stats().received
        );
        let held = sharded.registry().expect("observed engine keeps registry");
        assert!(Arc::ptr_eq(held, &registry));
    }

    #[test]
    fn tail_engine_decomposes_queue_wait_and_service() {
        let constraints = parse_constraints(SPEED).unwrap();
        let plan = ShardPlan::analyze(&constraints, 2);
        let registry =
            ShardedMiddleware::obs_registry(&plan, ObsConfig::metrics_only().with_tail(true));
        let sharded = ShardedMiddleware::new_observed(plan, &registry, |_, obs| {
            Middleware::builder()
                .constraints(parse_constraints(SPEED).unwrap())
                .strategy(Box::new(DropBad::new()))
                .config(MiddlewareConfig {
                    window: Ticks::new(0),
                    track_ground_truth: false,
                    retention: None,
                })
                .obs(obs)
                .build()
        });
        let batch: Vec<Context> = (0..6)
            .flat_map(|t| ["alice", "bob"].map(|s| loc(s, t, t as f64 * 0.1)))
            .collect();
        sharded.batch_add_owned(batch);
        sharded.submit(loc("alice", 6, 0.6));
        sharded.drain();
        let tail = registry.tail_snapshot();
        let waits: u64 = tail.shards.iter().map(|s| s.queue.wait_count).sum();
        let services: u64 = tail.shards.iter().map(|s| s.queue.service_count).sum();
        assert!(waits >= 2, "each ingested chunk and submit queues once");
        assert_eq!(waits, services, "every wait is followed by service");
        // The delivered spans flowed through too.
        let folded: u64 = tail
            .shards
            .iter()
            .flat_map(|s| s.outcomes.iter())
            .map(|o| o.hist.count)
            .sum();
        assert_eq!(folded, 13, "one terminal outcome per context");
    }

    #[test]
    fn unobserved_engine_has_no_registry() {
        let sharded = engine(SPEED, 2);
        assert!(sharded.registry().is_none());
    }

    #[test]
    fn disabled_observed_engine_records_nothing() {
        let constraints = parse_constraints(SPEED).unwrap();
        let plan = ShardPlan::analyze(&constraints, 2);
        let registry = ShardedMiddleware::obs_registry(&plan, ObsConfig::disabled());
        let sharded = ShardedMiddleware::new_observed(plan, &registry, |_, obs| {
            assert!(!obs.is_enabled());
            Middleware::builder()
                .constraints(parse_constraints(SPEED).unwrap())
                .strategy(Box::new(DropBad::new()))
                .obs(obs)
                .build()
        });
        sharded.batch_add(&[loc("alice", 0, 0.0)]);
        sharded.drain();
        assert!(registry.drain().is_empty());
    }

    #[test]
    fn batch_add_owned_matches_borrowed_batch_add() {
        let trace: Vec<Context> = (0..30)
            .flat_map(|t| {
                ["alice", "bob", "carol"].into_iter().map(move |s| {
                    let x = if t % 10 == 9 { 500.0 } else { t as f64 * 0.5 };
                    loc(s, t, x)
                })
            })
            .collect();
        let borrowed = engine(SPEED, 3);
        borrowed.batch_add(&trace);
        borrowed.drain();
        let owned = engine(SPEED, 3);
        owned.batch_add_owned(trace);
        owned.drain();
        assert_eq!(borrowed.signature(), owned.signature());
        assert_eq!(
            borrowed.stats().inconsistencies,
            owned.stats().inconsistencies
        );
    }

    #[test]
    fn hot_shard_detection_flags_overloaded_shards() {
        let plan = ShardPlan::analyze(&parse_constraints(SPEED).unwrap(), 4);
        let loads = vec![
            ShardLoad {
                shard: 0,
                subjects: vec![("a".into(), 90), ("b".into(), 10)],
            },
            ShardLoad {
                shard: 1,
                subjects: vec![("c".into(), 10)],
            },
            ShardLoad {
                shard: 2,
                subjects: vec![("d".into(), 12)],
            },
            ShardLoad {
                shard: 3,
                subjects: vec![],
            },
        ];
        // Mean load is (100+10+12)/4 = 30.5; only shard 0 exceeds 1.5×.
        assert_eq!(plan.hot_shards(&loads, 1.5), vec![0]);
        assert!(plan.hot_shards(&loads, 4.0).is_empty());
    }

    #[test]
    fn rebalance_pins_heavy_subjects_to_cold_shards() {
        let plan = ShardPlan::analyze(&parse_constraints(SPEED).unwrap(), 2);
        let loads = vec![
            ShardLoad {
                shard: 0,
                subjects: vec![("whale".into(), 80), ("minnow".into(), 20)],
            },
            ShardLoad {
                shard: 1,
                subjects: vec![("shrimp".into(), 10)],
            },
        ];
        let balanced = plan.rebalance(&loads, 1.2).expect("shard 0 is hot");
        // Deterministic: same input, same plan.
        assert_eq!(plan.rebalance(&loads, 1.2), Some(balanced.clone()));
        // The heaviest movable subject lands on the cold shard, and
        // routing follows the override.
        assert_eq!(balanced.overrides().get("minnow"), Some(&1));
        assert_eq!(balanced.route(&loc("minnow", 0, 0.0)), 1);
        // A balanced cluster yields no successor plan at all.
        let even = vec![
            ShardLoad {
                shard: 0,
                subjects: vec![("a".into(), 50)],
            },
            ShardLoad {
                shard: 1,
                subjects: vec![("b".into(), 50)],
            },
        ];
        assert_eq!(plan.rebalance(&even, 1.2), None);
    }

    #[test]
    fn apply_plan_migrates_contexts_and_detection_continues() {
        let mut sharded = engine(SPEED, 2);
        // Subjects that all hash-route to one shard: a synthetic hot shard.
        let home = sharded.plan().route(&loc("s0", 0, 0.0));
        let colocated: Vec<String> = (0..50)
            .map(|i| format!("s{i}"))
            .filter(|s| {
                sharded
                    .plan()
                    .route(&Context::builder(ContextKind::new("location"), s.as_str()).build())
                    == home
            })
            .take(3)
            .collect();
        assert_eq!(colocated.len(), 3, "need three colocated subjects");
        let mut batch = Vec::new();
        for t in 0..8 {
            for s in &colocated {
                batch.push(loc(s, t, t as f64 * 0.5));
            }
        }
        sharded.batch_add_owned(batch);
        sharded.drain();
        let before = sharded.signature();

        let loads = sharded.subject_loads();
        let plan = sharded
            .plan()
            .rebalance(&loads, 1.2)
            .expect("one shard holds everything");
        sharded.apply_plan(plan);

        // Contents survive the migration bit-for-bit...
        assert_eq!(sharded.signature(), before);
        // ...the load actually spread...
        let totals: Vec<usize> = sharded
            .subject_loads()
            .iter()
            .map(ShardLoad::total)
            .collect();
        assert!(
            totals.iter().all(|&t| t > 0),
            "both shards now loaded: {totals:?}"
        );
        // ...and detection still sees the migrated subject's history: a
        // teleport right after its last fix is caught on the new shard.
        let moved = sharded
            .plan()
            .overrides()
            .keys()
            .next()
            .expect("rebalance pinned a subject")
            .clone();
        let inc_before = sharded.stats().inconsistencies;
        sharded.submit(loc(&moved, 8, 500.0));
        assert!(sharded.stats().inconsistencies > inc_before);
    }

    #[test]
    #[should_panic(expected = "requires drained shards")]
    fn apply_plan_rejects_undrained_shards() {
        let constraints = parse_constraints(SPEED).unwrap();
        let plan = ShardPlan::analyze(&constraints, 2);
        let mut sharded = ShardedMiddleware::new(plan.clone(), |_| {
            Middleware::builder()
                .constraints(parse_constraints(SPEED).unwrap())
                .strategy(Box::new(DropBad::new()))
                .config(MiddlewareConfig {
                    window: Ticks::new(10),
                    track_ground_truth: false,
                    retention: None,
                })
                .build()
        });
        sharded.submit(loc("alice", 0, 0.0));
        // alice is still buffered (window 10): migration must refuse.
        sharded.apply_plan(plan);
    }

    #[test]
    #[should_panic(expected = "shard exploded on charlie")]
    fn batch_add_preserves_string_panic_payloads() {
        struct Exploder;
        impl crate::observer::MiddlewareObserver for Exploder {
            fn on_submitted(&mut self, _report: &SubmitReport, ctx: &Context) {
                if ctx.subject() == "charlie" {
                    panic!("shard exploded on {}", ctx.subject());
                }
            }
        }
        let constraints = parse_constraints(SPEED).unwrap();
        let plan = ShardPlan::analyze(&constraints, 2);
        let sharded = ShardedMiddleware::new(plan, |_| {
            Middleware::builder()
                .constraints(parse_constraints(SPEED).unwrap())
                .strategy(Box::new(DropBad::new()))
                .observer(Box::new(Exploder))
                .build()
        });
        sharded.batch_add(&[loc("alice", 0, 0.0), loc("charlie", 0, 0.0)]);
    }

    #[test]
    fn batch_add_labels_non_string_panic_payloads_with_the_shard() {
        struct Exploder;
        impl crate::observer::MiddlewareObserver for Exploder {
            fn on_submitted(&mut self, _report: &SubmitReport, _ctx: &Context) {
                std::panic::panic_any(42_u32);
            }
        }
        let constraints = parse_constraints(SPEED).unwrap();
        let plan = ShardPlan::analyze(&constraints, 2);
        let dying_shard = plan.route(&loc("alice", 0, 0.0));
        let sharded = ShardedMiddleware::new(plan, |_| {
            Middleware::builder()
                .constraints(parse_constraints(SPEED).unwrap())
                .strategy(Box::new(DropBad::new()))
                .observer(Box::new(Exploder))
                .build()
        });
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sharded.batch_add(&[loc("alice", 0, 0.0)])
        }));
        let payload = outcome.expect_err("the shard panic must propagate");
        let msg = payload.downcast_ref::<String>().cloned().unwrap();
        assert_eq!(
            msg,
            format!("shard {dying_shard} ingest thread panicked with a non-string payload")
        );
    }
}
